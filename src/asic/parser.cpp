#include "asic/parser.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace sf::asic {
namespace {

bool is_terminal(const std::string& state) {
  return state == "accept" || state == "reject";
}

}  // namespace

bool ParserGraph::add_state(const std::string& name,
                            std::size_t extract_bytes) {
  if (states_.size() >= budget_.max_states || states_.contains(name) ||
      is_terminal(name)) {
    return false;
  }
  states_.emplace(name, State{extract_bytes, {}});
  return true;
}

bool ParserGraph::add_transition(const std::string& from,
                                 Transition transition) {
  auto it = states_.find(from);
  if (it == states_.end()) return false;
  if (transitions_total_ >= budget_.max_transitions) return false;
  it->second.transitions.push_back(std::move(transition));
  ++transitions_total_;
  return true;
}

ParserGraph::Validation ParserGraph::validate() const {
  if (!states_.contains("start")) {
    return {false, "no start state"};
  }
  // Referenced states exist.
  for (const auto& [name, state] : states_) {
    if (state.transitions.empty()) {
      return {false, "state " + name + " has no way out"};
    }
    for (const Transition& t : state.transitions) {
      if (!is_terminal(t.next_state) && !states_.contains(t.next_state)) {
        return {false,
                name + " -> unknown state " + t.next_state};
      }
    }
  }
  // Reachability + longest extract path via BFS over the DAG; cycles are
  // detected with a path-extract bound (a parser loop would re-extract).
  std::set<std::string> reached;
  std::deque<std::pair<std::string, std::size_t>> frontier;
  frontier.push_back({"start", 0});
  std::size_t expansions = 0;
  while (!frontier.empty()) {
    auto [name, extracted] = frontier.front();
    frontier.pop_front();
    if (++expansions > states_.size() * budget_.max_transitions + 1) {
      return {false, "parse graph contains a cycle"};
    }
    const State& state = states_.at(name);
    const std::size_t total = extracted + state.extract_bytes;
    if (total > budget_.max_extract_bytes) {
      return {false, "path through " + name + " extracts " +
                         std::to_string(total) + " bytes, budget " +
                         std::to_string(budget_.max_extract_bytes)};
    }
    reached.insert(name);
    for (const Transition& t : state.transitions) {
      if (!is_terminal(t.next_state)) {
        frontier.push_back({t.next_state, total});
      }
    }
  }
  for (const auto& [name, state] : states_) {
    if (!reached.contains(name)) {
      return {false, "state " + name + " unreachable from start"};
    }
  }
  return {true, ""};
}

ParserGraph::WalkResult ParserGraph::walk(
    const std::vector<std::uint32_t>& selects) const {
  WalkResult result;
  std::string current = "start";
  std::size_t select_index = 0;
  for (std::size_t hops = 0; hops <= states_.size() + 1; ++hops) {
    auto it = states_.find(current);
    if (it == states_.end()) {
      result.error = "unknown state " + current;
      return result;
    }
    result.path.push_back(current);
    result.extracted_bytes += it->second.extract_bytes;
    if (result.extracted_bytes > budget_.max_extract_bytes) {
      result.error = "extract budget exceeded";
      return result;
    }

    const bool selecting = std::any_of(
        it->second.transitions.begin(), it->second.transitions.end(),
        [](const Transition& t) { return t.select.has_value(); });
    const Transition* chosen = nullptr;
    if (selecting) {
      if (select_index >= selects.size()) {
        result.error = "ran out of select values at " + current;
        return result;
      }
      const std::uint32_t value = selects[select_index++];
      for (const Transition& t : it->second.transitions) {
        if (t.select == value) {
          chosen = &t;
          break;
        }
      }
    }
    if (chosen == nullptr) {
      for (const Transition& t : it->second.transitions) {
        if (!t.select.has_value()) {
          chosen = &t;
          break;
        }
      }
    }
    if (chosen == nullptr) {
      result.error = "no matching transition out of " + current;
      return result;
    }
    if (chosen->next_state == "accept") {
      result.accepted = true;
      return result;
    }
    if (chosen->next_state == "reject") {
      result.error = "rejected at " + current;
      return result;
    }
    current = chosen->next_state;
  }
  result.error = "walk did not terminate";
  return result;
}

ParserGraph sailfish_parser_graph() {
  ParserGraph graph;
  graph.add_state("start", 14);          // outer Ethernet
  graph.add_state("outer_ipv4", 20);
  graph.add_state("outer_ipv6", 40);
  graph.add_state("outer_udp", 8);
  graph.add_state("vxlan", 8);
  graph.add_state("inner_ethernet", 14);
  graph.add_state("inner_ipv4", 20);
  graph.add_state("inner_ipv6", 40);
  graph.add_state("inner_l4", 20);

  graph.add_transition("start", {0x0800, "outer_ipv4"});
  graph.add_transition("start", {0x86dd, "outer_ipv6"});
  graph.add_transition("start", {std::nullopt, "reject"});
  graph.add_transition("outer_ipv4", {17, "outer_udp"});
  graph.add_transition("outer_ipv4", {std::nullopt, "reject"});
  graph.add_transition("outer_ipv6", {17, "outer_udp"});
  graph.add_transition("outer_ipv6", {std::nullopt, "reject"});
  graph.add_transition("outer_udp", {4789, "vxlan"});
  graph.add_transition("outer_udp", {std::nullopt, "reject"});
  graph.add_transition("vxlan", {std::nullopt, "inner_ethernet"});
  graph.add_transition("inner_ethernet", {0x0800, "inner_ipv4"});
  graph.add_transition("inner_ethernet", {0x86dd, "inner_ipv6"});
  graph.add_transition("inner_ethernet", {std::nullopt, "reject"});
  graph.add_transition("inner_ipv4", {std::nullopt, "inner_l4"});
  graph.add_transition("inner_ipv6", {std::nullopt, "inner_l4"});
  graph.add_transition("inner_l4", {std::nullopt, "accept"});
  return graph;
}

std::vector<std::uint32_t> sailfish_selects(bool outer_v6, bool inner_v6) {
  return {outer_v6 ? 0x86ddu : 0x0800u, 17u, 4789u,
          inner_v6 ? 0x86ddu : 0x0800u};
}

}  // namespace sf::asic
