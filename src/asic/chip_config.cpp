// ChipConfig is a header-only value type (asic/chip_config.hpp); this TU
// exists to give the library a home for future non-inline helpers and to
// validate the header compiles standalone.

#include "asic/chip_config.hpp"

namespace sf::asic {

static_assert(ChipConfig{}.pipelines == 4);

}  // namespace sf::asic
