#include "asic/walker.hpp"

namespace sf::asic {

void Walker::set_registry(telemetry::Registry* registry) {
  registry_ = registry;
  ingress_packets_.clear();
  egress_packets_.clear();
  packets_ = nullptr;
  drops_ = nullptr;
  passes_ = nullptr;
  if (registry_ == nullptr) return;
  for (unsigned pipe = 0; pipe < program_->pipelines(); ++pipe) {
    const std::string base = "asic.pipe" + std::to_string(pipe);
    ingress_packets_.push_back(
        &registry_->counter(base + ".ingress.packets"));
    egress_packets_.push_back(
        &registry_->counter(base + ".egress.packets"));
  }
  packets_ = &registry_->counter("asic.packets");
  drops_ = &registry_->counter("asic.drops");
  passes_ = &registry_->histogram(
      "asic.passes", telemetry::Histogram::Config{
                         /*min_value=*/1.0, /*growth=*/2.0,
                         /*buckets=*/4, /*reservoir=*/128});
}

WalkResult Walker::run(net::OverlayPacket packet,
                       unsigned ingress_pipe) const {
  PacketContext ctx;
  WalkSummary summary;
  run(packet, ingress_pipe, ctx, summary);
  WalkResult result;
  result.packet = std::move(ctx.packet);
  result.meta = std::move(ctx.meta);
  result.dropped = summary.dropped;
  result.drop_note = summary.drop_note;
  result.drop_code = summary.drop_code;
  result.passes = summary.passes;
  result.egress_pipe = summary.egress_pipe;
  result.bridged_bits = summary.bridged_bits;
  result.latency_us = summary.latency_us;
  return result;
}

void Walker::run(const net::OverlayPacket& packet, unsigned ingress_pipe,
                 PacketContext& ctx, WalkSummary& out,
                 bool record_pass_hist) const {
  out = WalkSummary{};
  ctx.packet = packet;
  // Reuse the context's Phv when it already belongs to this program (its
  // slot vector keeps capacity across clear()); a fresh or foreign context
  // gets a new one bound to the program's layout.
  if (&ctx.meta.layout() == program_->phv_layout_ptr().get() &&
      ctx.meta.budget_bits() == chip_->phv_metadata_bits) {
    ctx.meta.clear();
  } else {
    ctx.meta = Phv(chip_->phv_metadata_bits, program_->phv_layout_ptr());
  }
  ctx.dropped = false;
  ctx.drop_note = nullptr;
  ctx.drop_code = 0;
  ctx.stats = registry_;
  if (packets_ != nullptr) packets_->add();

  unsigned pipe = ingress_pipe;
  for (unsigned pass = 0; pass < kMaxPasses; ++pass) {
    // Ingress pass.
    ctx.pipe = pipe;
    ctx.gress = Gress::kIngress;
    ctx.egress_pipe.reset();
    if (packets_ != nullptr) ingress_packets_[pipe]->add();
    for (const StageFn& stage : program_->ingress(pipe).stages) {
      stage(ctx);
      if (ctx.dropped) break;
    }
    if (ctx.dropped) break;

    // Traffic manager: move to the egress pipe; metadata must be bridged
    // to survive.
    const unsigned egress = ctx.egress_pipe.value_or(pipe);
    out.bridged_bits += ctx.meta.cross_gress();

    ctx.pipe = egress;
    ctx.gress = Gress::kEgress;
    if (packets_ != nullptr) egress_packets_[egress]->add();
    for (const StageFn& stage : program_->egress(egress).stages) {
      stage(ctx);
      if (ctx.dropped) break;
    }
    ++out.passes;
    if (ctx.dropped) break;

    if (!program_->loopback(egress)) {
      out.egress_pipe = egress;
      break;
    }
    // Loopback: the packet re-enters this pipe's ingress parser; metadata
    // again survives only if bridged.
    out.bridged_bits += ctx.meta.cross_gress();
    pipe = egress;
    if (pass + 1 == kMaxPasses) {
      ctx.drop("loopback cycle: exceeded max pipeline passes");
    }
  }

  out.dropped = ctx.dropped;
  out.drop_note = ctx.drop_note;
  out.drop_code = ctx.drop_code;
  if (packets_ != nullptr) {
    if (out.dropped) drops_->add();
    if (record_pass_hist) passes_->record(static_cast<double>(out.passes));
  }
  out.latency_us = chip_->latency_us(
      out.passes, ctx.packet.wire_size() + out.bridged_bits / 8);
}

}  // namespace sf::asic
