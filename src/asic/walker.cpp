#include "asic/walker.hpp"

namespace sf::asic {

void Walker::set_registry(telemetry::Registry* registry) {
  registry_ = registry;
  ingress_packets_.clear();
  egress_packets_.clear();
  packets_ = nullptr;
  drops_ = nullptr;
  passes_ = nullptr;
  if (registry_ == nullptr) return;
  for (unsigned pipe = 0; pipe < program_->pipelines(); ++pipe) {
    const std::string base = "asic.pipe" + std::to_string(pipe);
    ingress_packets_.push_back(
        &registry_->counter(base + ".ingress.packets"));
    egress_packets_.push_back(
        &registry_->counter(base + ".egress.packets"));
  }
  packets_ = &registry_->counter("asic.packets");
  drops_ = &registry_->counter("asic.drops");
  passes_ = &registry_->histogram(
      "asic.passes", telemetry::Histogram::Config{
                         /*min_value=*/1.0, /*growth=*/2.0,
                         /*buckets=*/4, /*reservoir=*/128});
}

WalkResult Walker::run(net::OverlayPacket packet,
                       unsigned ingress_pipe) const {
  WalkResult result;
  PacketContext ctx;
  ctx.packet = std::move(packet);
  ctx.meta = Phv(chip_->phv_metadata_bits, program_->phv_layout_ptr());
  ctx.pipe = ingress_pipe;
  ctx.stats = registry_;
  if (packets_ != nullptr) packets_->add();

  unsigned pipe = ingress_pipe;
  for (unsigned pass = 0; pass < kMaxPasses; ++pass) {
    // Ingress pass.
    ctx.pipe = pipe;
    ctx.gress = Gress::kIngress;
    ctx.egress_pipe.reset();
    if (packets_ != nullptr) ingress_packets_[pipe]->add();
    for (const StageFn& stage : program_->ingress(pipe).stages) {
      stage(ctx);
      if (ctx.dropped) break;
    }
    if (ctx.dropped) break;

    // Traffic manager: move to the egress pipe; metadata must be bridged
    // to survive.
    const unsigned egress = ctx.egress_pipe.value_or(pipe);
    result.bridged_bits += ctx.meta.cross_gress();

    ctx.pipe = egress;
    ctx.gress = Gress::kEgress;
    if (packets_ != nullptr) egress_packets_[egress]->add();
    for (const StageFn& stage : program_->egress(egress).stages) {
      stage(ctx);
      if (ctx.dropped) break;
    }
    ++result.passes;
    if (ctx.dropped) break;

    if (!program_->loopback(egress)) {
      result.egress_pipe = egress;
      break;
    }
    // Loopback: the packet re-enters this pipe's ingress parser; metadata
    // again survives only if bridged.
    result.bridged_bits += ctx.meta.cross_gress();
    pipe = egress;
    if (pass + 1 == kMaxPasses) {
      ctx.drop("loopback cycle: exceeded max pipeline passes");
    }
  }

  result.packet = std::move(ctx.packet);
  result.meta = std::move(ctx.meta);
  result.dropped = ctx.dropped;
  result.drop_note = ctx.drop_note;
  result.drop_code = ctx.drop_code;
  if (packets_ != nullptr) {
    if (result.dropped) drops_->add();
    passes_->record(static_cast<double>(result.passes));
  }
  result.latency_us = chip_->latency_us(
      result.passes,
      result.packet.wire_size() + result.bridged_bits / 8);
  return result;
}

}  // namespace sf::asic
