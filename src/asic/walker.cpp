#include "asic/walker.hpp"

namespace sf::asic {

WalkResult Walker::run(net::OverlayPacket packet,
                       unsigned ingress_pipe) const {
  WalkResult result;
  PacketContext ctx;
  ctx.packet = std::move(packet);
  ctx.meta = Phv(chip_.phv_metadata_bits);
  ctx.pipe = ingress_pipe;

  unsigned pipe = ingress_pipe;
  for (unsigned pass = 0; pass < kMaxPasses; ++pass) {
    // Ingress pass.
    ctx.pipe = pipe;
    ctx.gress = Gress::kIngress;
    ctx.egress_pipe.reset();
    for (const StageFn& stage : program_->ingress(pipe).stages) {
      stage(ctx);
      if (ctx.dropped) break;
    }
    if (ctx.dropped) break;

    // Traffic manager: move to the egress pipe; metadata must be bridged
    // to survive.
    const unsigned egress = ctx.egress_pipe.value_or(pipe);
    result.bridged_bits += ctx.meta.cross_gress();

    ctx.pipe = egress;
    ctx.gress = Gress::kEgress;
    for (const StageFn& stage : program_->egress(egress).stages) {
      stage(ctx);
      if (ctx.dropped) break;
    }
    ++result.passes;
    if (ctx.dropped) break;

    if (!program_->loopback(egress)) {
      result.egress_pipe = egress;
      break;
    }
    // Loopback: the packet re-enters this pipe's ingress parser; metadata
    // again survives only if bridged.
    result.bridged_bits += ctx.meta.cross_gress();
    pipe = egress;
    if (pass + 1 == kMaxPasses) {
      ctx.drop("loopback cycle: exceeded max pipeline passes");
    }
  }

  result.packet = std::move(ctx.packet);
  result.meta = std::move(ctx.meta);
  result.dropped = ctx.dropped;
  result.drop_reason = std::move(ctx.drop_reason);
  result.latency_us = chip_.latency_us(
      result.passes,
      result.packet.wire_size() + result.bridged_bits / 8);
  return result;
}

}  // namespace sf::asic
