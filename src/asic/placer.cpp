#include "asic/placer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tables/alpm.hpp"
#include "tables/service_tables.hpp"
#include "tables/tcam.hpp"

namespace sf::asic {
namespace {

// Analytic ALPM estimate when no measured stats are supplied. A positive
// alpm_estimated_fill pins the legacy fixed-fill formula; otherwise the
// calibrated model (tables::estimate_alpm_shape) supplies the fill curve.
// Routes cost one SRAM word on SfChip (<=64-bit suffix + length + action
// fits a 128-bit word); directory rows carry the 153-bit pooled key.
AlpmDemand estimate_alpm(const ChipConfig& chip, std::size_t routes,
                         const CompressionConfig& config) {
  const unsigned dir_slices =
      chip.tcam_slices_per_entry(tables::kPooledRouteKeyBits);
  if (config.alpm_estimated_fill > 0) {
    const double fill = std::clamp(config.alpm_estimated_fill, 0.05, 1.0);
    const std::size_t partitions = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(
               static_cast<double>(routes) /
               (fill * static_cast<double>(config.alpm_max_bucket)))));
    AlpmDemand demand;
    demand.directory_slices = partitions * dir_slices;
    demand.bucket_words = partitions * config.alpm_max_bucket;
    return demand;
  }
  const unsigned route_words =
      chip.sram_words_per_entry(64 + 8, tables::kVxlanRouteActionBits);
  const tables::AlpmShapeEstimate estimate = tables::estimate_alpm_shape(
      routes, config.alpm_max_bucket, dir_slices, route_words);
  AlpmDemand demand;
  demand.directory_slices = estimate.directory_slices;
  demand.bucket_words = estimate.bucket_words;
  return demand;
}

}  // namespace

std::vector<TableDemand> compute_demands(const ChipConfig& chip,
                                         const GatewayWorkload& workload,
                                         const CompressionConfig& config) {
  std::vector<TableDemand> demands;

  // ---- VXLAN routing table (LPM) ----------------------------------------
  const std::size_t routes =
      workload.vxlan_routes_v4 + workload.vxlan_routes_v6;
  if (config.alpm) {
    const AlpmDemand alpm = config.measured_alpm
                                ? *config.measured_alpm
                                : estimate_alpm(chip, routes, config);
    demands.push_back(TableDemand{"vxlan_route_alpm_dir", 0,
                                  alpm.directory_slices, true,
                                  PathSlot::kFrontIngress});
    demands.push_back(TableDemand{"vxlan_route_alpm_buckets",
                                  alpm.bucket_words, 0, true,
                                  PathSlot::kFrontIngress});
  } else if (config.pool) {
    // One dual-stack table: every key is the 153-bit pooled key.
    demands.push_back(TableDemand{
        "vxlan_route_pooled", 0,
        routes * chip.tcam_slices_per_entry(tables::kPooledRouteKeyBits),
        true, PathSlot::kFrontIngress});
  } else {
    demands.push_back(TableDemand{
        "vxlan_route_v4", 0,
        workload.vxlan_routes_v4 *
            chip.tcam_slices_per_entry(
                tables::vxlan_route_key_bits(net::IpFamily::kV4)),
        true, PathSlot::kFrontIngress});
    demands.push_back(TableDemand{
        "vxlan_route_v6", 0,
        workload.vxlan_routes_v6 *
            chip.tcam_slices_per_entry(
                tables::vxlan_route_key_bits(net::IpFamily::kV6)),
        true, PathSlot::kFrontIngress});
  }

  // ---- VM-NC mapping table (exact) ---------------------------------------
  const std::size_t maps = workload.vm_maps_v4 + workload.vm_maps_v6;
  if (config.compress) {
    // Pooled digest table: label ‖ VNI ‖ 32-bit ip/digest -> one word;
    // conflicts keep the wide key.
    const unsigned pooled_words =
        chip.sram_words_per_entry(1 + 24 + 32, tables::kVmNcActionBits);
    const unsigned conflict_words = chip.sram_words_per_entry(
        tables::vm_nc_key_bits(net::IpFamily::kV6), tables::kVmNcActionBits);
    demands.push_back(TableDemand{
        "vm_nc_pooled", maps * pooled_words, 0, true,
        PathSlot::kBackIngress});
    demands.push_back(TableDemand{
        "vm_nc_conflicts", workload.digest_conflicts * conflict_words, 0,
        false, PathSlot::kBackIngress});
  } else {
    demands.push_back(TableDemand{
        "vm_nc_v4",
        workload.vm_maps_v4 *
            chip.sram_words_per_entry(
                tables::vm_nc_key_bits(net::IpFamily::kV4),
                tables::kVmNcActionBits),
        0, true, PathSlot::kBackIngress});
    demands.push_back(TableDemand{
        "vm_nc_v6",
        workload.vm_maps_v6 *
            chip.sram_words_per_entry(
                tables::vm_nc_key_bits(net::IpFamily::kV6),
                tables::kVmNcActionBits),
        0, true, PathSlot::kBackIngress});
  }

  // ---- service tables (Table 4 only; zero counts otherwise) --------------
  if (workload.acl_rules > 0) {
    demands.push_back(TableDemand{
        "acl", 0,
        workload.acl_rules *
            chip.tcam_slices_per_entry(tables::AclTable::kKeyBits),
        true, PathSlot::kFrontIngress});
  }
  if (workload.meters > 0) {
    // Meter state: rate config + bucket level, 1 word each.
    demands.push_back(TableDemand{"meters", workload.meters, 0, true,
                                  PathSlot::kBackIngress});
  }
  if (workload.counters > 0) {
    demands.push_back(TableDemand{"counters", workload.counters, 0, true,
                                  PathSlot::kFrontEgress});
  }
  if (workload.steering_entries > 0) {
    // Fallback steering (special VNI -> XGW-x86 next hop): exact, small.
    demands.push_back(TableDemand{
        "fallback_steering",
        workload.steering_entries * chip.sram_words_per_entry(24, 32), 0,
        false, PathSlot::kBackEgress});
  }
  return demands;
}

// Placer::evaluate()/place()/place_layout()/replace() live in
// asic/placement.cpp with the retained-layout machinery they share.

}  // namespace sf::asic
