#include "asic/placer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tables/service_tables.hpp"
#include "tables/tcam.hpp"

namespace sf::asic {
namespace {

// Analytic ALPM estimate when no measured stats are supplied: partitions
// sized by expected fill, one directory row (pooled key width) and a
// reserved single-word bucket slot set per partition.
AlpmDemand estimate_alpm(const ChipConfig& chip, std::size_t routes,
                         const CompressionConfig& config) {
  const double fill = std::clamp(config.alpm_estimated_fill, 0.05, 1.0);
  const std::size_t partitions = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(
             static_cast<double>(routes) /
             (fill * static_cast<double>(config.alpm_max_bucket)))));
  AlpmDemand demand;
  demand.directory_slices =
      partitions * chip.tcam_slices_per_entry(tables::kPooledRouteKeyBits);
  demand.bucket_words = partitions * config.alpm_max_bucket;
  return demand;
}

}  // namespace

std::vector<TableDemand> compute_demands(const ChipConfig& chip,
                                         const GatewayWorkload& workload,
                                         const CompressionConfig& config) {
  std::vector<TableDemand> demands;

  // ---- VXLAN routing table (LPM) ----------------------------------------
  const std::size_t routes =
      workload.vxlan_routes_v4 + workload.vxlan_routes_v6;
  if (config.alpm) {
    const AlpmDemand alpm = config.measured_alpm
                                ? *config.measured_alpm
                                : estimate_alpm(chip, routes, config);
    demands.push_back(TableDemand{"vxlan_route_alpm_dir", 0,
                                  alpm.directory_slices, true,
                                  PathSlot::kFrontIngress});
    demands.push_back(TableDemand{"vxlan_route_alpm_buckets",
                                  alpm.bucket_words, 0, true,
                                  PathSlot::kFrontIngress});
  } else if (config.pool) {
    // One dual-stack table: every key is the 153-bit pooled key.
    demands.push_back(TableDemand{
        "vxlan_route_pooled", 0,
        routes * chip.tcam_slices_per_entry(tables::kPooledRouteKeyBits),
        true, PathSlot::kFrontIngress});
  } else {
    demands.push_back(TableDemand{
        "vxlan_route_v4", 0,
        workload.vxlan_routes_v4 *
            chip.tcam_slices_per_entry(
                tables::vxlan_route_key_bits(net::IpFamily::kV4)),
        true, PathSlot::kFrontIngress});
    demands.push_back(TableDemand{
        "vxlan_route_v6", 0,
        workload.vxlan_routes_v6 *
            chip.tcam_slices_per_entry(
                tables::vxlan_route_key_bits(net::IpFamily::kV6)),
        true, PathSlot::kFrontIngress});
  }

  // ---- VM-NC mapping table (exact) ---------------------------------------
  const std::size_t maps = workload.vm_maps_v4 + workload.vm_maps_v6;
  if (config.compress) {
    // Pooled digest table: label ‖ VNI ‖ 32-bit ip/digest -> one word;
    // conflicts keep the wide key.
    const unsigned pooled_words =
        chip.sram_words_per_entry(1 + 24 + 32, tables::kVmNcActionBits);
    const unsigned conflict_words = chip.sram_words_per_entry(
        tables::vm_nc_key_bits(net::IpFamily::kV6), tables::kVmNcActionBits);
    demands.push_back(TableDemand{
        "vm_nc_pooled", maps * pooled_words, 0, true,
        PathSlot::kBackIngress});
    demands.push_back(TableDemand{
        "vm_nc_conflicts", workload.digest_conflicts * conflict_words, 0,
        false, PathSlot::kBackIngress});
  } else {
    demands.push_back(TableDemand{
        "vm_nc_v4",
        workload.vm_maps_v4 *
            chip.sram_words_per_entry(
                tables::vm_nc_key_bits(net::IpFamily::kV4),
                tables::kVmNcActionBits),
        0, true, PathSlot::kBackIngress});
    demands.push_back(TableDemand{
        "vm_nc_v6",
        workload.vm_maps_v6 *
            chip.sram_words_per_entry(
                tables::vm_nc_key_bits(net::IpFamily::kV6),
                tables::kVmNcActionBits),
        0, true, PathSlot::kBackIngress});
  }

  // ---- service tables (Table 4 only; zero counts otherwise) --------------
  if (workload.acl_rules > 0) {
    demands.push_back(TableDemand{
        "acl", 0,
        workload.acl_rules *
            chip.tcam_slices_per_entry(tables::AclTable::kKeyBits),
        true, PathSlot::kFrontIngress});
  }
  if (workload.meters > 0) {
    // Meter state: rate config + bucket level, 1 word each.
    demands.push_back(TableDemand{"meters", workload.meters, 0, true,
                                  PathSlot::kBackIngress});
  }
  if (workload.counters > 0) {
    demands.push_back(TableDemand{"counters", workload.counters, 0, true,
                                  PathSlot::kFrontEgress});
  }
  if (workload.steering_entries > 0) {
    // Fallback steering (special VNI -> XGW-x86 next hop): exact, small.
    demands.push_back(TableDemand{
        "fallback_steering",
        workload.steering_entries * chip.sram_words_per_entry(24, 32), 0,
        false, PathSlot::kBackEgress});
  }
  return demands;
}

OccupancyReport Placer::evaluate(const GatewayWorkload& workload,
                                 const CompressionConfig& config) const {
  return place(compute_demands(chip_, workload, config), config);
}

OccupancyReport Placer::place(std::vector<TableDemand> demands,
                              const CompressionConfig& config) const {
  if (config.split && !config.fold) {
    throw std::invalid_argument(
        "table splitting between pipelines requires pipeline folding");
  }

  OccupancyReport report;
  report.demands = demands;
  report.pipes.resize(chip_.pipelines);

  // Paths: folded -> {0,1} and {2,3}; unfolded -> each pipeline is an
  // independent gateway holding everything.
  struct Path {
    std::vector<unsigned> pipes;
  };
  std::vector<Path> paths;
  if (config.fold) {
    for (unsigned p = 0; p + 1 < chip_.pipelines; p += 2) {
      paths.push_back(Path{{p, p + 1}});
    }
  } else {
    for (unsigned p = 0; p < chip_.pipelines; ++p) {
      paths.push_back(Path{{p}});
    }
  }

  ChipMemory memory(chip_);
  bool feasible = true;
  report.paths.resize(paths.size());
  // Demand-based accounting per pipe (valid even when infeasible).
  std::vector<std::size_t> sram_demand(chip_.pipelines, 0);
  std::vector<std::size_t> tcam_demand(chip_.pipelines, 0);

  for (std::size_t path_index = 0; path_index < paths.size(); ++path_index) {
    const Path& path = paths[path_index];
    std::size_t path_sram = 0;
    std::size_t path_tcam = 0;
    for (const TableDemand& table : demands) {
      // Shard across paths under (b); otherwise every path replicates.
      std::size_t sram = table.sram_words;
      std::size_t tcam = table.tcam_slices;
      if (config.split && table.shardable && paths.size() > 1) {
        sram = (sram + paths.size() - 1) / paths.size();
        tcam = (tcam + paths.size() - 1) / paths.size();
      }

      // Slot decides the preferred pipe on the path: front = first pipe,
      // back = second (same pipe when unfolded).
      path_sram += sram;
      path_tcam += tcam;
      const bool back_slot = table.slot == PathSlot::kBackEgress ||
                             table.slot == PathSlot::kBackIngress;
      const unsigned preferred =
          path.pipes[back_slot && path.pipes.size() > 1 ? 1 : 0];
      const unsigned other =
          path.pipes[path.pipes.size() > 1 ? (back_slot ? 0 : 1) : 0];
      const bool balanced =
          table.slot == PathSlot::kBalanced && path.pipes.size() > 1;

      for (auto [kind, units] :
           {std::pair{MemoryKind::kSram, sram},
            std::pair{MemoryKind::kTcam, tcam}}) {
        if (units == 0) continue;
        auto& demand_vec =
            kind == MemoryKind::kSram ? sram_demand : tcam_demand;
        // Balanced tables split half/half across the path's pipes ("tables
        // should be evenly distributed in different pipelines"); slotted
        // tables try their pipe and spill the remainder to the sibling
        // ("mapping large tables across pipelines").
        const std::size_t want_first = balanced ? (units + 1) / 2 : units;
        const std::size_t room = memory.free_units(preferred, kind);
        const std::size_t first = std::min(want_first, room);
        if (first > 0 &&
            memory.allocate(preferred, kind, first, table.name)) {
          demand_vec[preferred] += first;
        }
        std::size_t rest = units - first;
        if (rest > 0) {
          if (other != preferred) {
            const std::size_t other_room = memory.free_units(other, kind);
            const std::size_t second = std::min(rest, other_room);
            if (second > 0 &&
                memory.allocate(other, kind, second, table.name)) {
              demand_vec[other] += second;
              rest -= second;
            }
            // A balanced table's own overflow may still fit back on the
            // first pipe.
            if (rest > 0) {
              const std::size_t back_room =
                  memory.free_units(preferred, kind);
              const std::size_t third = std::min(rest, back_room);
              if (third > 0 &&
                  memory.allocate(preferred, kind, third, table.name)) {
                demand_vec[preferred] += third;
                rest -= third;
              }
            }
          }
        }
        if (rest > 0) {
          // Out of memory: record the unplaced demand against the
          // preferred pipe so occupancy shows the overflow.
          demand_vec[preferred] += rest;
          feasible = false;
        }
      }
    }
    const double path_capacity_scale =
        static_cast<double>(path.pipes.size());
    report.paths[path_index].sram =
        static_cast<double>(path_sram) /
        (path_capacity_scale *
         static_cast<double>(chip_.sram_words_per_pipeline()));
    report.paths[path_index].tcam =
        static_cast<double>(path_tcam) /
        (path_capacity_scale *
         static_cast<double>(chip_.tcam_slices_per_pipeline()));
    report.sram_path_worst =
        std::max(report.sram_path_worst, report.paths[path_index].sram);
    report.tcam_path_worst =
        std::max(report.tcam_path_worst, report.paths[path_index].tcam);
  }

  for (unsigned p = 0; p < chip_.pipelines; ++p) {
    report.pipes[p].sram =
        static_cast<double>(sram_demand[p]) /
        static_cast<double>(chip_.sram_words_per_pipeline());
    report.pipes[p].tcam =
        static_cast<double>(tcam_demand[p]) /
        static_cast<double>(chip_.tcam_slices_per_pipeline());
    report.sram_worst = std::max(report.sram_worst, report.pipes[p].sram);
    report.tcam_worst = std::max(report.tcam_worst, report.pipes[p].tcam);
  }
  report.feasible = feasible;
  return report;
}

}  // namespace sf::asic
