// Packet header vector / metadata model.
//
// Metadata written in one gress is invisible in the next unless *bridged*
// — appended to the packet, which costs wire bytes and therefore
// throughput (§3.2, §4.4). Pipeline folding turns one possible bridge into
// three, which is why the gateway program groups tables that share
// metadata into the same gress. The Phv enforces a per-gress bit budget so
// programs feel the "PHV resources are scarce" constraint (§6.2).
//
// Field access is compiled: a PhvLayout interns every field name to a
// dense FieldId at program-build time, and the per-packet hot path indexes
// a flat slot array — no string hashing or comparisons per packet
// (DESIGN.md §9). The string overloads survive for tests and ad-hoc use;
// they resolve through the layout and count against string_lookups() so a
// regression test can assert the walker hot loop never takes them.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sf::asic {

/// Dense index of a PHV field within a PhvLayout.
using FieldId = std::uint16_t;
inline constexpr FieldId kInvalidFieldId = 0xFFFF;

/// The compile-time name -> FieldId interner. One layout per
/// PipelineProgram; every Phv walked under that program indexes fields by
/// id. Interning is append-only, so sharing a layout between Phv copies is
/// safe; freeze() locks it once the program is fully bound so a stray
/// runtime intern (a per-packet string) becomes a hard error.
class PhvLayout {
 public:
  /// Returns the id for `name`, interning it on first sight. Throws
  /// std::logic_error once frozen.
  FieldId intern(std::string_view name);

  /// Returns the id for `name`, or kInvalidFieldId when unknown.
  FieldId find(std::string_view name) const;

  const std::string& name(FieldId id) const { return names_.at(id); }
  std::size_t size() const { return names_.size(); }

  /// Locks the layout: further intern() calls throw. Called when a
  /// pipeline program finishes binding its stages.
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

 private:
  std::vector<std::string> names_;
  std::map<std::string, FieldId, std::less<>> index_;
  bool frozen_ = false;
};

class Phv {
 public:
  /// `layout` is the program's field interner; when null the Phv creates a
  /// private layout so the string API keeps working standalone (tests,
  /// ad-hoc metadata). The layout is shared, not copied: ids stay stable
  /// across Phv copies and across packets walked under the same program.
  explicit Phv(unsigned budget_bits = 1536,
               std::shared_ptr<PhvLayout> layout = nullptr);

  // ---- compiled (hot-path) API: no string traffic ------------------------

  /// Writes a field (creating it on first write). Throws std::length_error
  /// when the budget would be exceeded.
  void set(FieldId id, std::uint64_t value, unsigned bits,
           bool bridged = false);

  std::optional<std::uint64_t> get(FieldId id) const {
    if (id >= slots_.size() || !slots_[id].present) return std::nullopt;
    return slots_[id].value;
  }

  /// get() without the optional, for stages that know the field exists.
  std::uint64_t get_or(FieldId id, std::uint64_t fallback = 0) const {
    if (id >= slots_.size() || !slots_[id].present) return fallback;
    return slots_[id].value;
  }

  bool has(FieldId id) const {
    return id < slots_.size() && slots_[id].present;
  }

  /// Marks an existing field for bridging across the next gress boundary.
  void bridge(FieldId id) {
    if (id < slots_.size() && slots_[id].present) slots_[id].bridged = true;
  }

  // ---- string API (cold path: tests, ad-hoc) -----------------------------

  void set(const std::string& name, std::uint64_t value, unsigned bits,
           bool bridged = false);
  std::optional<std::uint64_t> get(const std::string& name) const;
  bool has(const std::string& name) const { return get(name).has_value(); }
  void bridge(const std::string& name);

  // ---- gress semantics ---------------------------------------------------

  /// Crosses a gress boundary: non-bridged fields are dropped; returns the
  /// number of bits appended to the packet for the bridged ones.
  unsigned cross_gress();

  unsigned used_bits() const { return used_bits_; }
  unsigned budget_bits() const { return budget_bits_; }

  /// Total bits bridged so far (wire overhead accounting).
  unsigned bridged_bits_total() const { return bridged_bits_total_; }

  void clear();

  const PhvLayout& layout() const { return *layout_; }

  /// Thread-local count of string-keyed lookups since process start. The
  /// fastpath test asserts this stays flat across Walker::run.
  static std::uint64_t string_lookups();

 private:
  struct Slot {
    std::uint64_t value = 0;
    std::uint16_t bits = 0;
    bool present = false;
    bool bridged = false;
  };

  FieldId resolve_for_write(const std::string& name);
  void check_width(unsigned bits) const;

  unsigned budget_bits_;
  unsigned bridged_bits_total_ = 0;
  unsigned used_bits_ = 0;
  std::shared_ptr<PhvLayout> layout_;
  std::vector<Slot> slots_;
};

}  // namespace sf::asic
