// Packet header vector / metadata model.
//
// Metadata written in one gress is invisible in the next unless *bridged*
// — appended to the packet, which costs wire bytes and therefore
// throughput (§3.2, §4.4). Pipeline folding turns one possible bridge into
// three, which is why the gateway program groups tables that share
// metadata into the same gress. The Phv enforces a per-gress bit budget so
// programs feel the "PHV resources are scarce" constraint (§6.2).

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace sf::asic {

class Phv {
 public:
  explicit Phv(unsigned budget_bits = 1536) : budget_bits_(budget_bits) {}

  /// Writes a field (creating it on first write). Throws std::length_error
  /// when the budget would be exceeded.
  void set(const std::string& name, std::uint64_t value, unsigned bits,
           bool bridged = false);

  std::optional<std::uint64_t> get(const std::string& name) const;

  bool has(const std::string& name) const { return get(name).has_value(); }

  /// Marks an existing field for bridging across the next gress boundary.
  void bridge(const std::string& name);

  /// Crosses a gress boundary: non-bridged fields are dropped; returns the
  /// number of bits appended to the packet for the bridged ones.
  unsigned cross_gress();

  unsigned used_bits() const;
  unsigned budget_bits() const { return budget_bits_; }

  /// Total bits bridged so far (wire overhead accounting).
  unsigned bridged_bits_total() const { return bridged_bits_total_; }

  void clear();

 private:
  struct Field {
    std::string name;
    std::uint64_t value = 0;
    unsigned bits = 0;
    bool bridged = false;
  };

  Field* find(const std::string& name);
  const Field* find(const std::string& name) const;

  unsigned budget_bits_;
  unsigned bridged_bits_total_ = 0;
  std::vector<Field> fields_;
};

}  // namespace sf::asic
