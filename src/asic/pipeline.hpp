// Pipeline structure: per-(pipeline, gress) programs and loopback ports.
//
// A program is an ordered list of stage functions (match-action lookups
// bound by the gateway, xgwh/gateway_program.hpp). The walker runs a packet
// through Ingress(pipe) -> [traffic manager] -> Egress(egress_pipe); when
// the egress pipe is in loopback mode the packet re-enters that pipe's
// ingress — the §4.4 "pipeline folding" datapath of Fig. 13.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "asic/chip_config.hpp"
#include "asic/phv.hpp"
#include "net/packet.hpp"

namespace sf::telemetry {
class Registry;
}  // namespace sf::telemetry

namespace sf::asic {

enum class Gress : std::uint8_t { kIngress, kEgress };

/// Mutable state a packet carries through the chip.
struct PacketContext {
  net::OverlayPacket packet;
  Phv meta;
  unsigned pipe = 0;
  Gress gress = Gress::kIngress;
  bool dropped = false;
  /// Human-readable drop label. Always a pointer to a string with static
  /// storage duration (a literal or a static to_string table entry) — the
  /// hot path never allocates a reason string per packet.
  const char* drop_note = nullptr;
  /// Machine-readable drop classifier set alongside drop_note. The asic
  /// layer itself is gateway-agnostic, so codes are opaque here; the
  /// gateway that programmed the stages maps them back to its typed drop
  /// taxonomy (0 = "stage gave no code").
  std::uint8_t drop_code = 0;
  /// Set by the walker when its owner registered a telemetry registry:
  /// stages record their per-table hit/miss counts here.
  telemetry::Registry* stats = nullptr;
  /// Ingress sets this to steer the packet through the traffic manager;
  /// unset means "stay on the same pipeline".
  std::optional<unsigned> egress_pipe;

  /// `note` must have static storage duration (string literal / static
  /// table entry); the context stores the pointer, not a copy.
  void drop(const char* note, std::uint8_t code = 0) {
    dropped = true;
    drop_note = note;
    drop_code = code;
  }
};

using StageFn = std::function<void(PacketContext&)>;

struct GressProgram {
  std::string name;
  std::vector<StageFn> stages;
};

/// The chip's program binding: who runs where, and which egress ports are
/// looped back.
class PipelineProgram {
 public:
  explicit PipelineProgram(unsigned pipelines = 4)
      : ingress_(pipelines),
        egress_(pipelines),
        loopback_(pipelines, false),
        phv_layout_(std::make_shared<PhvLayout>()) {}

  void set_ingress(unsigned pipe, GressProgram program) {
    ingress_.at(pipe) = std::move(program);
  }
  void set_egress(unsigned pipe, GressProgram program) {
    egress_.at(pipe) = std::move(program);
  }
  /// Puts a pipe's egress ports in loopback mode (folding).
  void set_loopback(unsigned pipe, bool enabled) {
    loopback_.at(pipe) = enabled;
  }

  const GressProgram& ingress(unsigned pipe) const {
    return ingress_.at(pipe);
  }
  const GressProgram& egress(unsigned pipe) const { return egress_.at(pipe); }
  bool loopback(unsigned pipe) const { return loopback_.at(pipe); }
  unsigned pipelines() const {
    return static_cast<unsigned>(ingress_.size());
  }

  /// The program's compiled field interner. Gateways intern their field
  /// names here while binding stages, then freeze(); packets walked under
  /// this program resolve fields by FieldId only. The layout is shared so
  /// it outlives the program inside any Phv still referencing it.
  PhvLayout& phv_layout() { return *phv_layout_; }
  const PhvLayout& phv_layout() const { return *phv_layout_; }
  const std::shared_ptr<PhvLayout>& phv_layout_ptr() const {
    return phv_layout_;
  }

 private:
  std::vector<GressProgram> ingress_;
  std::vector<GressProgram> egress_;
  std::vector<bool> loopback_;
  std::shared_ptr<PhvLayout> phv_layout_;
};

}  // namespace sf::asic
