#include "asic/phv.hpp"

#include <algorithm>

namespace sf::asic {

Phv::Field* Phv::find(const std::string& name) {
  for (Field& field : fields_) {
    if (field.name == name) return &field;
  }
  return nullptr;
}

const Phv::Field* Phv::find(const std::string& name) const {
  for (const Field& field : fields_) {
    if (field.name == name) return &field;
  }
  return nullptr;
}

void Phv::set(const std::string& name, std::uint64_t value, unsigned bits,
              bool bridged) {
  if (bits == 0 || bits > 64) {
    throw std::invalid_argument("PHV field width must be 1..64 bits");
  }
  if (Field* field = find(name); field != nullptr) {
    if (used_bits() - field->bits + bits > budget_bits_) {
      throw std::length_error("PHV budget exceeded: " + name);
    }
    field->value = value;
    field->bits = bits;
    field->bridged = field->bridged || bridged;
    return;
  }
  if (used_bits() + bits > budget_bits_) {
    throw std::length_error("PHV budget exceeded: " + name);
  }
  fields_.push_back(Field{name, value, bits, bridged});
}

std::optional<std::uint64_t> Phv::get(const std::string& name) const {
  const Field* field = find(name);
  if (field == nullptr) return std::nullopt;
  return field->value;
}

void Phv::bridge(const std::string& name) {
  if (Field* field = find(name); field != nullptr) field->bridged = true;
}

unsigned Phv::cross_gress() {
  unsigned bridged_bits = 0;
  std::erase_if(fields_, [&](const Field& field) {
    if (field.bridged) {
      bridged_bits += field.bits;
      return false;
    }
    return true;
  });
  // Bridged fields survive exactly one crossing; re-bridge to carry again.
  for (Field& field : fields_) field.bridged = false;
  bridged_bits_total_ += bridged_bits;
  return bridged_bits;
}

unsigned Phv::used_bits() const {
  unsigned total = 0;
  for (const Field& field : fields_) total += field.bits;
  return total;
}

void Phv::clear() {
  fields_.clear();
  bridged_bits_total_ = 0;
}

}  // namespace sf::asic
