#include "asic/phv.hpp"

namespace sf::asic {

namespace {

thread_local std::uint64_t g_string_lookups = 0;

}  // namespace

FieldId PhvLayout::intern(std::string_view name) {
  if (auto it = index_.find(name); it != index_.end()) return it->second;
  if (frozen_) {
    throw std::logic_error("PhvLayout frozen: cannot intern new field \"" +
                           std::string(name) + "\" at runtime");
  }
  if (names_.size() >= kInvalidFieldId) {
    throw std::length_error("PhvLayout: too many PHV fields");
  }
  const FieldId id = static_cast<FieldId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

FieldId PhvLayout::find(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? kInvalidFieldId : it->second;
}

Phv::Phv(unsigned budget_bits, std::shared_ptr<PhvLayout> layout)
    : budget_bits_(budget_bits), layout_(std::move(layout)) {
  if (layout_ == nullptr) layout_ = std::make_shared<PhvLayout>();
  slots_.resize(layout_->size());
}

void Phv::check_width(unsigned bits) const {
  if (bits == 0 || bits > 64) {
    throw std::invalid_argument("PHV field width must be 1..64 bits");
  }
}

void Phv::set(FieldId id, std::uint64_t value, unsigned bits, bool bridged) {
  check_width(bits);
  if (id >= slots_.size()) {
    if (id >= layout_->size()) {
      throw std::out_of_range("PHV field id not in layout");
    }
    slots_.resize(layout_->size());
  }
  Slot& slot = slots_[id];
  const unsigned old_bits = slot.present ? slot.bits : 0;
  if (used_bits_ - old_bits + bits > budget_bits_) {
    throw std::length_error("PHV budget exceeded: " + layout_->name(id));
  }
  used_bits_ = used_bits_ - old_bits + bits;
  slot.value = value;
  slot.bits = static_cast<std::uint16_t>(bits);
  slot.bridged = (slot.present && slot.bridged) || bridged;
  slot.present = true;
}

void Phv::set(const std::string& name, std::uint64_t value, unsigned bits,
              bool bridged) {
  check_width(bits);
  ++g_string_lookups;
  set(resolve_for_write(name), value, bits, bridged);
}

std::optional<std::uint64_t> Phv::get(const std::string& name) const {
  ++g_string_lookups;
  return get(layout_->find(name));
}

void Phv::bridge(const std::string& name) {
  ++g_string_lookups;
  bridge(layout_->find(name));
}

FieldId Phv::resolve_for_write(const std::string& name) {
  const FieldId id = layout_->find(name);
  return id != kInvalidFieldId ? id : layout_->intern(name);
}

unsigned Phv::cross_gress() {
  unsigned bridged_bits = 0;
  for (Slot& slot : slots_) {
    if (!slot.present) continue;
    if (slot.bridged) {
      bridged_bits += slot.bits;
      // Bridged fields survive exactly one crossing; re-bridge to carry
      // again.
      slot.bridged = false;
    } else {
      used_bits_ -= slot.bits;
      slot.present = false;
    }
  }
  bridged_bits_total_ += bridged_bits;
  return bridged_bits;
}

void Phv::clear() {
  for (Slot& slot : slots_) slot = Slot{};
  bridged_bits_total_ = 0;
  used_bits_ = 0;
}

std::uint64_t Phv::string_lookups() { return g_string_lookups; }

}  // namespace sf::asic
