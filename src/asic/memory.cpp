#include "asic/memory.hpp"

#include <algorithm>
#include <stdexcept>

namespace sf::asic {

ChipMemory::ChipMemory(const ChipConfig& config) : config_(config) {
  stages_.resize(std::size_t{config.pipelines} * config.stages_per_pipeline);
  for (StageMemory& stage : stages_) {
    stage.sram_words_free = config.sram_words_per_stage();
    stage.tcam_slices_free = config.tcam_slices_per_stage();
  }
  pipe_free_.assign(std::size_t{config.pipelines} * 2, 0);
  pipe_used_.assign(std::size_t{config.pipelines} * 2, 0);
  first_free_stage_.assign(std::size_t{config.pipelines} * 2, 0);
  for (unsigned p = 0; p < config.pipelines; ++p) {
    pipe_free_[pipe_slot(p, MemoryKind::kSram)] =
        config.sram_words_per_pipeline();
    pipe_free_[pipe_slot(p, MemoryKind::kTcam)] =
        config.tcam_slices_per_pipeline();
  }
}

StageMemory& ChipMemory::stage(unsigned pipeline, unsigned stage_index) {
  return stages_.at(std::size_t{pipeline} * config_.stages_per_pipeline +
                    stage_index);
}

const StageMemory& ChipMemory::stage(unsigned pipeline,
                                     unsigned stage_index) const {
  return stages_.at(std::size_t{pipeline} * config_.stages_per_pipeline +
                    stage_index);
}

std::optional<std::vector<Extent>> ChipMemory::allocate(
    unsigned pipeline, MemoryKind kind, std::size_t units,
    const std::string& owner) {
  if (pipeline >= config_.pipelines) {
    throw std::out_of_range("pipeline index out of range");
  }
  if (units == 0) return std::vector<Extent>{};
  const std::size_t slot = pipe_slot(pipeline, kind);
  if (pipe_free_[slot] < units) return std::nullopt;

  std::vector<Extent> extents;
  std::size_t remaining = units;
  unsigned& cursor = first_free_stage_[slot];
  for (unsigned s = cursor; s < config_.stages_per_pipeline && remaining > 0;
       ++s) {
    StageMemory& mem = stage(pipeline, s);
    std::size_t& free =
        kind == MemoryKind::kSram ? mem.sram_words_free : mem.tcam_slices_free;
    std::size_t& used =
        kind == MemoryKind::kSram ? mem.sram_words_used : mem.tcam_slices_used;
    if (free == 0) {
      // Only advance past a contiguous exhausted prefix; a hole behind a
      // non-empty stage must stay reachable.
      if (s == cursor) ++cursor;
      continue;
    }
    const std::size_t take = std::min(free, remaining);
    free -= take;
    used += take;
    remaining -= take;
    if (free == 0 && s == cursor) ++cursor;
    extents.push_back(Extent{pipeline, s, kind, take});
  }
  pipe_free_[slot] -= units;
  pipe_used_[slot] += units;
  if (track_allocations_) {
    allocations_.push_back(Allocation{owner, extents});
  }
  return extents;
}

void ChipMemory::release(const Extent& extent) {
  StageMemory& mem = stage(extent.pipeline, extent.stage);
  if (extent.kind == MemoryKind::kSram) {
    mem.sram_words_free += extent.units;
    mem.sram_words_used -= extent.units;
  } else {
    mem.tcam_slices_free += extent.units;
    mem.tcam_slices_used -= extent.units;
  }
  const std::size_t slot = pipe_slot(extent.pipeline, extent.kind);
  pipe_free_[slot] += extent.units;
  pipe_used_[slot] -= extent.units;
  first_free_stage_[slot] = std::min(first_free_stage_[slot], extent.stage);
}

void ChipMemory::release(const std::vector<Extent>& extents) {
  for (const Extent& extent : extents) release(extent);
}

std::size_t ChipMemory::free_units(unsigned pipeline, MemoryKind kind) const {
  return pipe_free_[pipe_slot(pipeline, kind)];
}

std::size_t ChipMemory::used_units(unsigned pipeline, MemoryKind kind) const {
  return pipe_used_[pipe_slot(pipeline, kind)];
}

std::size_t ChipMemory::capacity_units(unsigned pipeline,
                                       MemoryKind kind) const {
  (void)pipeline;
  return kind == MemoryKind::kSram ? config_.sram_words_per_pipeline()
                                   : config_.tcam_slices_per_pipeline();
}

double ChipMemory::occupancy(unsigned pipeline, MemoryKind kind) const {
  return static_cast<double>(used_units(pipeline, kind)) /
         static_cast<double>(capacity_units(pipeline, kind));
}

}  // namespace sf::asic
