// The packet walker: executes a PipelineProgram over the SfChip structure,
// enforcing the architectural constraints that shaped the paper's design:
//
//   * metadata does not survive a gress crossing unless bridged (the
//     bridged bits are charged as wire overhead);
//   * a loopback egress pipe sends the packet back through that pipe's
//     ingress (pipeline folding) — each extra pass adds a pass latency;
//   * the walk aborts defensively after kMaxPasses to catch misconfigured
//     loopback cycles.

#pragma once

#include <string>

#include "asic/chip_config.hpp"
#include "asic/pipeline.hpp"

namespace sf::asic {

struct WalkResult {
  net::OverlayPacket packet;
  /// Final metadata (whatever survived to the last gress).
  Phv meta;
  bool dropped = false;
  std::string drop_reason;
  /// Pipeline passes (ingress+egress pairs) the packet made.
  unsigned passes = 0;
  /// Pipe whose egress finally emitted the packet.
  unsigned egress_pipe = 0;
  /// Metadata bits bridged across gress boundaries (wire overhead).
  unsigned bridged_bits = 0;
  /// Modeled forwarding latency.
  double latency_us = 0;
};

class Walker {
 public:
  static constexpr unsigned kMaxPasses = 8;

  Walker(const ChipConfig& chip, const PipelineProgram* program)
      : chip_(chip), program_(program) {}

  /// Runs one packet entering at `ingress_pipe`.
  WalkResult run(net::OverlayPacket packet, unsigned ingress_pipe) const;

 private:
  ChipConfig chip_;
  const PipelineProgram* program_;
};

}  // namespace sf::asic
