// The packet walker: executes a PipelineProgram over the SfChip structure,
// enforcing the architectural constraints that shaped the paper's design:
//
//   * metadata does not survive a gress crossing unless bridged (the
//     bridged bits are charged as wire overhead);
//   * a loopback egress pipe sends the packet back through that pipe's
//     ingress (pipeline folding) — each extra pass adds a pass latency;
//   * the walk aborts defensively after kMaxPasses to catch misconfigured
//     loopback cycles.

#pragma once

#include <string>
#include <vector>

#include "asic/chip_config.hpp"
#include "asic/pipeline.hpp"
#include "telemetry/registry.hpp"

namespace sf::asic {

/// The scalar observables of one walk — everything WalkResult carries
/// except the rewritten packet and the surviving Phv (those stay in the
/// caller's PacketContext under the borrow-shaped run()).
struct WalkSummary {
  bool dropped = false;
  const char* drop_note = nullptr;
  std::uint8_t drop_code = 0;
  unsigned passes = 0;
  unsigned egress_pipe = 0;
  unsigned bridged_bits = 0;
  double latency_us = 0;
};

struct WalkResult {
  net::OverlayPacket packet;
  /// Final metadata (whatever survived to the last gress).
  Phv meta;
  bool dropped = false;
  /// Static-storage drop label forwarded from PacketContext::drop_note
  /// (never heap-allocated; null when not dropped).
  const char* drop_note = nullptr;
  /// Opaque drop classifier forwarded from PacketContext::drop_code.
  std::uint8_t drop_code = 0;
  /// Pipeline passes (ingress+egress pairs) the packet made.
  unsigned passes = 0;
  /// Pipe whose egress finally emitted the packet.
  unsigned egress_pipe = 0;
  /// Metadata bits bridged across gress boundaries (wire overhead).
  unsigned bridged_bits = 0;
  /// Modeled forwarding latency.
  double latency_us = 0;
};

class Walker {
 public:
  static constexpr unsigned kMaxPasses = 8;

  /// The walker borrows both the chip model and the program: the caller
  /// (the gateway owning both) must keep them alive for the walker's
  /// lifetime. Binding to a temporary ChipConfig is a compile error.
  Walker(const ChipConfig& chip, const PipelineProgram* program)
      : chip_(&chip), program_(program) {}
  Walker(ChipConfig&&, const PipelineProgram*) = delete;

  /// Registers the registry the walk records into: per-pipe/per-gress
  /// packet counts ("asic.pipeN.ingress.packets"), total packets, drops,
  /// and a pass-count histogram. Stages see it as PacketContext::stats for
  /// per-table hit/miss accounting. Counter handles are resolved here once
  /// so the per-packet cost is a few pointer bumps.
  void set_registry(telemetry::Registry* registry);

  /// Runs one packet entering at `ingress_pipe`. Thin wrapper over the
  /// borrow-shaped overload below; copies the packet and Phv out.
  WalkResult run(net::OverlayPacket packet, unsigned ingress_pipe) const;

  /// Borrow/out-param walk core: runs `packet` through the program reusing
  /// the caller's `ctx` as scratch — its Phv keeps its slot capacity across
  /// packets, so a warm context walks without allocating. The rewritten
  /// packet and surviving metadata are left in `ctx`; the scalar
  /// observables land in `out`. When `record_pass_hist` is false the
  /// per-walk "asic.passes" record is skipped — batch callers re-record it
  /// later in packet-index order so histogram streams keep the scalar
  /// path's ordering (counters commute; histogram samples do not).
  void run(const net::OverlayPacket& packet, unsigned ingress_pipe,
           PacketContext& ctx, WalkSummary& out,
           bool record_pass_hist = true) const;

 private:
  const ChipConfig* chip_;
  const PipelineProgram* program_;
  telemetry::Registry* registry_ = nullptr;
  std::vector<telemetry::Counter*> ingress_packets_;  // per pipe
  std::vector<telemetry::Counter*> egress_packets_;   // per pipe
  telemetry::Counter* packets_ = nullptr;
  telemetry::Counter* drops_ = nullptr;
  telemetry::Histogram* passes_ = nullptr;
};

}  // namespace sf::asic
