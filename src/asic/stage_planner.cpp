#include "asic/stage_planner.hpp"

#include <unordered_map>

namespace sf::asic {

StagePlanner::Plan StagePlanner::plan(
    const std::vector<StageTable>& tables) const {
  Plan plan;
  plan.stages.resize(chip_.stages_per_pipeline);

  // last_stage of every placed table, for dependency resolution.
  std::unordered_map<std::string, unsigned> finished_at;

  for (const StageTable& table : tables) {
    // A match dependency forces the start past the dependee's last stage;
    // independent tables may share a stage (parallel lookups).
    unsigned start = 0;
    for (const std::string& dep : table.depends_on) {
      auto it = finished_at.find(dep);
      if (it == finished_at.end()) {
        plan.feasible = false;
        plan.infeasible_reason =
            table.name + " depends on unknown table " + dep;
        return plan;
      }
      start = std::max(start, it->second + 1);
    }
    if (start >= chip_.stages_per_pipeline) {
      plan.feasible = false;
      plan.infeasible_reason =
          table.name + ": dependency chain exceeds the stage budget";
      return plan;
    }

    TablePlacement placement;
    placement.name = table.name;
    placement.first_stage = start;

    std::size_t remaining = table.units;
    unsigned stage = start;
    if (remaining == 0) {
      // Zero-width tables (pure actions/gateways) still occupy a stage
      // slot for dependency ordering.
      placement.chunks.push_back({stage, 0});
    }
    while (remaining > 0) {
      if (stage >= chip_.stages_per_pipeline) {
        plan.feasible = false;
        plan.infeasible_reason =
            table.name + ": out of stage memory (needs " +
            std::to_string(remaining) + " more units past stage " +
            std::to_string(chip_.stages_per_pipeline - 1) + ")";
        return plan;
      }
      StageUse& use = plan.stages[stage];
      const std::size_t capacity = table.kind == MemoryKind::kSram
                                       ? chip_.sram_words_per_stage()
                                       : chip_.tcam_slices_per_stage();
      std::size_t& used = table.kind == MemoryKind::kSram
                              ? use.sram_words
                              : use.tcam_slices;
      const std::size_t free = capacity > used ? capacity - used : 0;
      const std::size_t take = std::min(free, remaining);
      if (take > 0) {
        used += take;
        remaining -= take;
        placement.chunks.push_back({stage, take});
      }
      if (remaining > 0) ++stage;
    }
    if (!placement.chunks.empty()) {
      placement.first_stage = placement.chunks.front().first;
      placement.last_stage = placement.chunks.back().first;
    } else {
      placement.last_stage = start;
    }
    finished_at[table.name] = placement.last_stage;
    plan.stages_used =
        std::max(plan.stages_used, placement.last_stage + 1);
    plan.tables.push_back(std::move(placement));
  }
  plan.feasible = true;
  return plan;
}

}  // namespace sf::asic
