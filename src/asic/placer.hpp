// The table placer: maps logical gateway tables onto SfChip memories under
// a chosen combination of the paper's six single-node compression
// techniques (§4.4), and reports occupancy. This is the engine behind
// Table 2, Table 3, Table 4 and Fig. 17.
//
// Technique -> model:
//  (a) pipeline folding       — a logical gateway path spans two pipelines
//      (0+1 and 2+3), so tables are stored twice per chip instead of four
//      times; throughput halves, latency doubles (walker).
//  (b) table splitting        — the two folded paths hold disjoint halves
//      of each shardable table (hash of VNI/inner IP picks the path).
//  (c) IPv4/IPv6 pooling      — one dual-stack LPM table; v4 keys widen to
//      the 153-bit pooled key (more TCAM per v4 entry, one table).
//  (d) entry compression      — pooled exact-match keys: v6 IPs digest to
//      32 bits, entries shrink to one SRAM word plus a tiny conflict table.
//  (e) ALPM                   — the LPM bulk moves to SRAM buckets behind a
//      small TCAM directory (tables/alpm.hpp supplies measured stats).
//
// Placement honors the §4.4 layout principles: tables are assigned to path
// slots following the lookup order (Ingress front pipe -> Egress back pipe
// -> Ingress back pipe -> Egress front pipe); when a table overflows its
// slot's pipe it spills to the path's other pipe — exactly the "mapping
// large tables across pipelines" technique.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "asic/chip_config.hpp"
#include "asic/memory.hpp"
#include "tables/entry.hpp"

namespace sf::asic {

/// Entry counts of the gateway's tables (the paper's workload scale).
struct GatewayWorkload {
  std::size_t vxlan_routes_v4 = 750'000;
  std::size_t vxlan_routes_v6 = 250'000;
  std::size_t vm_maps_v4 = 750'000;
  std::size_t vm_maps_v6 = 250'000;
  /// Digest conflicts measured by the DigestVmNcTable (tiny; birthday
  /// bound ~ n^2 / 2^33).
  std::size_t digest_conflicts = 8;

  // Service tables, counted only by Table 4's "overall" scenario.
  std::size_t acl_rules = 0;
  std::size_t meters = 0;
  std::size_t counters = 0;
  std::size_t steering_entries = 0;
};

/// Measured ALPM shape (from tables::Alpm<...>::stats()), or an analytic
/// estimate when not supplied.
struct AlpmDemand {
  std::size_t directory_slices = 0;
  std::size_t bucket_words = 0;
};

struct CompressionConfig {
  bool fold = false;      // (a)
  bool split = false;     // (b) requires fold
  bool pool = false;      // (c)
  bool compress = false;  // (d)
  bool alpm = false;      // (e)
  /// (f) cross-path spill: when a table overflows both pipes of its own
  /// path, keep spilling into the *other* paths' pipes (same slot position
  /// first, then the sibling) before declaring the demand unplaced. Off by
  /// default — the paper's 4-pipe chip never needs it; the 10M-route
  /// multi-pipeline scenarios do.
  bool cross_path_spill = false;

  std::size_t alpm_max_bucket = 32;
  /// Expected bucket fill used for the analytic ALPM estimate when no
  /// measured stats are provided. A positive value pins the legacy
  /// fixed-fill formula; <= 0 (the default) selects the calibrated model
  /// (tables::estimate_alpm_shape), which tracks Alpm::stats() within 5%
  /// from 1M to 10M routes.
  double alpm_estimated_fill = 0;
  std::optional<AlpmDemand> measured_alpm;

  /// Placer::replace() falls back to a full recompute once a layout has
  /// accumulated this many fragmentation events (off-plan spill segments
  /// opened or emptied by incremental moves).
  std::size_t replace_fragmentation_limit = 64;

  static CompressionConfig none() { return {}; }
  static CompressionConfig all() {
    CompressionConfig c;
    c.fold = c.split = c.pool = c.compress = c.alpm = true;
    return c;
  }
};

/// Where a table sits along the folded path (lookup order).
enum class PathSlot : std::uint8_t {
  kFrontIngress,  // Ingress Pipe 0/2 — first lookup
  kBackEgress,    // Egress Pipe 1/3
  kBackIngress,   // Ingress Pipe 1/3
  kFrontEgress,   // Egress Pipe 0/2 — last lookup
  kBalanced,      // evenly split across the path's pipes (§4.4 principle 3)
};

/// One logical table's memory bill.
struct TableDemand {
  std::string name;
  std::size_t sram_words = 0;
  std::size_t tcam_slices = 0;
  /// Shardable tables split entries across paths under (b); control
  /// tables replicate instead.
  bool shardable = true;
  PathSlot slot = PathSlot::kFrontIngress;
};

/// Per-pipeline occupancy fractions.
struct PipeOccupancy {
  double sram = 0;
  double tcam = 0;
};

struct OccupancyReport {
  std::vector<PipeOccupancy> pipes;   // size = chip pipelines
  double sram_worst = 0;              // max over pipelines
  double tcam_worst = 0;
  /// Path-level occupancy: one gateway instance's demand over all memory
  /// its path traverses (folding doubles the denominator). This is the
  /// accounting Fig. 17 and Tables 2/3 report.
  std::vector<PipeOccupancy> paths;
  double sram_path_worst = 0;
  double tcam_path_worst = 0;
  bool feasible = false;              // physical allocation succeeded
  std::vector<TableDemand> demands;   // the per-table bill (unsharded)
};

/// Computes each logical table's demand under a compression config.
std::vector<TableDemand> compute_demands(const ChipConfig& chip,
                                         const GatewayWorkload& workload,
                                         const CompressionConfig& config);

class Placement;
struct WorkloadDelta;

class Placer {
 public:
  explicit Placer(ChipConfig chip) : chip_(chip) {}

  /// Full evaluation: demands + placement + occupancy.
  OccupancyReport evaluate(const GatewayWorkload& workload,
                           const CompressionConfig& config) const;

  /// Places externally computed demands (used by Table 4's bench, which
  /// adds service tables with explicit slots).
  OccupancyReport place(std::vector<TableDemand> demands,
                        const CompressionConfig& config) const;

  // ---- retained layouts (asic/placement.hpp) -----------------------------
  // Same arithmetic as evaluate()/place(), but the result keeps the full
  // layout (per-table spill chains, extents, chip memory) so deltas can be
  // applied in place instead of recomputing everything.

  Placement place_layout(const GatewayWorkload& workload,
                         const CompressionConfig& config) const;
  Placement place_layout(std::vector<TableDemand> demands,
                         const CompressionConfig& config,
                         const GatewayWorkload& workload) const;

  /// Applies a workload delta to an existing layout. Incremental moves
  /// touch only the affected tables' spill chains; the result is always
  /// occupancy-identical to a from-scratch placement of the new workload
  /// (the engine falls back to a full recompute whenever the incremental
  /// layout would diverge, or once fragmentation crosses
  /// CompressionConfig::replace_fragmentation_limit). Defined for layouts
  /// built from a GatewayWorkload — demand-vector layouts (Table 4 style)
  /// should be re-placed instead.
  Placement replace(const Placement& base, const WorkloadDelta& delta) const;

  const ChipConfig& chip() const { return chip_; }

 private:
  ChipConfig chip_;
};

}  // namespace sf::asic
