// RMT parser model.
//
// A programmable switch's parser is its own little machine: a TCAM-driven
// state graph that extracts header fields into the PHV, with hard budgets
// on states and on bytes extracted per packet. The gateway's parse graph
// (Ethernet -> outer IP -> UDP -> VXLAN -> inner Ethernet -> inner IP) has
// to fit those budgets just like the tables have to fit the MAU memories;
// this model checks that, and simulates the state walk for a packet's
// header-type sequence.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace sf::asic {

class ParserGraph {
 public:
  struct Budget {
    /// Parser TCAM entries (state-transition rows).
    std::size_t max_transitions = 256;
    std::size_t max_states = 32;
    /// Header bytes extracted along any path.
    std::size_t max_extract_bytes = 256;
  };

  struct Transition {
    /// Select value matched against the current state's select field
    /// (e.g. ether_type); nullopt = default transition.
    std::optional<std::uint32_t> select;
    std::string next_state;  // "accept" and "reject" are terminal
  };

  ParserGraph();
  explicit ParserGraph(Budget budget) : budget_(budget) {}

  /// Adds a state extracting `extract_bytes` of header. Returns false if
  /// the state budget is exhausted or the name already exists.
  bool add_state(const std::string& name, std::size_t extract_bytes);

  /// Adds a transition out of `from`. Returns false when the transition
  /// budget is exhausted or `from` is unknown.
  bool add_transition(const std::string& from, Transition transition);

  struct Validation {
    bool ok = false;
    std::string error;
  };

  /// Structural checks: every referenced state exists, every state is
  /// reachable from "start", every path terminates, and no path exceeds
  /// the extract budget.
  Validation validate() const;

  struct WalkResult {
    bool accepted = false;
    std::vector<std::string> path;
    std::size_t extracted_bytes = 0;
    std::string error;
  };

  /// Simulates the state walk for a packet described by its sequence of
  /// select values (one value consumed per state that has selecting
  /// transitions).
  WalkResult walk(const std::vector<std::uint32_t>& selects) const;

  std::size_t state_count() const { return states_.size(); }
  std::size_t transition_count() const { return transitions_total_; }
  const Budget& budget() const { return budget_; }

 private:
  struct State {
    std::size_t extract_bytes = 0;
    std::vector<Transition> transitions;
  };

  Budget budget_;
  std::unordered_map<std::string, State> states_;
  std::size_t transitions_total_ = 0;
};

/// The Sailfish gateway's parse graph (matches the exported P4 parser).
ParserGraph sailfish_parser_graph();

/// Select sequences for the four overlay header combinations
/// (outer v4/v6 x inner v4/v6), for tests and budget reports.
std::vector<std::uint32_t> sailfish_selects(bool outer_v6, bool inner_v6);

inline ParserGraph::ParserGraph() : ParserGraph(Budget{}) {}

}  // namespace sf::asic
