// Per-stage memory accounting — the constraint at the heart of the paper.
//
// Each stage owns its SRAM and TCAM; no stage (or pipeline) can borrow from
// another (§3.2). A logical table larger than one stage must be split
// across stages of the same pipeline (the compiler handles that, §3.3) —
// the allocator here does the same: an allocation is a list of extents,
// greedily packed stage by stage. Cross-pipeline placement is *not*
// automatic; that is exactly the placer's job (asic/placer.hpp).

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "asic/chip_config.hpp"

namespace sf::asic {

enum class MemoryKind : std::uint8_t { kSram, kTcam };

/// One contiguous chunk of an allocation inside a single stage.
struct Extent {
  unsigned pipeline = 0;
  unsigned stage = 0;
  MemoryKind kind = MemoryKind::kSram;
  std::size_t units = 0;  // SRAM words or TCAM slices
};

/// Free/used unit counters of one stage.
struct StageMemory {
  std::size_t sram_words_free = 0;
  std::size_t tcam_slices_free = 0;
  std::size_t sram_words_used = 0;
  std::size_t tcam_slices_used = 0;
};

/// All memory of one chip; allocations are tracked per stage.
class ChipMemory {
 public:
  explicit ChipMemory(const ChipConfig& config);

  /// Allocates `units` of `kind` within one pipeline, splitting across its
  /// stages front to back. Returns std::nullopt (and leaves state
  /// unchanged) when the pipeline cannot hold the request.
  std::optional<std::vector<Extent>> allocate(unsigned pipeline,
                                              MemoryKind kind,
                                              std::size_t units,
                                              const std::string& owner);

  /// Releases previously allocated extents.
  void release(const std::vector<Extent>& extents);

  std::size_t free_units(unsigned pipeline, MemoryKind kind) const;
  std::size_t used_units(unsigned pipeline, MemoryKind kind) const;
  std::size_t capacity_units(unsigned pipeline, MemoryKind kind) const;

  /// used / capacity for one pipeline.
  double occupancy(unsigned pipeline, MemoryKind kind) const;

  const ChipConfig& config() const { return config_; }

  /// Named allocations, for reports.
  struct Allocation {
    std::string owner;
    std::vector<Extent> extents;
  };
  const std::vector<Allocation>& allocations() const { return allocations_; }

 private:
  StageMemory& stage(unsigned pipeline, unsigned stage_index);
  const StageMemory& stage(unsigned pipeline, unsigned stage_index) const;

  ChipConfig config_;
  std::vector<StageMemory> stages_;  // pipeline-major
  std::vector<Allocation> allocations_;
};

}  // namespace sf::asic
