// Per-stage memory accounting — the constraint at the heart of the paper.
//
// Each stage owns its SRAM and TCAM; no stage (or pipeline) can borrow from
// another (§3.2). A logical table larger than one stage must be split
// across stages of the same pipeline (the compiler handles that, §3.3) —
// the allocator here does the same: an allocation is a list of extents,
// greedily packed stage by stage. Cross-pipeline placement is *not*
// automatic; that is exactly the placer's job (asic/placer.hpp).
//
// Pipe-level totals are cached (free_units/used_units are O(1)) and a
// first-free-stage cursor keeps allocate() from rescanning exhausted
// front stages — the placer calls these in its innermost loop, and at 10M
// routes the old per-stage recount dominated placement time.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "asic/chip_config.hpp"

namespace sf::asic {

enum class MemoryKind : std::uint8_t { kSram, kTcam };

/// One contiguous chunk of an allocation inside a single stage.
struct Extent {
  unsigned pipeline = 0;
  unsigned stage = 0;
  MemoryKind kind = MemoryKind::kSram;
  std::size_t units = 0;  // SRAM words or TCAM slices
};

/// Free/used unit counters of one stage.
struct StageMemory {
  std::size_t sram_words_free = 0;
  std::size_t tcam_slices_free = 0;
  std::size_t sram_words_used = 0;
  std::size_t tcam_slices_used = 0;
};

/// All memory of one chip; allocations are tracked per stage.
class ChipMemory {
 public:
  explicit ChipMemory(const ChipConfig& config);

  /// Allocates `units` of `kind` within one pipeline, splitting across its
  /// stages front to back. Returns std::nullopt (and leaves state
  /// unchanged) when the pipeline cannot hold the request.
  std::optional<std::vector<Extent>> allocate(unsigned pipeline,
                                              MemoryKind kind,
                                              std::size_t units,
                                              const std::string& owner);

  /// Releases previously allocated extents. Partial extents are fine: an
  /// extent naming fewer units than were allocated in its stage releases
  /// just those units (the incremental placer shrinks chains this way).
  void release(const std::vector<Extent>& extents);
  void release(const Extent& extent);

  std::size_t free_units(unsigned pipeline, MemoryKind kind) const;
  std::size_t used_units(unsigned pipeline, MemoryKind kind) const;
  std::size_t capacity_units(unsigned pipeline, MemoryKind kind) const;

  /// used / capacity for one pipeline.
  double occupancy(unsigned pipeline, MemoryKind kind) const;

  const ChipConfig& config() const { return config_; }

  /// Named allocations, for reports. Retained layouts (asic/placement.hpp)
  /// turn the log off: a long-lived placement applies unbounded deltas and
  /// must not grow an owner-string ledger per allocation.
  void set_track_allocations(bool track) { track_allocations_ = track; }
  struct Allocation {
    std::string owner;
    std::vector<Extent> extents;
  };
  const std::vector<Allocation>& allocations() const { return allocations_; }

 private:
  StageMemory& stage(unsigned pipeline, unsigned stage_index);
  const StageMemory& stage(unsigned pipeline, unsigned stage_index) const;
  std::size_t pipe_slot(unsigned pipeline, MemoryKind kind) const {
    return std::size_t{pipeline} * 2 +
           (kind == MemoryKind::kSram ? 0 : 1);
  }

  ChipConfig config_;
  std::vector<StageMemory> stages_;  // pipeline-major
  /// Cached per-(pipeline, kind) totals; index = pipeline * 2 + kind.
  std::vector<std::size_t> pipe_free_;
  std::vector<std::size_t> pipe_used_;
  /// First stage that may still have free units, per (pipeline, kind):
  /// every stage before the cursor is exhausted. allocate() advances it;
  /// release() pulls it back.
  std::vector<unsigned> first_free_stage_;
  bool track_allocations_ = true;
  std::vector<Allocation> allocations_;
};

}  // namespace sf::asic
