// SfChip: the architectural model of the programmable switching ASIC.
//
// Geometry and rate parameters mirror a Tofino-class 6.4T chip and are
// calibrated so that the paper's workload reproduces Table 2 from first
// principles (DESIGN.md §1):
//
//   * 4 pipelines x 12 stages.
//   * Per stage: 70 SRAM blocks (2048 words x 128 bit) and 26 TCAM blocks
//     (2048 rows x 44-bit slice). Per pipeline that is 1,720,320 SRAM
//     words and 638,976 TCAM slices.
//   * 1 M VXLAN v4 routes at 2 slices each -> 313% of one pipeline's TCAM
//     (paper: 311%); 1 M VM-NC v4 mappings at 1 word each -> 58.1% of one
//     pipeline's SRAM (paper: 58%).
//
// Cost rules:
//   * TCAM: ceil(key_bits / slice_bits) slices per entry.
//   * SRAM exact match: ceil((key + action + 16 meta bits) / word) words;
//     keys wider than one word double the bill (dual-bank replication for
//     the two-stage wide hash) — this is what makes a v6 VM-NC entry cost
//     4 words (paper: 233% vs 58%).

#pragma once

#include <cstddef>
#include <cstdint>

#include "tables/entry.hpp"

namespace sf::asic {

struct ChipConfig {
  unsigned pipelines = 4;
  unsigned stages_per_pipeline = 12;

  unsigned sram_blocks_per_stage = 70;
  unsigned sram_block_words = 2048;
  unsigned sram_word_bits = 128;

  unsigned tcam_blocks_per_stage = 26;
  unsigned tcam_block_rows = 2048;
  unsigned tcam_slice_bits = 44;

  /// One full pass (ingress + egress) through a pipeline, light load.
  double pass_latency_us = 1.08;
  /// Store-and-forward / serialization cost per byte of wire size.
  double latency_ns_per_byte = 0.145;

  /// Line rate per pipeline; 4 x 1.6T = the 6.4T chip.
  double line_rate_bps_per_pipe = 1.6e12;
  /// Packet-rate ceiling per pipeline (MAU clock bound).
  double packet_rate_pps_per_pipe = 0.9e9;

  /// PHV capacity available for user metadata, per gress (bits). "Scarce
  /// but not exhausted yet" (§6.2).
  unsigned phv_metadata_bits = 1536;

  // ---- derived geometry -------------------------------------------------

  std::size_t sram_words_per_stage() const {
    return std::size_t{sram_blocks_per_stage} * sram_block_words;
  }
  std::size_t sram_words_per_pipeline() const {
    return sram_words_per_stage() * stages_per_pipeline;
  }
  std::size_t tcam_slices_per_stage() const {
    return std::size_t{tcam_blocks_per_stage} * tcam_block_rows;
  }
  std::size_t tcam_slices_per_pipeline() const {
    return tcam_slices_per_stage() * stages_per_pipeline;
  }

  // ---- per-entry cost model ----------------------------------------------

  /// TCAM slices for a ternary/LPM entry of the given key width.
  unsigned tcam_slices_per_entry(unsigned key_bits) const {
    return (key_bits + tcam_slice_bits - 1) / tcam_slice_bits;
  }

  /// SRAM words for one exact-match entry (key + action + overhead), with
  /// the wide-key dual-bank rule.
  unsigned sram_words_per_entry(unsigned key_bits,
                                unsigned action_bits) const {
    const unsigned meta_bits = 16;  // valid/version/ECC overhead
    unsigned words =
        (key_bits + action_bits + meta_bits + sram_word_bits - 1) /
        sram_word_bits;
    if (key_bits > sram_word_bits) words *= 2;
    return words;
  }

  // ---- performance model (Fig. 18) ---------------------------------------

  /// Aggregate throughput with `active_pipes` pipelines accepting traffic
  /// from the wire (folding halves this: loopback pipes carry the same
  /// packet again).
  double throughput_bps(unsigned active_pipes) const {
    return line_rate_bps_per_pipe * active_pipes;
  }

  /// Aggregate packet rate ceiling.
  double packet_rate_pps(unsigned active_pipes) const {
    return packet_rate_pps_per_pipe * active_pipes;
  }

  /// Forwarding latency for a packet traversing `passes` pipeline passes.
  double latency_us(unsigned passes, std::size_t wire_bytes) const {
    return pass_latency_us * passes +
           latency_ns_per_byte * static_cast<double>(wire_bytes) / 1000.0;
  }
};

}  // namespace sf::asic
