// Stage-level layout within one pipeline — the part §3.3 says "can be
// automatically handled by the Tofino's compiler": a logical table larger
// than one stage's memory splits across consecutive stages, and a table
// whose match key depends on an earlier table's result must start in a
// strictly later stage (match dependency). The placer (asic/placer.hpp)
// answers *which pipeline* holds a table; the stage planner answers
// *which stages inside it*, and whether the program fits the stage budget
// at all — the dependency-depth constraint no amount of memory can fix.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asic/chip_config.hpp"
#include "asic/memory.hpp"

namespace sf::asic {

/// One logical table to lay out in a gress program.
struct StageTable {
  std::string name;
  MemoryKind kind = MemoryKind::kSram;
  std::size_t units = 0;  // SRAM words or TCAM slices
  /// Names of tables whose results this table's key depends on (must be
  /// fully resolved in earlier stages).
  std::vector<std::string> depends_on;
};

class StagePlanner {
 public:
  struct TablePlacement {
    std::string name;
    /// (stage, units) chunks, consecutive stages.
    std::vector<std::pair<unsigned, std::size_t>> chunks;
    unsigned first_stage = 0;
    unsigned last_stage = 0;
  };

  struct StageUse {
    std::size_t sram_words = 0;
    std::size_t tcam_slices = 0;
  };

  struct Plan {
    bool feasible = false;
    std::string infeasible_reason;
    std::vector<TablePlacement> tables;
    std::vector<StageUse> stages;  // size = stages_per_pipeline
    unsigned stages_used = 0;      // 1 + highest occupied stage
  };

  explicit StagePlanner(ChipConfig chip) : chip_(chip) {}

  /// Lays out `tables` (in lookup order) over one pipeline's stages.
  /// Unknown dependency names are an error (infeasible with reason).
  Plan plan(const std::vector<StageTable>& tables) const;

  const ChipConfig& chip() const { return chip_; }

 private:
  ChipConfig chip_;
};

}  // namespace sf::asic
