// PipelineProgram is header-only (asic/pipeline.hpp); this TU keeps the
// header honest under standalone compilation.

#include "asic/pipeline.hpp"

namespace sf::asic {

static_assert(sizeof(PacketContext) > 0);

}  // namespace sf::asic
