// Umbrella header for sf::telemetry: registry + sketch + journal +
// exporters. Subsystems that only need one piece include it directly.

#pragma once

#include "telemetry/export.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sketch.hpp"
