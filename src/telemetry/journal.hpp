// Ring-buffer event journal: the operational paper trail (table updates,
// failovers, water-level alerts) with bounded memory. When the ring wraps,
// the oldest events are overwritten but the monotonic sequence numbers
// make the loss visible to a consumer.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sf::telemetry {

struct Event {
  std::uint64_t sequence = 0;  // 1-based, monotonic
  double time = 0;             // producer's clock (simulation seconds)
  std::string category;        // "table-update", "failover", "alert", ...
  std::string message;
};

class EventJournal {
 public:
  explicit EventJournal(std::size_t capacity = 256);

  void record(std::string category, std::string message, double time = 0);

  /// Retained events, oldest first.
  std::vector<Event> events() const;

  /// Retained events of one category, oldest first.
  std::vector<Event> events(const std::string& category) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }
  std::uint64_t total_recorded() const { return sequence_; }
  std::uint64_t overwritten() const { return sequence_ - ring_.size(); }

  void clear();

  /// One line per event: "#seq [t=...] category: message".
  std::string to_string() const;

 private:
  std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  // next write position once the ring is full
  std::uint64_t sequence_ = 0;
};

}  // namespace sf::telemetry
