// Snapshot exporters: the same registry state in three shapes —
//   * a human console table (sim::TablePrinter), for examples and benches;
//   * canonical JSON, for scripted consumers;
//   * Prometheus text exposition format, for a scrape endpoint.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"
#include "telemetry/sketch.hpp"

namespace sf::telemetry {

/// Fixed-width console table: counters, then gauges (when any), then
/// histogram summaries.
std::string to_table(const Snapshot& snapshot);

/// {"counters": {...}, "histograms": {name: {count, sum, min, max,
/// p50, p90, p99, buckets: [[upper, count], ...]}, ...}}. A "gauges"
/// object follows only when the snapshot holds gauges, so counter-only
/// snapshots render byte-identically to pre-gauge builds.
std::string to_json(const Snapshot& snapshot);

/// Prometheus text format. Names are sanitized to [a-zA-Z0-9_:]; counters
/// get a `_total` suffix, gauges emit plain level series, histograms emit
/// cumulative `_bucket{le=...}`, `_sum` and `_count` series.
std::string to_prometheus(const Snapshot& snapshot);

/// Heavy-hitter console table: rank, flow, estimated share of `total`.
std::string to_table(const std::vector<HeavyHitterTracker::Entry>& top,
                     std::uint64_t total);

}  // namespace sf::telemetry
