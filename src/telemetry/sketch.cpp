#include "telemetry/sketch.hpp"

#include <algorithm>
#include <sstream>

#include "net/hash.hpp"

namespace sf::telemetry {

std::uint64_t FlowKey::hash() const {
  return net::hash_combine(net::mix64(vni), tuple.hash());
}

std::string FlowKey::to_string() const {
  std::ostringstream out;
  out << "vni " << vni << " " << tuple.src.to_string() << ":"
      << tuple.src_port << " -> " << tuple.dst.to_string() << ":"
      << tuple.dst_port << " proto " << static_cast<unsigned>(tuple.proto);
  return out.str();
}

CountMinSketch::CountMinSketch(Config config) : config_(config) {
  if (config_.width == 0) config_.width = 1;
  if (config_.depth == 0) config_.depth = 1;
  rows_.assign(static_cast<std::size_t>(config_.depth) * config_.width, 0);
}

std::size_t CountMinSketch::index(unsigned row,
                                  std::uint64_t key_hash) const {
  // Per-row pairwise-independent-ish hashing: mix the key with a
  // row-specific seed; the switch would use distinct CRC polynomials.
  const std::uint64_t h = net::hash_combine(
      net::mix64(config_.seed + 0x9e3779b97f4a7c15ULL * (row + 1)),
      key_hash);
  return static_cast<std::size_t>(row) * config_.width +
         static_cast<std::size_t>(h % config_.width);
}

void CountMinSketch::add(std::uint64_t key_hash, std::uint64_t amount) {
  for (unsigned row = 0; row < config_.depth; ++row) {
    rows_[index(row, key_hash)] += amount;
  }
  total_ += amount;
}

std::uint64_t CountMinSketch::estimate(std::uint64_t key_hash) const {
  std::uint64_t best = ~std::uint64_t{0};
  for (unsigned row = 0; row < config_.depth; ++row) {
    best = std::min(best, rows_[index(row, key_hash)]);
  }
  return best == ~std::uint64_t{0} ? 0 : best;
}

double CountMinSketch::error_bound() const {
  constexpr double kE = 2.718281828459045;
  return kE / static_cast<double>(config_.width) *
         static_cast<double>(total_);
}

void CountMinSketch::decay(double factor) {
  factor = std::clamp(factor, 0.0, 1.0);
  // Integer truncation after one double multiply: deterministic on every
  // IEEE-754 host, and counters monotonically shrink toward zero.
  for (std::uint64_t& cell : rows_) {
    cell = static_cast<std::uint64_t>(static_cast<double>(cell) * factor);
  }
  total_ = static_cast<std::uint64_t>(static_cast<double>(total_) * factor);
}

void CountMinSketch::clear() {
  std::fill(rows_.begin(), rows_.end(), 0);
  total_ = 0;
}

HeavyHitterTracker::HeavyHitterTracker(Config config)
    : config_(config), sketch_(config.sketch) {
  if (config_.capacity == 0) config_.capacity = 1;
  entries_.reserve(config_.capacity);
}

void HeavyHitterTracker::add(const FlowKey& key, std::uint64_t amount) {
  const std::uint64_t h = key.hash();
  sketch_.add(h, amount);
  const std::uint64_t estimate = sketch_.estimate(h);

  // Capacity is small (top-K), so a linear scan beats a side index.
  for (Entry& entry : entries_) {
    if (entry.key == key) {
      entry.estimate = estimate;
      return;
    }
  }
  if (entries_.size() < config_.capacity) {
    entries_.push_back({key, estimate});
    return;
  }
  auto weakest = std::min_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.estimate < b.estimate; });
  if (estimate > weakest->estimate) {
    *weakest = {key, estimate};
    ++evictions_;
  }
}

std::vector<HeavyHitterTracker::Entry> HeavyHitterTracker::top(
    std::size_t n) const {
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry& a, const Entry& b) {
              return a.estimate > b.estimate;
            });
  if (sorted.size() > n) sorted.resize(n);
  return sorted;
}

void HeavyHitterTracker::decay(double factor) {
  sketch_.decay(factor);
  // Refresh every candidate against the decayed sketch and drop the ones
  // that faded out entirely, freeing their top-K slots for current flows.
  std::erase_if(entries_, [this](Entry& entry) {
    entry.estimate = sketch_.estimate(entry.key.hash());
    return entry.estimate == 0;
  });
}

void HeavyHitterTracker::clear() {
  sketch_.clear();
  entries_.clear();
  evictions_ = 0;
}

}  // namespace sf::telemetry
