// sf::telemetry — the always-on observability layer (§6 operational story).
//
// The gateway's operators watch per-table hit rates, per-pipeline load
// balance and hardware/software traffic share continuously; the library
// therefore exposes cheap monotonic counters and bounded log-bucketed
// histograms behind a named Registry. Rates are *derived*, not stored:
// take a Snapshot, take another later, and Snapshot::delta() yields the
// per-interval numbers the figures plot. Instruments are single-threaded
// like the rest of the simulator; one Registry per device composes into
// fleet views via Snapshot::merge().

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sf::telemetry {

/// A monotonic event/byte counter. Only add(); rate = snapshot delta.
class Counter {
 public:
  void add(std::uint64_t amount = 1) { value_ += amount; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time level — queue occupancy, table fill, high watermarks.
/// Unlike a Counter it moves both ways: set() overwrites, and a snapshot
/// captures the level as of that instant (delta keeps the later level
/// rather than differencing — a level is not a rate).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Bounded log-bucketed histogram for latency/size-style values.
///
/// Bucket i covers (min_value * growth^(i-1), min_value * growth^i]; one
/// extra overflow bucket catches everything above the last edge, so memory
/// is fixed regardless of the stream. A small deterministic reservoir of
/// raw samples backs percentile() (via sim::percentile), which log buckets
/// alone cannot answer accurately.
class Histogram {
 public:
  struct Config {
    double min_value = 1e-3;   // upper edge of bucket 0
    double growth = 2.0;       // edge multiplier per bucket
    std::size_t buckets = 48;  // plus the implicit overflow bucket
    std::size_t reservoir = 512;
  };

  struct Bucket {
    double upper_edge = 0;  // +inf for the overflow bucket
    std::uint64_t count = 0;
  };

  Histogram() : Histogram(Config{}) {}
  explicit Histogram(Config config);

  void record(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const;

  /// Percentile estimate over the retained reservoir; p in [0, 100].
  double percentile(double p) const;

  /// Bucket counts, overflow bucket last.
  std::vector<Bucket> buckets() const;

  const Config& config() const { return config_; }

 private:
  Config config_;
  std::vector<std::uint64_t> counts_;  // buckets + 1 overflow slot
  std::vector<double> reservoir_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  // Memo of the last bucket computation: recorded values repeat heavily
  // (identical packets produce identical latencies), and the memo skips
  // the log() on a repeat without changing any result.
  double last_value_ = 0;
  std::size_t last_bucket_ = 0;
};

/// Point-in-time value of one histogram inside a Snapshot. Percentiles are
/// computed at snapshot time from the live reservoir.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  std::vector<Histogram::Bucket> buckets;
};

/// A point-in-time copy of every instrument in a Registry. Plain data:
/// cheap to keep, diff and merge.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;
  /// Point-in-time levels. Empty for registries without gauges, so
  /// snapshots (and every exporter rendering) of counter-only registries
  /// are byte-identical to pre-gauge builds.
  std::map<std::string, double> gauges;

  std::uint64_t counter(const std::string& name,
                        std::uint64_t fallback = 0) const;
  const HistogramSnapshot* histogram(const std::string& name) const;
  double gauge(const std::string& name, double fallback = 0) const;

  /// Sums `other` into this snapshot, optionally namespacing its names
  /// with `prefix` — fleet aggregation ("cluster0." + device counters).
  /// Histogram buckets add bucketwise when shapes match; min/max widen;
  /// percentiles are kept from the larger-count side (approximation).
  void merge(const Snapshot& other, const std::string& prefix = "");

  /// later - earlier, counter-wise and bucket-wise, clamped at zero.
  /// Names absent from `earlier` count from zero; histogram min/max and
  /// percentiles are taken from `later` (they do not difference).
  static Snapshot delta(const Snapshot& earlier, const Snapshot& later);
};

/// Named instrument registry. counter()/histogram() get-or-create; the
/// returned references stay valid for the registry's lifetime, so hot
/// paths resolve a name once and keep the pointer.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name,
                       Histogram::Config config = {});
  Gauge& gauge(const std::string& name);

  bool has_counter(const std::string& name) const {
    return counters_.contains(name);
  }
  bool has_gauge(const std::string& name) const {
    return gauges_.contains(name);
  }
  /// Const read of a gauge's current level; 0 when absent.
  double gauge_value(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second->value();
  }
  /// Const read of a counter's current value; 0 when absent.
  std::uint64_t counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
  }
  std::size_t instrument_count() const {
    return counters_.size() + histograms_.size() + gauges_.size();
  }
  std::size_t counter_count() const { return counters_.size(); }

  /// Visits every counter in name order. The Counter& handles are stable
  /// for the registry's lifetime — callers may keep the pointers (the flow
  /// cache snapshots counter values around a walk to capture its deltas).
  template <typename Fn>
  void for_each_counter(Fn&& fn) const {
    for (const auto& [name, counter] : counters_) fn(name, *counter);
  }

  Snapshot snapshot() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

}  // namespace sf::telemetry
