#include "telemetry/registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "net/hash.hpp"
#include "sim/stats.hpp"

namespace sf::telemetry {

Histogram::Histogram(Config config) : config_(config) {
  if (config_.buckets == 0) config_.buckets = 1;
  if (config_.growth <= 1.0) config_.growth = 2.0;
  if (config_.min_value <= 0) config_.min_value = 1e-3;
  counts_.assign(config_.buckets + 1, 0);
  reservoir_.reserve(config_.reservoir);
}

void Histogram::record(double value) {
  if (!std::isfinite(value)) return;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;

  std::size_t bucket = 0;
  if (value > config_.min_value) {
    if (value == last_value_) {
      bucket = last_bucket_;
    } else {
      bucket = static_cast<std::size_t>(
          std::ceil(std::log(value / config_.min_value) /
                    std::log(config_.growth)));
      bucket = std::min(bucket, config_.buckets);  // overflow slot
      last_value_ = value;
      last_bucket_ = bucket;
    }
  }
  ++counts_[bucket];

  // Deterministic reservoir sampling: position drawn from a hash of the
  // running count, so replays reproduce the same percentile estimates.
  if (config_.reservoir > 0) {
    if (reservoir_.size() < config_.reservoir) {
      reservoir_.push_back(value);
    } else {
      const std::uint64_t slot = net::mix64(count_) % count_;
      if (slot < reservoir_.size()) reservoir_[slot] = value;
    }
  }
}

double Histogram::min() const { return count_ == 0 ? 0 : min_; }
double Histogram::max() const { return count_ == 0 ? 0 : max_; }
double Histogram::mean() const {
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}

double Histogram::percentile(double p) const {
  return sim::percentile(reservoir_, p);
}

std::vector<Histogram::Bucket> Histogram::buckets() const {
  std::vector<Bucket> out;
  out.reserve(counts_.size());
  double edge = config_.min_value;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const bool overflow = i + 1 == counts_.size();
    out.push_back({overflow ? std::numeric_limits<double>::infinity() : edge,
                   counts_[i]});
    edge *= config_.growth;
  }
  return out;
}

std::uint64_t Snapshot::counter(const std::string& name,
                                std::uint64_t fallback) const {
  auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

const HistogramSnapshot* Snapshot::histogram(const std::string& name) const {
  auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

double Snapshot::gauge(const std::string& name, double fallback) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second;
}

void Snapshot::merge(const Snapshot& other, const std::string& prefix) {
  for (const auto& [name, value] : other.counters) {
    counters[prefix + name] += value;
  }
  // Gauges are levels, not rates: merging same-named gauges sums them
  // (fleet views namespace per-device gauges with `prefix`, so collisions
  // only happen when the caller wants an aggregate level).
  for (const auto& [name, value] : other.gauges) {
    gauges[prefix + name] += value;
  }
  for (const auto& [name, hist] : other.histograms) {
    auto [it, inserted] = histograms.try_emplace(prefix + name, hist);
    if (inserted) continue;
    HistogramSnapshot& mine = it->second;
    if (hist.count > 0) {
      mine.min = mine.count == 0 ? hist.min : std::min(mine.min, hist.min);
      mine.max = mine.count == 0 ? hist.max : std::max(mine.max, hist.max);
    }
    if (hist.count > mine.count) {  // keep the better-sampled percentiles
      mine.p50 = hist.p50;
      mine.p90 = hist.p90;
      mine.p99 = hist.p99;
    }
    mine.count += hist.count;
    mine.sum += hist.sum;
    if (mine.buckets.size() == hist.buckets.size()) {
      for (std::size_t i = 0; i < mine.buckets.size(); ++i) {
        mine.buckets[i].count += hist.buckets[i].count;
      }
    }
  }
}

Snapshot Snapshot::delta(const Snapshot& earlier, const Snapshot& later) {
  Snapshot out;
  for (const auto& [name, value] : later.counters) {
    const std::uint64_t before = earlier.counter(name);
    out.counters[name] = value >= before ? value - before : 0;
  }
  // A level does not difference: the delta carries the later level as-is.
  out.gauges = later.gauges;
  for (const auto& [name, hist] : later.histograms) {
    HistogramSnapshot d = hist;  // min/max/percentiles stay from `later`
    if (const HistogramSnapshot* before = earlier.histogram(name)) {
      d.count = hist.count >= before->count ? hist.count - before->count : 0;
      d.sum = hist.sum - before->sum;
      if (d.buckets.size() == before->buckets.size()) {
        for (std::size_t i = 0; i < d.buckets.size(); ++i) {
          const std::uint64_t b = before->buckets[i].count;
          d.buckets[i].count =
              d.buckets[i].count >= b ? d.buckets[i].count - b : 0;
        }
      }
    }
    out.histograms[name] = std::move(d);
  }
  return out;
}

Counter& Registry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name,
                               Histogram::Config config) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(config))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.count = hist->count();
    h.sum = hist->sum();
    h.min = hist->min();
    h.max = hist->max();
    h.p50 = hist->percentile(50);
    h.p90 = hist->percentile(90);
    h.p99 = hist->percentile(99);
    h.buckets = hist->buckets();
    snap.histograms.emplace(name, std::move(h));
  }
  return snap;
}

}  // namespace sf::telemetry
