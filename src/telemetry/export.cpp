#include "telemetry/export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/table_printer.hpp"

namespace sf::telemetry {
namespace {

std::string num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  return buffer;
}

std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_table(const Snapshot& snapshot) {
  std::ostringstream out;
  if (!snapshot.counters.empty()) {
    sim::TablePrinter counters({"counter", "value"});
    for (const auto& [name, value] : snapshot.counters) {
      counters.add_row({name, std::to_string(value)});
    }
    out << counters.render();
  }
  if (!snapshot.gauges.empty()) {
    if (!snapshot.counters.empty()) out << "\n";
    sim::TablePrinter gauges({"gauge", "level"});
    for (const auto& [name, value] : snapshot.gauges) {
      gauges.add_row({name, num(value)});
    }
    out << gauges.render();
  }
  if (!snapshot.histograms.empty()) {
    if (!snapshot.counters.empty() || !snapshot.gauges.empty()) out << "\n";
    sim::TablePrinter hists(
        {"histogram", "count", "mean", "p50", "p90", "p99", "max"});
    for (const auto& [name, h] : snapshot.histograms) {
      const double mean =
          h.count == 0 ? 0 : h.sum / static_cast<double>(h.count);
      hists.add_row({name, std::to_string(h.count),
                     sim::format_double(mean, 3),
                     sim::format_double(h.p50, 3),
                     sim::format_double(h.p90, 3),
                     sim::format_double(h.p99, 3),
                     sim::format_double(h.max, 3)});
    }
    out << hists.render();
  }
  return out.str();
}

std::string to_json(const Snapshot& snapshot) {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":{\"count\":" << h.count
        << ",\"sum\":" << num(h.sum) << ",\"min\":" << num(h.min)
        << ",\"max\":" << num(h.max) << ",\"p50\":" << num(h.p50)
        << ",\"p90\":" << num(h.p90) << ",\"p99\":" << num(h.p99)
        << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out << ",";
      const double edge = h.buckets[i].upper_edge;
      out << "[" << (std::isinf(edge) ? "\"inf\"" : num(edge)) << ","
          << h.buckets[i].count << "]";
    }
    out << "]}";
  }
  out << "}";
  // Gauge-less snapshots render without the key at all, so counter-only
  // registries keep their pre-gauge JSON bytes (the CI byte-diffs depend
  // on this).
  if (!snapshot.gauges.empty()) {
    out << ",\"gauges\":{";
    first = true;
    for (const auto& [name, value] : snapshot.gauges) {
      if (!first) out << ",";
      first = false;
      out << "\"" << json_escape(name) << "\":" << num(value);
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = prom_name(name) + "_total";
    out << "# TYPE " << metric << " counter\n"
        << metric << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = prom_name(name);
    out << "# TYPE " << metric << " gauge\n"
        << metric << " " << num(value) << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string metric = prom_name(name);
    out << "# TYPE " << metric << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const Histogram::Bucket& bucket : h.buckets) {
      cumulative += bucket.count;
      out << metric << "_bucket{le=\""
          << (std::isinf(bucket.upper_edge) ? "+Inf"
                                            : num(bucket.upper_edge))
          << "\"} " << cumulative << "\n";
    }
    out << metric << "_sum " << num(h.sum) << "\n"
        << metric << "_count " << h.count << "\n";
  }
  return out.str();
}

std::string to_table(const std::vector<HeavyHitterTracker::Entry>& top,
                     std::uint64_t total) {
  sim::TablePrinter table({"rank", "flow", "estimate", "share"});
  for (std::size_t i = 0; i < top.size(); ++i) {
    const double share =
        total == 0 ? 0
                   : static_cast<double>(top[i].estimate) /
                         static_cast<double>(total);
    table.add_row({std::to_string(i + 1), top[i].key.to_string(),
                   std::to_string(top[i].estimate),
                   sim::format_percent(share, 2)});
  }
  return table.render();
}

}  // namespace sf::telemetry
