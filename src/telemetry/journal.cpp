#include "telemetry/journal.hpp"

#include <sstream>

namespace sf::telemetry {

EventJournal::EventJournal(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void EventJournal::record(std::string category, std::string message,
                          double time) {
  Event event{++sequence_, time, std::move(category), std::move(message)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
}

std::vector<Event> EventJournal::events() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<Event> EventJournal::events(const std::string& category) const {
  std::vector<Event> out;
  for (const Event& event : events()) {
    if (event.category == category) out.push_back(event);
  }
  return out;
}

void EventJournal::clear() {
  ring_.clear();
  head_ = 0;
  // sequence_ keeps counting: total_recorded() stays a lifetime figure.
}

std::string EventJournal::to_string() const {
  std::ostringstream out;
  if (overwritten() > 0) {
    out << "  (" << overwritten() << " older events overwritten)\n";
  }
  for (const Event& event : events()) {
    out << "  #" << event.sequence << " [t=" << event.time << "] "
        << event.category << ": " << event.message << "\n";
  }
  return out.str();
}

}  // namespace sf::telemetry
