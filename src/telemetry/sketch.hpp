// Sketch-based heavy-hitter detection — the Fig. 7 elephant flows as a
// dataplane structure.
//
// A count-min sketch is what a programmable switch can actually afford for
// per-flow byte counting: depth hash rows of width counters, O(depth) work
// per packet, fixed SRAM. The estimate only ever overcounts; with
//
//   eps   = e / width        (additive error as a fraction of the total)
//   delta = e^-depth         (probability the bound is exceeded)
//
// estimate(k) <= true(k) + eps * total() with probability >= 1 - delta
// (Cormode & Muthukrishnan). The HeavyHitterTracker pairs the sketch with
// a bounded top-K candidate list (space-saving style): heavy flows are kept
// by identity, mice stay inside the sketch's error band.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/headers.hpp"
#include "net/packet.hpp"

namespace sf::telemetry {

/// Sketch key: the flow 5-tuple plus the tenant's VNI (two tenants may
/// reuse overlapping private addresses; the VNI disambiguates).
struct FlowKey {
  net::Vni vni = 0;
  net::FiveTuple tuple;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  std::uint64_t hash() const;
  std::string to_string() const;
};

class CountMinSketch {
 public:
  struct Config {
    std::size_t width = 2048;  // counters per row
    unsigned depth = 4;        // independent hash rows
    std::uint64_t seed = 0x5a11f15bULL;
  };

  CountMinSketch() : CountMinSketch(Config{}) {}
  explicit CountMinSketch(Config config);

  void add(std::uint64_t key_hash, std::uint64_t amount = 1);

  /// Point estimate; never undercounts.
  std::uint64_t estimate(std::uint64_t key_hash) const;

  /// Sum of all added amounts.
  std::uint64_t total() const { return total_; }

  /// Additive overestimation bound at the current total: with probability
  /// >= 1 - e^-depth, estimate(k) - true(k) <= error_bound().
  double error_bound() const;

  /// Exponential interval decay: every counter (and the total) is scaled
  /// by `factor` in [0, 1] and truncated back to an integer. Called once
  /// per measurement interval, this turns the all-time totals into an
  /// exponentially weighted recent-rate estimate — a flow that stops
  /// sending halves out of the sketch instead of looking heavy forever.
  /// Deterministic: same counters + same factor -> same counters.
  void decay(double factor);

  void clear();

  const Config& config() const { return config_; }

 private:
  std::size_t index(unsigned row, std::uint64_t key_hash) const;

  Config config_;
  std::vector<std::uint64_t> rows_;  // depth * width, row-major
  std::uint64_t total_ = 0;
};

/// Count-min sketch + bounded top-K candidate list keyed by FlowKey.
class HeavyHitterTracker {
 public:
  struct Config {
    CountMinSketch::Config sketch;
    std::size_t capacity = 16;  // top-K slots kept by identity
  };

  struct Entry {
    FlowKey key;
    std::uint64_t estimate = 0;
  };

  HeavyHitterTracker() : HeavyHitterTracker(Config{}) {}
  explicit HeavyHitterTracker(Config config);

  void add(const FlowKey& key, std::uint64_t amount = 1);

  /// The current top-n candidates, heaviest first (n <= capacity).
  std::vector<Entry> top(std::size_t n) const;

  /// Sketch estimate for one key (tracked or not).
  std::uint64_t estimate(const FlowKey& key) const {
    return sketch_.estimate(key.hash());
  }

  std::uint64_t total() const { return sketch_.total(); }
  std::uint64_t evictions() const { return evictions_; }
  std::size_t tracked() const { return entries_.size(); }
  const CountMinSketch& sketch() const { return sketch_; }

  /// Interval decay (see CountMinSketch::decay): scales the sketch by
  /// `factor`, re-reads every tracked candidate's estimate from the
  /// decayed sketch, and drops candidates whose estimate reaches zero —
  /// the staleness fix that keeps top() reflecting *current* traffic
  /// rather than all-time totals. Call once per interval before feeding
  /// the interval's samples.
  void decay(double factor);

  void clear();

 private:
  Config config_;
  CountMinSketch sketch_;
  std::vector<Entry> entries_;  // unsorted, bounded by capacity
  std::uint64_t evictions_ = 0;
};

}  // namespace sf::telemetry
