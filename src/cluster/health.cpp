#include "cluster/health.hpp"

#include <stdexcept>

namespace sf::cluster {

HealthMonitor::HealthMonitor(DisasterRecovery* recovery, Config config)
    : recovery_(recovery), config_(config) {
  if (recovery_ == nullptr) {
    throw std::invalid_argument("HealthMonitor needs a DisasterRecovery");
  }
  if (config_.fail_after_missed == 0 || config_.recover_after_ok == 0 ||
      config_.isolate_port_after == 0) {
    throw std::invalid_argument("HealthMonitor thresholds must be >= 1");
  }
}

void HealthMonitor::report_heartbeat(std::size_t cluster,
                                     std::size_t device, bool ok,
                                     double now) {
  DeviceState& state = devices_[device_key(cluster, device)];
  if (ok) {
    state.consecutive_missed = 0;
    if (state.failed) {
      if (++state.consecutive_ok >= config_.recover_after_ok) {
        state.failed = false;
        state.consecutive_ok = 0;
        recovery_->on_device_recovery(cluster, device, now);
      }
    }
    return;
  }
  state.consecutive_ok = 0;
  if (!state.failed &&
      ++state.consecutive_missed >= config_.fail_after_missed) {
    state.failed = true;
    state.consecutive_missed = 0;
    recovery_->on_device_failure(cluster, device, now);
  }
}

void HealthMonitor::report_port_errors(std::size_t cluster,
                                       std::size_t device, unsigned port,
                                       double error_rate, double now) {
  PortState& state = ports_[port_key(cluster, device, port)];
  if (error_rate <= config_.port_error_rate_threshold) {
    state.consecutive_bad = 0;
    if (state.isolated) {
      state.isolated = false;
      recovery_->on_port_recovery(cluster, device, port, now);
    }
    return;
  }
  if (!state.isolated &&
      ++state.consecutive_bad >= config_.isolate_port_after) {
    state.isolated = true;
    state.consecutive_bad = 0;
    recovery_->on_port_fault(cluster, device, port, now);
  }
}

bool HealthMonitor::device_considered_failed(std::size_t cluster,
                                             std::size_t device) const {
  auto it = devices_.find(device_key(cluster, device));
  return it != devices_.end() && it->second.failed;
}

bool HealthMonitor::port_considered_isolated(std::size_t cluster,
                                             std::size_t device,
                                             unsigned port) const {
  auto it = ports_.find(port_key(cluster, device, port));
  return it != ports_.end() && it->second.isolated;
}

}  // namespace sf::cluster
