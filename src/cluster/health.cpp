#include "cluster/health.hpp"

#include <stdexcept>

namespace sf::cluster {

HealthMonitor::HealthMonitor(DisasterRecovery* recovery, Config config)
    : recovery_(recovery), config_(config) {
  if (recovery_ == nullptr) {
    throw std::invalid_argument("HealthMonitor needs a DisasterRecovery");
  }
  if (config_.fail_after_missed == 0 || config_.recover_after_ok == 0 ||
      config_.isolate_port_after == 0 ||
      config_.recover_port_after_ok == 0) {
    throw std::invalid_argument("HealthMonitor thresholds must be >= 1");
  }
  recovery_->set_listener(this);
}

HealthMonitor::~HealthMonitor() {
  if (recovery_->listener() == this) recovery_->set_listener(nullptr);
}

void HealthMonitor::report_heartbeat(std::size_t cluster,
                                     std::size_t device, bool ok,
                                     double now) {
  DeviceState& state = devices_[device_key(cluster, device)];
  if (ok) {
    state.consecutive_missed = 0;
    if (state.failed) {
      if (++state.consecutive_ok >= config_.recover_after_ok) {
        state.failed = false;
        state.consecutive_ok = 0;
        recovery_->on_device_recovery(cluster, device, now);
      }
    }
    return;
  }
  state.consecutive_ok = 0;
  if (!state.failed &&
      ++state.consecutive_missed >= config_.fail_after_missed) {
    state.failed = true;
    state.consecutive_missed = 0;
    recovery_->on_device_failure(cluster, device, now);
  }
}

void HealthMonitor::report_port_errors(std::size_t cluster,
                                       std::size_t device, unsigned port,
                                       double error_rate, double now) {
  PortState& state = ports_[port_key(cluster, device, port)];
  if (error_rate <= config_.port_error_rate_threshold) {
    state.consecutive_bad = 0;
    // Symmetric hysteresis: a port leaves isolation only on *sustained*
    // clean observations, mirroring how it entered. Without this a
    // flapping port re-enters the ECMP spread on every good probe and
    // oscillates.
    if (state.isolated &&
        ++state.consecutive_ok >= config_.recover_port_after_ok) {
      state.isolated = false;
      state.consecutive_ok = 0;
      recovery_->on_port_recovery(cluster, device, port, now);
    }
    return;
  }
  state.consecutive_ok = 0;
  if (!state.isolated &&
      ++state.consecutive_bad >= config_.isolate_port_after) {
    state.isolated = true;
    state.consecutive_bad = 0;
    recovery_->on_port_fault(cluster, device, port, now);
  }
}

bool HealthMonitor::device_considered_failed(std::size_t cluster,
                                             std::size_t device) const {
  auto it = devices_.find(device_key(cluster, device));
  return it != devices_.end() && it->second.failed;
}

bool HealthMonitor::port_considered_isolated(std::size_t cluster,
                                             std::size_t device,
                                             unsigned port) const {
  auto it = ports_.find(port_key(cluster, device, port));
  return it != ports_.end() && it->second.isolated;
}

void HealthMonitor::on_device_marked_failed(std::size_t cluster,
                                            std::size_t device,
                                            double /*now*/) {
  DeviceState& state = devices_[device_key(cluster, device)];
  state.failed = true;
  state.consecutive_missed = 0;
  state.consecutive_ok = 0;
}

void HealthMonitor::on_device_marked_recovered(std::size_t cluster,
                                               std::size_t device,
                                               double /*now*/) {
  devices_.erase(device_key(cluster, device));
  // The replacement device's ports are fresh: drop the old observation
  // history so stale isolation cannot outlive the hardware it described.
  const std::uint64_t base = device_key(cluster, device);
  for (auto it = ports_.begin(); it != ports_.end();) {
    if ((it->first >> 12) == base) {
      it = ports_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace sf::cluster
