// Rolling gateway upgrades — §2.2's "iterative yet tractable upgrades"
// and §6.1's node-level procedure ("the gateway will be put offline and
// the other gateways in the same cluster will share the traffic load"):
// one device at a time is drained out of the ECMP set, upgraded, brought
// back, health-checked, and only then does the roll move on. A failed
// health check stops the roll with the fleet still serving.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"

namespace sf::cluster {

class RollingUpgrade {
 public:
  struct Config {
    /// Primaries that must stay live while one device is drained.
    std::size_t min_live_devices = 1;
  };

  struct StepResult {
    std::size_t device = 0;
    bool upgraded = false;
    bool health_ok = false;
    std::string note;
  };

  struct Result {
    std::vector<StepResult> steps;
    bool completed = false;  // every primary upgraded and healthy
    std::string abort_reason;
  };

  /// The upgrade action: applied to a drained device; returns success.
  using UpgradeFn = std::function<bool(xgwh::XgwH&)>;
  /// Health gate run after the device rejoins; returns pass.
  using HealthFn = std::function<bool(const XgwHCluster&)>;

  RollingUpgrade() : RollingUpgrade(Config{}) {}
  explicit RollingUpgrade(Config config) : config_(config) {}

  /// Rolls over the cluster's primary devices in index order.
  Result run(XgwHCluster& cluster, const UpgradeFn& upgrade,
             const HealthFn& health) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace sf::cluster
