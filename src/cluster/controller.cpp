#include "cluster/controller.hpp"

#include <algorithm>

#include "guard/guard.hpp"
#include "sim/sim_clock.hpp"

namespace sf::cluster {

Controller::Controller(Config config)
    : config_(std::move(config)),
      registry_(std::make_unique<telemetry::Registry>()),
      journal_(std::make_unique<telemetry::EventJournal>(256)) {
  if (config_.max_clusters == 0) {
    throw std::invalid_argument("controller needs at least one cluster slot");
  }
  ctr_routes_added_ = &registry_->counter("controller.routes_added");
  ctr_routes_removed_ = &registry_->counter("controller.routes_removed");
  ctr_mappings_added_ = &registry_->counter("controller.mappings_added");
  ctr_mappings_removed_ = &registry_->counter("controller.mappings_removed");
  ctr_vpcs_admitted_ = &registry_->counter("controller.vpcs_admitted");
  ctr_admission_refused_ = &registry_->counter("controller.admission_refused");
  ctr_migrations_ = &registry_->counter("controller.migrations");
  ctr_clusters_opened_ = &registry_->counter("controller.clusters_opened");
  ctr_packets_ = &registry_->counter("controller.packets_steered");
  ctr_unknown_vni_ = &registry_->counter("controller.unknown_vni_drops");
  ctr_ops_rate_limited_ =
      &registry_->counter("controller.table_ops_rate_limited");
  ctr_ops_deferred_ = &registry_->counter("controller.table_ops_deferred");
  ctr_ops_replayed_ = &registry_->counter("controller.table_ops_replayed");
  op_tokens_ = static_cast<double>(config_.table_op_burst);
  retry_queue_ = std::make_unique<UpdateQueue>(*this, config_.retry);
  if (config_.admit_overflow) {
    ctr_overflow_admitted_ =
        &registry_->counter("controller.overflow_vpcs_admitted");
  }
  if (config_.placement_enabled) {
    placement_engine_ =
        std::make_unique<asic::PlacementEngine>(config_.placement);
  }
  if (config_.breaker.trip_after > 0 && guard::guard_enabled()) {
    breaker_ = std::make_unique<guard::CircuitBreaker>(config_.breaker);
    ctr_breaker_trips_ = &registry_->counter("controller.breaker_trips");
    ctr_breaker_reopens_ = &registry_->counter("controller.breaker_reopens");
    ctr_breaker_closes_ = &registry_->counter("controller.breaker_closes");
    ctr_breaker_short_circuited_ =
        &registry_->counter("controller.breaker_short_circuited");
  }
  const std::size_t prebuilt =
      std::min(config_.initial_clusters, config_.max_clusters);
  for (std::size_t i = 0; i < prebuilt; ++i) {
    XgwHCluster::Config cfg = config_.cluster_template;
    cfg.cluster_id = static_cast<std::uint32_t>(clusters_.size());
    clusters_.push_back(std::make_unique<XgwHCluster>(cfg));
    journal_->record("provisioning", "opened cluster " +
                                         std::to_string(cfg.cluster_id) +
                                         " (prebuilt)");
  }
  ctr_clusters_opened_->add(prebuilt);
}

void Controller::mirror(const TableOp& op) {
  if (mirror_) mirror_(op);
}

std::size_t Controller::advance_clock(double now) {
  clock_now_ = std::max(clock_now_, now);
  // While the breaker is plain-open the channel is not worth trying:
  // retries stay parked (half-open lets the head op through as the probe).
  if (breaker_ && breaker_->state(clock_now_) ==
                      guard::CircuitBreaker::State::kOpen) {
    return 0;
  }
  const std::size_t replayed = retry_queue_->advance(clock_now_);
  if (replayed > 0) ctr_ops_replayed_->add(replayed);
  return replayed;
}

dataplane::TableOpStatus Controller::push_op(const TableOp& op) {
  const std::size_t pending_before = retry_queue_->pending();
  dataplane::TableOpStatus status;
  if (breaker_ && !breaker_->allow(clock_now_)) {
    // Short-circuit: park without burning a channel attempt. Order is
    // kept (the queue is strict FIFO) and nothing is lost.
    breaker_->note_short_circuit();
    ctr_breaker_short_circuited_->add();
    status = retry_queue_->defer(op, clock_now_);
  } else {
    status = retry_queue_->submit(op, clock_now_);
  }
  if (retry_queue_->pending() > pending_before) ctr_ops_deferred_->add();
  return status;
}

void Controller::breaker_failure() {
  if (!breaker_) return;
  const guard::CircuitBreaker::Stats before = breaker_->stats();
  breaker_->record_failure(clock_now_);
  const guard::CircuitBreaker::Stats& after = breaker_->stats();
  if (after.trips > before.trips) {
    ctr_breaker_trips_->add();
    journal_->record("breaker", "update-channel breaker tripped open",
                     clock_now_);
  }
  if (after.reopens > before.reopens) {
    ctr_breaker_reopens_->add();
    journal_->record("breaker",
                     "half-open probe refused; breaker re-opened",
                     clock_now_);
  }
}

void Controller::breaker_success() {
  if (!breaker_) return;
  const guard::CircuitBreaker::Stats before = breaker_->stats();
  breaker_->record_success(clock_now_);
  if (breaker_->stats().closes > before.closes) {
    ctr_breaker_closes_->add();
    journal_->record("breaker",
                     "half-open probe succeeded; breaker closed",
                     clock_now_);
  }
}

void Controller::set_update_channel_up(bool up) {
  if (up == update_channel_up_) return;
  update_channel_up_ = up;
  retry_queue_->set_channel_up(up);
  journal_->record("update-channel",
                   up ? "update channel restored; draining deferred ops"
                      : "update channel down; pushes will be deferred",
                   clock_now_);
}

void Controller::set_update_channel_degraded(bool degraded) {
  if (degraded == update_channel_degraded_) return;
  update_channel_degraded_ = degraded;
  journal_->record("update-channel",
                   degraded ? "update channel browned out; attempts refused"
                            : "update channel brownout cleared",
                   clock_now_);
}

bool Controller::take_op_token() {
  if (!update_channel_up_ || update_channel_degraded_) {
    ctr_ops_rate_limited_->add();
    breaker_failure();
    return false;
  }
  if (config_.table_op_rate_limit <= 0) {
    breaker_success();
    return true;
  }
  op_tokens_ = std::min(
      op_tokens_ + sim::elapsed_s(clock_now_, op_tokens_time_) *
                       config_.table_op_rate_limit,
      static_cast<double>(config_.table_op_burst));
  op_tokens_time_ = clock_now_;
  if (op_tokens_ < 1.0) {
    ctr_ops_rate_limited_->add();
    breaker_failure();
    return false;
  }
  op_tokens_ -= 1.0;
  breaker_success();
  return true;
}

std::optional<std::uint32_t> Controller::assign_cluster() {
  // Least-loaded (by route count) cluster below the water level.
  std::optional<std::uint32_t> best;
  std::size_t best_routes = 0;
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    const std::size_t routes = clusters_[i]->route_count();
    if (routes >= config_.routes_water_level) continue;
    if (clusters_[i]->mapping_count() >= config_.mappings_water_level) {
      continue;
    }
    if (!best || routes < best_routes) {
      best = static_cast<std::uint32_t>(i);
      best_routes = routes;
    }
  }
  if (best) return best;

  if (clusters_.size() >= config_.max_clusters) {
    alerts_.push_back(
        "admission refused: all clusters at water level, region full");
    ctr_admission_refused_->add();
    journal_->record("alert",
                     "admission refused: all clusters at water level");
    return std::nullopt;
  }
  XgwHCluster::Config cfg = config_.cluster_template;
  cfg.cluster_id = static_cast<std::uint32_t>(clusters_.size());
  clusters_.push_back(std::make_unique<XgwHCluster>(cfg));
  alerts_.push_back("opened cluster " + std::to_string(cfg.cluster_id));
  ctr_clusters_opened_->add();
  journal_->record("provisioning",
                   "opened cluster " + std::to_string(cfg.cluster_id));
  return cfg.cluster_id;
}

bool Controller::add_vpc(const workload::VpcRecord& vpc) {
  if (vpcs_.contains(vpc.vni)) return false;
  // Peered VPCs must share a cluster: the peer re-lookup resolves in the
  // same device's tables, and the VNI director steers by the *arriving*
  // VNI. The peer group is therefore the real split granularity (§4.3
  // notes the VPC is the smallest unit; peering glues VPCs together).
  std::optional<std::uint32_t> cluster_id;
  for (net::Vni peer : vpc.peers) {
    if (auto assigned = director_.cluster_for(peer)) {
      cluster_id = assigned;
      break;
    }
    // Peers already living in the software tier pull the whole group
    // down with them — co-location holds across tiers too.
    if (is_overflow(peer)) {
      cluster_id = kSoftwareTier;
      break;
    }
  }
  if (!cluster_id) cluster_id = assign_cluster();
  if (!cluster_id && config_.admit_overflow) cluster_id = kSoftwareTier;
  if (!cluster_id) return false;

  VpcState state;
  state.cluster_id = *cluster_id;
  // Software-tier VPCs never reach the VNI director: XGW-H has no tables
  // for them, so steering a packet at a cluster would only burn a drop.
  if (*cluster_id != kSoftwareTier) {
    director_.assign(vpc.vni, *cluster_id);
  } else {
    ++overflow_vpcs_;
    ctr_overflow_admitted_->add();
    journal_->record("provisioning",
                     "VNI " + std::to_string(vpc.vni) +
                         " admitted into the software tier (overflow)");
  }
  vpcs_.emplace(vpc.vni, std::move(state));
  ctr_vpcs_admitted_->add();

  // Reliable pushes: a rate-limited burst defers onto the retry queue
  // instead of silently losing entries — before this, an op rejected by
  // the update-channel budget simply never reached the devices and the
  // VPC was admitted with holes in its tables.
  for (const workload::RouteRecord& route : vpc.routes) {
    push_op(TableOp{TableOp::Kind::kAddRoute, vpc.vni, route.prefix,
                    route.action, {}, {}});
  }
  for (const workload::VmRecord& vm : vpc.vms) {
    push_op(TableOp{TableOp::Kind::kAddMapping, vpc.vni, {}, {},
                    tables::VmNcKey{vpc.vni, vm.ip},
                    tables::VmNcAction{vm.nc_ip}});
  }
  return true;
}

std::size_t Controller::install_topology(
    const workload::RegionTopology& region) {
  // Admit peer-connected components contiguously: add_vpc co-locates a
  // VPC with an *already assigned* peer, so a component must not be
  // interleaved with others (its members could otherwise seed different
  // clusters before the connecting vertex arrives).
  std::unordered_map<net::Vni, std::size_t> index_of;
  for (std::size_t i = 0; i < region.vpcs.size(); ++i) {
    index_of[region.vpcs[i].vni] = i;
  }
  std::vector<bool> visited(region.vpcs.size(), false);
  std::size_t admitted = 0;
  for (std::size_t start = 0; start < region.vpcs.size(); ++start) {
    if (visited[start]) continue;
    std::vector<std::size_t> component{start};
    visited[start] = true;
    for (std::size_t i = 0; i < component.size(); ++i) {
      for (net::Vni peer : region.vpcs[component[i]].peers) {
        auto it = index_of.find(peer);
        if (it != index_of.end() && !visited[it->second]) {
          visited[it->second] = true;
          component.push_back(it->second);
        }
      }
    }
    for (std::size_t index : component) {
      if (add_vpc(region.vpcs[index])) ++admitted;
    }
  }
  return admitted;
}

dataplane::BatchResult Controller::apply(const dataplane::TableOpBatch& batch) {
  dataplane::BatchResult result;
  for (const TableOp& op : batch.ops) {
    result.record(apply_one(op));
  }
  // One incremental re-placement per batch, not per op: the whole batch's
  // churn lands as a single WorkloadDelta.
  flush_placement_delta();
  return result;
}

void Controller::flush_placement_delta() {
  if (!placement_engine_ || pending_placement_delta_.empty()) return;
  placement_engine_->apply(pending_placement_delta_);
  pending_placement_delta_ = {};
}

dataplane::TableOpStatus Controller::apply_one(const TableOp& op) {
  switch (op.kind) {
    case TableOp::Kind::kAddRoute:
      return apply_install_route(op.vni, op.prefix, op.route_action);
    case TableOp::Kind::kDelRoute:
      return apply_remove_route(op.vni, op.prefix);
    case TableOp::Kind::kAddMapping:
      return apply_install_mapping(op.mapping_key, op.mapping_action);
    case TableOp::Kind::kDelMapping:
      return apply_remove_mapping(op.mapping_key);
  }
  return dataplane::TableOpStatus::kNotFound;
}

std::size_t Controller::drain_mid_interval(double start, double length,
                                           std::size_t slices) {
  if (slices == 0) return advance_clock(start + length);
  std::size_t replayed = 0;
  for (std::size_t s = 1; s <= slices; ++s) {
    const double t =
        start + length * (static_cast<double>(s) /
                          static_cast<double>(slices));
    replayed += advance_clock(t);
  }
  return replayed;
}

dataplane::TableOpStatus Controller::apply_install_route(
    net::Vni vni, const net::IpPrefix& prefix,
    tables::VxlanRouteAction action) {
  auto it = vpcs_.find(vni);
  if (it == vpcs_.end()) return dataplane::TableOpStatus::kNotFound;
  if (!placement_live(it->second.cluster_id)) {
    return dataplane::TableOpStatus::kUnknownTarget;
  }
  const bool software_tier = it->second.cluster_id == kSoftwareTier;
  // Software-tier VPCs program no device: their desired state only needs
  // to reach the mirror (x86 + DPU hold the complete tables), so the
  // device update channel is never consumed.
  if (!software_tier && !take_op_token()) {
    return dataplane::TableOpStatus::kRateLimited;
  }
  const dataplane::TableOpStatus status =
      software_tier
          ? dataplane::TableOpStatus::kOk
          : programmer(it->second.cluster_id)
                .install_route(vni, prefix, action);
  auto& routes = it->second.routes;
  auto existing = std::find_if(routes.begin(), routes.end(), [&](auto& r) {
    return r.first == prefix;
  });
  if (existing == routes.end()) {
    routes.push_back({prefix, action});
    // New hardware-tier entry: placement demand grows (replaced actions
    // occupy the same slot; software-tier entries occupy no ASIC memory).
    if (placement_engine_ && !software_tier) {
      if (prefix.family() == net::IpFamily::kV4) {
        ++pending_placement_delta_.vxlan_routes_v4;
      } else {
        ++pending_placement_delta_.vxlan_routes_v6;
      }
    }
  } else {
    existing->second = action;
  }
  mirror(TableOp{TableOp::Kind::kAddRoute, vni, prefix, action, {}, {}});
  ctr_routes_added_->add();

  if (!software_tier &&
      clusters_[it->second.cluster_id]->route_count() ==
          config_.routes_water_level) {
    alerts_.push_back("cluster " + std::to_string(it->second.cluster_id) +
                      " reached its route water level; sales closed");
    journal_->record("water-level",
                     "cluster " + std::to_string(it->second.cluster_id) +
                         " reached its route water level; sales closed");
  }
  return status;
}

dataplane::TableOpStatus Controller::apply_remove_route(
    net::Vni vni, const net::IpPrefix& prefix) {
  auto it = vpcs_.find(vni);
  if (it == vpcs_.end()) return dataplane::TableOpStatus::kNotFound;
  // Dangling placements fail typed and loud *before* any desired-state
  // mutation — the old per-method surface silently "succeeded" here,
  // desyncing the mirror from the devices.
  if (!placement_live(it->second.cluster_id)) {
    return dataplane::TableOpStatus::kUnknownTarget;
  }
  auto& routes = it->second.routes;
  auto existing = std::find_if(routes.begin(), routes.end(), [&](auto& r) {
    return r.first == prefix;
  });
  if (existing == routes.end()) return dataplane::TableOpStatus::kNotFound;
  const bool software_tier = it->second.cluster_id == kSoftwareTier;
  if (!software_tier && !take_op_token()) {
    return dataplane::TableOpStatus::kRateLimited;
  }
  routes.erase(existing);
  if (placement_engine_ && !software_tier) {
    if (prefix.family() == net::IpFamily::kV4) {
      --pending_placement_delta_.vxlan_routes_v4;
    } else {
      --pending_placement_delta_.vxlan_routes_v6;
    }
  }
  const dataplane::TableOpStatus status =
      software_tier
          ? dataplane::TableOpStatus::kOk
          : programmer(it->second.cluster_id).remove_route(vni, prefix);
  mirror(TableOp{TableOp::Kind::kDelRoute, vni, prefix, {}, {}, {}});
  ctr_routes_removed_->add();
  return status;
}

dataplane::TableOpStatus Controller::apply_install_mapping(
    const tables::VmNcKey& key, tables::VmNcAction action) {
  auto it = vpcs_.find(key.vni);
  if (it == vpcs_.end()) return dataplane::TableOpStatus::kNotFound;
  if (!placement_live(it->second.cluster_id)) {
    return dataplane::TableOpStatus::kUnknownTarget;
  }
  const bool software_tier = it->second.cluster_id == kSoftwareTier;
  if (!software_tier && !take_op_token()) {
    return dataplane::TableOpStatus::kRateLimited;
  }
  const dataplane::TableOpStatus status =
      software_tier
          ? dataplane::TableOpStatus::kOk
          : programmer(it->second.cluster_id).install_mapping(key, action);
  auto& mappings = it->second.mappings;
  auto existing =
      std::find_if(mappings.begin(), mappings.end(), [&](auto& m) {
        return m.first == key;
      });
  if (existing == mappings.end()) {
    mappings.push_back({key, action});
    if (placement_engine_ && !software_tier) {
      if (key.vm_ip.family() == net::IpFamily::kV4) {
        ++pending_placement_delta_.vm_maps_v4;
      } else {
        ++pending_placement_delta_.vm_maps_v6;
      }
    }
  } else {
    existing->second = action;
  }
  mirror(TableOp{TableOp::Kind::kAddMapping, key.vni, {}, {}, key, action});
  ctr_mappings_added_->add();
  return status;
}

dataplane::TableOpStatus Controller::apply_remove_mapping(
    const tables::VmNcKey& key) {
  auto it = vpcs_.find(key.vni);
  if (it == vpcs_.end()) return dataplane::TableOpStatus::kNotFound;
  if (!placement_live(it->second.cluster_id)) {
    return dataplane::TableOpStatus::kUnknownTarget;
  }
  auto& mappings = it->second.mappings;
  auto existing =
      std::find_if(mappings.begin(), mappings.end(), [&](auto& m) {
        return m.first == key;
      });
  if (existing == mappings.end()) return dataplane::TableOpStatus::kNotFound;
  const bool software_tier = it->second.cluster_id == kSoftwareTier;
  if (!software_tier && !take_op_token()) {
    return dataplane::TableOpStatus::kRateLimited;
  }
  mappings.erase(existing);
  if (placement_engine_ && !software_tier) {
    if (key.vm_ip.family() == net::IpFamily::kV4) {
      --pending_placement_delta_.vm_maps_v4;
    } else {
      --pending_placement_delta_.vm_maps_v6;
    }
  }
  const dataplane::TableOpStatus status =
      software_tier
          ? dataplane::TableOpStatus::kOk
          : programmer(it->second.cluster_id).remove_mapping(key);
  mirror(TableOp{TableOp::Kind::kDelMapping, key.vni, {}, {}, key, {}});
  ctr_mappings_removed_->add();
  return status;
}

bool Controller::migrate_vpc(net::Vni vni, std::uint32_t target_cluster) {
  if (target_cluster >= clusters_.size()) return false;
  auto it = vpcs_.find(vni);
  if (it == vpcs_.end()) return false;
  // Software-tier VPCs have no device entries to move; promoting one into
  // hardware is a (future) re-admission, not a migration.
  if (it->second.cluster_id == kSoftwareTier) return false;
  // No early-out on cluster_id == target: the member loop below skips
  // already-placed members, and walking the group anyway heals any
  // co-location drift defensively.

  // Collect the whole peer group: peers must stay co-located (see
  // add_vpc). The group is the set of VPCs reachable through Peer routes
  // in the desired state.
  std::vector<net::Vni> group{vni};
  for (std::size_t i = 0; i < group.size(); ++i) {
    const VpcState& state = vpcs_.at(group[i]);
    for (const auto& [prefix, action] : state.routes) {
      if (action.scope != tables::RouteScope::kPeer) continue;
      if (std::find(group.begin(), group.end(), action.next_hop_vni) ==
          group.end()) {
        if (vpcs_.contains(action.next_hop_vni)) {
          group.push_back(action.next_hop_vni);
        }
      }
    }
  }

  for (net::Vni member : group) {
    VpcState& state = vpcs_.at(member);
    if (state.cluster_id == target_cluster) continue;
    if (state.cluster_id == kSoftwareTier) continue;  // nothing on devices
    dataplane::TableProgrammer& source = programmer(state.cluster_id);
    dataplane::TableProgrammer& target = programmer(target_cluster);
    // Install on the target first, then retire from the source: the
    // director flip in between is the atomic switchover point.
    for (const auto& [prefix, action] : state.routes) {
      target.install_route(member, prefix, action);
    }
    for (const auto& [key, action] : state.mappings) {
      target.install_mapping(key, action);
    }
    director_.assign(member, target_cluster);
    for (const auto& [prefix, action] : state.routes) {
      source.remove_route(member, prefix);
    }
    for (const auto& [key, action] : state.mappings) {
      source.remove_mapping(key);
    }
    state.cluster_id = target_cluster;
  }
  alerts_.push_back("migrated VNI " + std::to_string(vni) + " (+" +
                    std::to_string(group.size() - 1) +
                    " peers) to cluster " +
                    std::to_string(target_cluster));
  ctr_migrations_->add();
  journal_->record("migration",
                   "migrated VNI " + std::to_string(vni) + " (+" +
                       std::to_string(group.size() - 1) +
                       " peers) to cluster " +
                       std::to_string(target_cluster));
  return true;
}

xgwh::ForwardResult Controller::process(const net::OverlayPacket& packet,
                                        double now) {
  ctr_packets_->add();
  auto cluster_id = director_.cluster_for(packet.vni);
  if (!cluster_id) {
    ctr_unknown_vni_->add();
    xgwh::ForwardResult result;
    result.action = dataplane::Action::kDrop;
    result.drop_reason = dataplane::DropReason::kUnknownVni;
    result.packet = packet;
    return result;
  }
  return clusters_[*cluster_id]->forward(packet, now);
}

Controller::ConsistencyReport Controller::check_consistency(
    std::size_t cluster_index) const {
  ConsistencyReport report;
  const XgwHCluster& cluster = *clusters_.at(cluster_index);
  report.devices_checked = cluster.device_count();

  for (const auto& [vni, state] : vpcs_) {
    if (state.cluster_id != cluster.id()) continue;
    for (std::size_t d = 0; d < cluster.device_count(); ++d) {
      const xgwh::XgwH& device = cluster.device(d);
      for (const auto& [prefix, action] : state.routes) {
        ++report.entries_checked;
        if (!device.has_route(vni, prefix)) ++report.missing_on_device;
      }
      for (const auto& [key, action] : state.mappings) {
        ++report.entries_checked;
        if (!device.has_mapping(key)) ++report.missing_on_device;
      }
    }
  }
  return report;
}

std::vector<std::size_t> Controller::cluster_route_counts() const {
  std::vector<std::size_t> counts;
  counts.reserve(clusters_.size());
  for (const auto& cluster : clusters_) {
    counts.push_back(cluster->route_count());
  }
  return counts;
}

telemetry::Snapshot Controller::telemetry_snapshot() const {
  telemetry::Snapshot merged = registry_->snapshot();
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    for (std::size_t d = 0; d < clusters_[c]->device_count(); ++d) {
      merged.merge(clusters_[c]->device(d).registry().snapshot(),
                   "cluster" + std::to_string(c) + ".device" +
                       std::to_string(d) + ".");
    }
  }
  return merged;
}

std::vector<double> Controller::cluster_traffic_share() const {
  std::vector<double> bytes(clusters_.size(), 0.0);
  double total = 0;
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    for (std::size_t d = 0; d < clusters_[c]->device_count(); ++d) {
      const xgwh::XgwH& device = clusters_[c]->device(d);
      const double b = static_cast<double>(
          device.registry().counter_value("xgwh.bytes_in"));
      bytes[c] += b;
      total += b;
    }
  }
  if (total > 0) {
    for (double& share : bytes) share /= total;
  }
  return bytes;
}

}  // namespace sf::cluster
