// The central controller (§4.3, §6.1): owns the desired table state,
// splits it horizontally across XGW-H clusters by VNI, fans installs out
// to every device, mirrors everything to the XGW-x86 fleet (via a hook),
// monitors table water levels, closes sales when a cluster fills up, and
// audits device tables for consistency against the desired state.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "asic/placement.hpp"
#include "cluster/cluster.hpp"
#include "cluster/load_balancer.hpp"
#include "cluster/update_queue.hpp"
#include "dataplane/table_programmer.hpp"
#include "guard/circuit_breaker.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/registry.hpp"
#include "workload/topology.hpp"

namespace sf::cluster {

/// The fan-out unit is the shared dataplane one.
using TableOp = dataplane::TableOp;

class Controller : public dataplane::TableProgrammer {
 public:
  struct Config {
    XgwHCluster::Config cluster_template;
    std::size_t max_clusters = 8;
    /// Clusters built up front ("cluster construction", §6.1); with
    /// several open, least-loaded assignment spreads tenants evenly
    /// instead of filling clusters sequentially.
    std::size_t initial_clusters = 1;
    /// A cluster whose route count reaches this stops taking new VPCs
    /// ("close the sale of the cluster's resources", §6.1).
    std::size_t routes_water_level = 200'000;
    std::size_t mappings_water_level = 400'000;
    /// Update-channel budget (table ops per second; 0 disables). Protects
    /// the devices' install path (§2.3's install-speed pain): ops beyond
    /// the budget return kRateLimited and must be retried.
    double table_op_rate_limit = 0;
    std::size_t table_op_burst = 64;
    /// Backoff shape of the internal retry queue that redelivers
    /// rate-limited provisioning pushes (see push_op / advance_clock).
    UpdateQueue::Config retry;
    /// Circuit breaker on the update channel (sf::guard). Disabled by
    /// default (trip_after == 0): `breaker.trip_after` consecutive
    /// channel refusals stop all push attempts for `open_cooldown_s`,
    /// parking new ops straight onto the retry queue (order kept, nothing
    /// lost), then probe with the queue head. Also honors the SF_GUARD
    /// environment gate.
    guard::CircuitBreaker::Config breaker;
    /// When every cluster is at its water level, admit the VPC into the
    /// *software tier* instead of refusing the sale: its desired state is
    /// recorded and mirrored (the XGW-x86 fleet — and the DPU tier, when
    /// built — holds the complete tables) but no device is programmed and
    /// the VNI director never learns the VNI. The region serves such
    /// tenants entirely below the ASIC (DESIGN.md §11). Off by default:
    /// existing deployments keep refusing, byte-identically.
    bool admit_overflow = false;
    /// Incremental ASIC placement engine (DESIGN.md §16): every applied
    /// hardware-tier table op is accumulated into a WorkloadDelta and
    /// driven through Placer::replace() at the end of each apply() batch,
    /// so TableOpBatch churn maintains a live layout instead of forcing
    /// full recomputes. Software-tier ops are excluded (they occupy no
    /// ASIC memory). Off by default: nothing is built, snapshots stay
    /// byte-identical.
    bool placement_enabled = false;
    asic::PlacementEngine::Config placement;
  };

  /// Sentinel cluster id of software-tier (overflow-admitted) VPCs.
  static constexpr std::uint32_t kSoftwareTier = 0xffffffffu;

  explicit Controller(Config config);

  /// Mirror hook: receives every op (the Region wires the XGW-x86 fleet
  /// here — software holds the complete tables).
  void set_mirror(std::function<void(const TableOp&)> mirror) {
    mirror_ = std::move(mirror);
  }

  // ---- provisioning --------------------------------------------------------

  /// Admits a VPC: assigns it to a cluster (opening a new one if needed)
  /// and installs its tables. Returns false when the region is out of
  /// capacity (sales closed).
  bool add_vpc(const workload::VpcRecord& vpc);

  /// Installs a whole region topology.
  std::size_t install_topology(const workload::RegionTopology& region);

  /// Desired-state edits (dataplane::TableProgrammer v2). Every op in the
  /// batch runs the full admission pipeline independently and gets its own
  /// typed status: kNotFound means the VNI has no admitted VPC (installs)
  /// or the entry is absent (removes); kRateLimited means the
  /// update-channel budget is exhausted and nothing was changed;
  /// kUnknownTarget means the VPC's recorded cluster id no longer names a
  /// live cluster (dangling placement) — nothing was changed, and the op
  /// must not be retried until the placement is repaired.
  dataplane::BatchResult apply(const dataplane::TableOpBatch& batch) override;

  /// Advances the controller clock (seconds) feeding the update-channel
  /// rate limiter, then redelivers any deferred (rate-limited) pushes
  /// that are due. Returns the number of deferred ops applied.
  std::size_t advance_clock(double now);

  /// Drains the retry queue *mid-interval*: advances the clock through
  /// `slices` evenly spaced virtual instants inside [start, start+length)
  /// so deferred pushes land interleaved with the interval's packets
  /// instead of piling up at interval boundaries (the churn bench's
  /// tenant-onboarding wave uses this). Returns total ops replayed.
  std::size_t drain_mid_interval(double start, double length,
                                 std::size_t slices);

  /// Reliable push: applies the op now when the update channel allows it,
  /// otherwise parks it on the retry queue — provisioning (add_vpc) and
  /// recovery replays go through here, so a rate-limited burst converges
  /// instead of silently losing entries. kRateLimited means "deferred,
  /// not lost".
  dataplane::TableOpStatus push_op(const TableOp& op);

  /// Ops parked on the retry queue awaiting redelivery.
  std::size_t deferred_op_count() const { return retry_queue_->pending(); }
  const UpdateQueue::Stats& retry_stats() const {
    return retry_queue_->stats();
  }

  /// The update-channel circuit breaker; nullptr when not configured (or
  /// gated off by SF_GUARD).
  const guard::CircuitBreaker* breaker() const { return breaker_.get(); }

  /// The live incremental placement engine; nullptr unless
  /// Config::placement_enabled.
  const asic::PlacementEngine* placement_engine() const {
    return placement_engine_.get();
  }

  /// Models losing the update channel to the devices entirely: while down,
  /// every table push is deferred (direct install/remove calls return
  /// kRateLimited) and nothing drains until the channel returns.
  void set_update_channel_up(bool up);
  bool update_channel_up() const { return update_channel_up_; }

  /// Models a controller brownout: the channel is nominally up (retries
  /// still attempt delivery) but every attempt is refused. Unlike a hard
  /// outage this keeps feeding failures to the circuit breaker, so a
  /// configured breaker trips, short-circuits new pushes straight onto
  /// the retry queue, probes half-open against the still-degraded
  /// channel, and only closes once the brownout is cleared.
  void set_update_channel_degraded(bool degraded);
  bool update_channel_degraded() const { return update_channel_degraded_; }

  /// Moves a VPC's entries to another cluster and re-points the VNI
  /// director — §4.3's "precisely manage the traffic load on a particular
  /// cluster simply by adding or deleting the corresponding entries".
  /// Peered VPCs move together (the whole peer group migrates). Returns
  /// false for unknown VNIs or an out-of-range target.
  bool migrate_vpc(net::Vni vni, std::uint32_t target_cluster);

  // ---- steering / data plane ------------------------------------------------

  std::optional<std::uint32_t> cluster_for(net::Vni vni) const {
    return director_.cluster_for(vni);
  }
  const VniDirector& director() const { return director_; }

  /// True when `vni` was admitted into the software tier (no cluster).
  bool is_overflow(net::Vni vni) const {
    auto it = vpcs_.find(vni);
    return it != vpcs_.end() && it->second.cluster_id == kSoftwareTier;
  }
  /// Software-tier VPCs admitted so far.
  std::size_t overflow_count() const { return overflow_vpcs_; }

  /// Routes a packet to its VNI's cluster. Drops when the VNI is unknown.
  xgwh::ForwardResult process(const net::OverlayPacket& packet,
                              double now = 0);

  /// The cluster's table interface — every device-programming path in the
  /// controller goes through this, never through concrete cluster types.
  dataplane::TableProgrammer& programmer(std::uint32_t cluster_id) {
    return *clusters_.at(cluster_id);
  }

  // ---- cluster access --------------------------------------------------------

  std::size_t cluster_count() const { return clusters_.size(); }
  XgwHCluster& cluster(std::size_t index) { return *clusters_.at(index); }
  const XgwHCluster& cluster(std::size_t index) const {
    return *clusters_.at(index);
  }

  // ---- monitoring -------------------------------------------------------------

  struct ConsistencyReport {
    std::size_t entries_checked = 0;
    std::size_t missing_on_device = 0;   // desired but absent
    std::size_t devices_checked = 0;
  };

  /// Audits one cluster's devices against the desired state (§6.1:
  /// periodic consistency checks after table download).
  ConsistencyReport check_consistency(std::size_t cluster_index) const;

  /// Alerts raised so far (water levels, failovers, admission refusals).
  const std::vector<std::string>& alerts() const { return alerts_; }

  /// Route entries per cluster (the Fig. 23 series).
  std::vector<std::size_t> cluster_route_counts() const;

  /// Control-plane counters: table ops fanned out, VPC admissions and
  /// refusals, migrations, clusters opened, packets steered.
  telemetry::Registry& registry() { return *registry_; }
  const telemetry::Registry& registry() const { return *registry_; }

  /// Ring-buffer journal of control-plane events (provisioning,
  /// water-level alerts, migrations, failovers recorded by the recovery
  /// machinery).
  telemetry::EventJournal& journal() { return *journal_; }
  const telemetry::EventJournal& journal() const { return *journal_; }

  /// Region-wide counter snapshot: this controller's own registry merged
  /// with every device registry, prefixed "clusterC.deviceD.".
  telemetry::Snapshot telemetry_snapshot() const;

  /// Each cluster's fraction of region bytes, from the devices'
  /// "xgwh.bytes_in" counters. All-zero traffic yields all zeros.
  std::vector<double> cluster_traffic_share() const;

  const Config& config() const { return config_; }

 private:
  struct VpcState {
    std::uint32_t cluster_id = 0;
    std::vector<std::pair<net::IpPrefix, tables::VxlanRouteAction>> routes;
    std::vector<std::pair<tables::VmNcKey, tables::VmNcAction>> mappings;
  };

  /// Test seam: lets regression tests forge VPC placement state (e.g. a
  /// dangling cluster id) without widening the public surface.
  friend struct ControllerTestPeer;

  /// One batched op through the full admission pipeline (vpcs_ lookup,
  /// placement check, token bucket, device fan-out, desired state, mirror).
  dataplane::TableOpStatus apply_one(const TableOp& op);
  dataplane::TableOpStatus apply_install_route(net::Vni vni,
                                               const net::IpPrefix& prefix,
                                               tables::VxlanRouteAction action);
  dataplane::TableOpStatus apply_remove_route(net::Vni vni,
                                              const net::IpPrefix& prefix);
  dataplane::TableOpStatus apply_install_mapping(const tables::VmNcKey& key,
                                                 tables::VmNcAction action);
  dataplane::TableOpStatus apply_remove_mapping(const tables::VmNcKey& key);
  /// kUnknownTarget when a hardware-tier VPC's cluster id is dangling.
  bool placement_live(std::uint32_t cluster_id) const {
    return cluster_id == kSoftwareTier || cluster_id < clusters_.size();
  }

  /// Picks (or opens) a cluster with capacity; nullopt when sales close.
  std::optional<std::uint32_t> assign_cluster();
  void mirror(const TableOp& op);
  /// Pushes the batch's accumulated workload delta through the placement
  /// engine (no-op when disabled or the delta is empty).
  void flush_placement_delta();
  /// Update-channel token bucket (table_op_rate_limit / table_op_burst).
  /// Every outcome feeds the circuit breaker when one is configured.
  bool take_op_token();
  /// Breaker feedback with trip/close journaling (no-ops when absent).
  void breaker_failure();
  void breaker_success();

  Config config_;
  std::vector<std::unique_ptr<XgwHCluster>> clusters_;
  VniDirector director_;
  std::unordered_map<net::Vni, VpcState> vpcs_;
  std::size_t overflow_vpcs_ = 0;
  std::function<void(const TableOp&)> mirror_;
  std::vector<std::string> alerts_;

  double clock_now_ = 0;
  double op_tokens_ = 0;
  double op_tokens_time_ = 0;
  bool update_channel_up_ = true;
  bool update_channel_degraded_ = false;
  /// Redelivery of rate-limited pushes; targets this controller itself.
  std::unique_ptr<UpdateQueue> retry_queue_;
  /// Built only when configured (trip_after > 0) and SF_GUARD allows it.
  std::unique_ptr<guard::CircuitBreaker> breaker_;
  /// Built only when Config::placement_enabled.
  std::unique_ptr<asic::PlacementEngine> placement_engine_;
  /// Hardware-tier entry churn accumulated since the last flush.
  asic::WorkloadDelta pending_placement_delta_;

  std::unique_ptr<telemetry::Registry> registry_;
  std::unique_ptr<telemetry::EventJournal> journal_;
  telemetry::Counter* ctr_routes_added_ = nullptr;
  telemetry::Counter* ctr_routes_removed_ = nullptr;
  telemetry::Counter* ctr_mappings_added_ = nullptr;
  telemetry::Counter* ctr_mappings_removed_ = nullptr;
  telemetry::Counter* ctr_vpcs_admitted_ = nullptr;
  telemetry::Counter* ctr_admission_refused_ = nullptr;
  telemetry::Counter* ctr_migrations_ = nullptr;
  telemetry::Counter* ctr_clusters_opened_ = nullptr;
  telemetry::Counter* ctr_packets_ = nullptr;
  telemetry::Counter* ctr_unknown_vni_ = nullptr;
  telemetry::Counter* ctr_ops_rate_limited_ = nullptr;
  telemetry::Counter* ctr_ops_deferred_ = nullptr;
  telemetry::Counter* ctr_ops_replayed_ = nullptr;
  // Registered only when admit_overflow is set, so refusing controllers
  // keep their telemetry snapshots byte-identical.
  telemetry::Counter* ctr_overflow_admitted_ = nullptr;
  // Registered only when the breaker is built, so unconfigured
  // controllers keep their telemetry snapshots byte-identical.
  telemetry::Counter* ctr_breaker_trips_ = nullptr;
  telemetry::Counter* ctr_breaker_reopens_ = nullptr;
  telemetry::Counter* ctr_breaker_closes_ = nullptr;
  telemetry::Counter* ctr_breaker_short_circuited_ = nullptr;
};

}  // namespace sf::cluster
