#include "cluster/load_balancer.hpp"

#include <algorithm>

namespace sf::cluster {

std::unordered_map<std::uint32_t, std::size_t> VniDirector::vnis_per_cluster()
    const {
  std::unordered_map<std::uint32_t, std::size_t> counts;
  for (const auto& [vni, cluster] : map_) ++counts[cluster];
  return counts;
}

void EcmpGroup::add(std::uint32_t member) {
  if (contains(member)) return;
  if (members_.size() >= max_next_hops_) {
    throw std::length_error(
        "ECMP next-hop cap reached (commercial load balancers are limited "
        "to a small next-hop set; grow by adding clusters, not members)");
  }
  members_.insert(
      std::lower_bound(members_.begin(), members_.end(), member), member);
}

bool EcmpGroup::remove(std::uint32_t member) {
  auto it = std::lower_bound(members_.begin(), members_.end(), member);
  if (it == members_.end() || *it != member) return false;
  members_.erase(it);
  return true;
}

bool EcmpGroup::contains(std::uint32_t member) const {
  return std::binary_search(members_.begin(), members_.end(), member);
}

std::optional<std::uint32_t> EcmpGroup::pick(
    const net::FiveTuple& tuple) const {
  return pick_by_hash(tuple.hash());
}

std::optional<std::uint32_t> EcmpGroup::pick_by_hash(
    std::uint64_t hash) const {
  if (members_.empty()) return std::nullopt;
  return members_[hash % members_.size()];
}

}  // namespace sf::cluster
