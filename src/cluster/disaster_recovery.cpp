#include "cluster/disaster_recovery.hpp"

#include <stdexcept>

namespace sf::cluster {
namespace {

std::uint64_t slot_key(std::size_t cluster, std::size_t device) {
  return (static_cast<std::uint64_t>(cluster) << 32) | device;
}

}  // namespace

DisasterRecovery::DisasterRecovery(Controller* controller, Config config)
    : controller_(controller),
      config_(config),
      cold_standby_(config.cold_standby_pool) {
  if (controller_ == nullptr) {
    throw std::invalid_argument("DisasterRecovery needs a controller");
  }
}

void DisasterRecovery::record(double now, std::string description) {
  controller_->journal().record("failover", description, now);
  events_.push_back(Event{now, std::move(description)});
}

void DisasterRecovery::clear_port_state(std::size_t cluster,
                                        std::size_t device) {
  isolated_ports_.erase(slot_key(cluster, device));
}

void DisasterRecovery::on_device_failure(std::size_t cluster,
                                         std::size_t device, double now) {
  XgwHCluster& c = controller_->cluster(cluster);
  c.fail_device(device);
  record(now, "cluster " + std::to_string(cluster) + ": device " +
                  std::to_string(device) + " failed; removed from ECMP");
  // Keep observers (the HealthMonitor) in sync even when the failure was
  // decided here — e.g. the port-fault escalation below — so a later ok
  // heartbeat drives a real recovery instead of being ignored.
  if (listener_ != nullptr) {
    listener_->on_device_marked_failed(cluster, device, now);
  }
  if (c.failed_over()) {
    record(now, "cluster " + std::to_string(cluster) +
                    ": all primaries down, failed over to hot-standby "
                    "backup set");
    return;
  }
  const double live_fraction =
      static_cast<double>(c.live_device_count()) /
      static_cast<double>(c.config().primary_devices);
  if (live_fraction < config_.min_live_fraction) {
    if (cold_standby_ > 0) {
      --cold_standby_;
      // The standby inherits the failed device's tables (they are already
      // identical cluster-wide), so recovery is instant in this model.
      // It is fresh hardware: the dead device's isolated-port ledger must
      // not keep shaving the new device's reported capacity.
      c.recover_device(device);
      clear_port_state(cluster, device);
      if (listener_ != nullptr) {
        listener_->on_device_marked_recovered(cluster, device, now);
      }
      record(now, "cluster " + std::to_string(cluster) +
                      ": activated cold-standby gateway in slot " +
                      std::to_string(device));
    } else {
      record(now, "cluster " + std::to_string(cluster) +
                      ": below live-device threshold and no cold standby "
                      "left — alert operators");
    }
  }
}

void DisasterRecovery::on_device_recovery(std::size_t cluster,
                                          std::size_t device, double now) {
  controller_->cluster(cluster).recover_device(device);
  // A recovering slot comes back with healthy ports (replaced hardware or
  // a clean reboot); stale isolation counts would under-report capacity
  // forever since the new ports never emit the matching recoveries.
  clear_port_state(cluster, device);
  if (listener_ != nullptr) {
    listener_->on_device_marked_recovered(cluster, device, now);
  }
  record(now, "cluster " + std::to_string(cluster) + ": device " +
                  std::to_string(device) + " recovered; rejoined ECMP");
}

void DisasterRecovery::on_port_fault(std::size_t cluster, std::size_t device,
                                     unsigned port, double now) {
  unsigned& isolated = isolated_ports_[slot_key(cluster, device)];
  if (isolated < config_.ports_per_device) ++isolated;
  record(now, "cluster " + std::to_string(cluster) + ": device " +
                  std::to_string(device) + " port " + std::to_string(port) +
                  " isolated; traffic migrated to sibling ports");
  if (isolated == config_.ports_per_device) {
    // Whole device unusable: escalate to node-level failure.
    on_device_failure(cluster, device, now);
  }
}

void DisasterRecovery::on_port_recovery(std::size_t cluster,
                                        std::size_t device, unsigned port,
                                        double now) {
  auto it = isolated_ports_.find(slot_key(cluster, device));
  if (it != isolated_ports_.end() && it->second > 0) {
    if (--it->second == 0) isolated_ports_.erase(it);
  }
  record(now, "cluster " + std::to_string(cluster) + ": device " +
                  std::to_string(device) + " port " + std::to_string(port) +
                  " recovered");
}

double DisasterRecovery::device_capacity_fraction(std::size_t cluster,
                                                  std::size_t device) const {
  auto it = isolated_ports_.find(slot_key(cluster, device));
  if (it == isolated_ports_.end()) return 1.0;
  return 1.0 - static_cast<double>(it->second) /
                   static_cast<double>(config_.ports_per_device);
}

unsigned DisasterRecovery::isolated_port_count(std::size_t cluster,
                                               std::size_t device) const {
  auto it = isolated_ports_.find(slot_key(cluster, device));
  return it == isolated_ports_.end() ? 0 : it->second;
}

}  // namespace sf::cluster
