#include "cluster/probe.hpp"

#include <algorithm>

namespace sf::cluster {
namespace {

net::OverlayPacket make_probe(net::Vni vni, const net::IpAddr& src,
                              const net::IpAddr& dst) {
  net::OverlayPacket probe;
  probe.vni = vni;
  probe.inner.src = src;
  probe.inner.dst = dst;
  probe.inner.proto = 17;  // probe traffic rides UDP
  probe.inner.src_port = 30000;
  probe.inner.dst_port = 30000;
  probe.payload_size = 64;
  return probe;
}

const workload::VpcRecord* find_vpc(
    const workload::RegionTopology& topology, net::Vni vni) {
  auto it = std::find_if(
      topology.vpcs.begin(), topology.vpcs.end(),
      [&](const workload::VpcRecord& vpc) { return vpc.vni == vni; });
  return it == topology.vpcs.end() ? nullptr : &*it;
}

}  // namespace

void ProbeCampaign::record_failure(Report* report,
                                   std::string description) const {
  ++report->mismatches;
  if (report->failures.size() < config_.max_failure_details) {
    report->failures.push_back(std::move(description));
  }
}

void ProbeCampaign::probe_vpc(Controller& controller,
                              const workload::VpcRecord& vpc,
                              const workload::RegionTopology& topology,
                              Report* report) const {
  const net::IpAddr probe_src = vpc.vms.front().ip;

  // Local VM reachability: sampled VMs must resolve to their NC.
  const std::size_t stride =
      std::max<std::size_t>(1, vpc.vms.size() / config_.vms_per_vpc);
  for (std::size_t i = 0; i < vpc.vms.size(); i += stride) {
    const workload::VmRecord& vm = vpc.vms[i];
    ++report->probes_sent;
    const auto result =
        controller.process(make_probe(vpc.vni, probe_src, vm.ip));
    if (result.action != dataplane::Action::kForwardToNc ||
        result.packet.outer_dst_ip != net::IpAddr(vm.nc_ip)) {
      record_failure(report, "vni " + std::to_string(vpc.vni) + " VM " +
                                 vm.ip.to_string() +
                                 ": expected NC " + vm.nc_ip.to_string() +
                                 ", got " + dataplane::to_string(result.action));
    }
  }

  // Peer-route reachability: the first VM of each peer's exported subnet.
  if (config_.cover_peering) {
    for (net::Vni peer_vni : vpc.peers) {
      const workload::VpcRecord* peer = find_vpc(topology, peer_vni);
      if (peer == nullptr) continue;
      const net::IpPrefix& exported = peer->routes.front().prefix;
      const workload::VmRecord* target = nullptr;
      for (const workload::VmRecord& vm : peer->vms) {
        if (exported.contains(vm.ip)) {
          target = &vm;
          break;
        }
      }
      if (target == nullptr) continue;
      ++report->probes_sent;
      const auto result =
          controller.process(make_probe(vpc.vni, probe_src, target->ip));
      if (result.action != dataplane::Action::kForwardToNc ||
          result.packet.outer_dst_ip != net::IpAddr(target->nc_ip)) {
        record_failure(report,
                       "vni " + std::to_string(vpc.vni) + " -> peer " +
                           std::to_string(peer_vni) + " VM " +
                           target->ip.to_string() + ": expected NC " +
                           target->nc_ip.to_string() + ", got " +
                           dataplane::to_string(result.action));
      }
    }
  }

  // Internet default route: must steer to the software fleet.
  if (config_.cover_internet) {
    const net::IpAddr public_dst =
        vpc.family == net::IpFamily::kV4
            ? net::IpAddr(net::Ipv4Addr(192, 0, 2, 1))
            : net::IpAddr(net::Ipv6Addr(0x2001'0db8'ffff'0000ULL, 1));
    ++report->probes_sent;
    const auto result =
        controller.process(make_probe(vpc.vni, probe_src, public_dst));
    if (result.action != dataplane::Action::kFallbackToX86) {
      record_failure(report, "vni " + std::to_string(vpc.vni) +
                                 " Internet probe: expected fallback, got " +
                                 dataplane::to_string(result.action));
    }
  }
}

ProbeCampaign::Report ProbeCampaign::run(
    Controller& controller, std::size_t cluster_index,
    const workload::RegionTopology& topology) const {
  Report report;
  for (const workload::VpcRecord& vpc : topology.vpcs) {
    if (vpc.vms.empty()) continue;
    auto assigned = controller.cluster_for(vpc.vni);
    if (!assigned || *assigned != cluster_index) continue;
    probe_vpc(controller, vpc, topology, &report);
  }
  return report;
}

ProbeCampaign::Report ProbeCampaign::run_all(
    Controller& controller,
    const workload::RegionTopology& topology) const {
  Report report;
  for (const workload::VpcRecord& vpc : topology.vpcs) {
    if (vpc.vms.empty()) continue;
    if (!controller.cluster_for(vpc.vni)) continue;
    probe_vpc(controller, vpc, topology, &report);
  }
  return report;
}

}  // namespace sf::cluster
