#include "cluster/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace sf::cluster {

XgwHCluster::XgwHCluster(Config config)
    : config_(config), ecmp_(config.max_ecmp_next_hops) {
  if (config_.primary_devices == 0) {
    throw std::invalid_argument("a cluster needs at least one primary");
  }
  const std::size_t total =
      config_.primary_devices + config_.backup_devices;
  devices_.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    Device device;
    xgwh::XgwH::Config cfg = config_.device;
    // Give each device a distinct underlay address.
    cfg.device_ip = net::Ipv4Addr(config_.device.device_ip.value() +
                                  static_cast<std::uint32_t>(i));
    device.gateway = std::make_unique<xgwh::XgwH>(cfg);
    device.role = i < config_.primary_devices ? DeviceRole::kPrimary
                                              : DeviceRole::kBackup;
    devices_.push_back(std::move(device));
  }
  rebuild_ecmp();
}

dataplane::BatchResult XgwHCluster::apply(
    const dataplane::TableOpBatch& batch) {
  dataplane::BatchResult result;
  bool first = true;
  for (Device& device : devices_) {
    dataplane::BatchResult device_result = device.gateway->apply(batch);
    if (first) result = std::move(device_result);
    first = false;
  }
  if (first) {
    // No devices: report per-op success so desired state still advances.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      result.record(dataplane::TableOpStatus::kOk);
    }
  }
  return result;
}

std::size_t XgwHCluster::route_count() const {
  return devices_.empty() ? 0 : devices_.front().gateway->route_count();
}

std::size_t XgwHCluster::mapping_count() const {
  return devices_.empty() ? 0 : devices_.front().gateway->mapping_count();
}

xgwh::ForwardResult XgwHCluster::forward(const net::OverlayPacket& packet,
                                         double now) {
  auto member = ecmp_.pick(packet.inner);
  if (!member) {
    xgwh::ForwardResult result;
    result.action = dataplane::Action::kDrop;
    result.drop_reason = dataplane::DropReason::kNoLiveDevice;
    result.packet = packet;
    return result;
  }
  return devices_[*member].gateway->forward(packet, now);
}

std::optional<std::size_t> XgwHCluster::pick_device(
    const net::FiveTuple& tuple) const {
  auto member = ecmp_.pick(tuple);
  if (!member) return std::nullopt;
  return static_cast<std::size_t>(*member);
}

void XgwHCluster::rebuild_ecmp() {
  // Serve from primaries while any is healthy; otherwise fail over to the
  // backup set (§6.1: backup clusters are hot standby).
  ecmp_ = EcmpGroup(config_.max_ecmp_next_hops);
  bool any_primary = false;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].role == DeviceRole::kPrimary &&
        devices_[i].health == DeviceHealth::kHealthy) {
      any_primary = true;
    }
  }
  failed_over_ = !any_primary;
  const DeviceRole serving =
      failed_over_ ? DeviceRole::kBackup : DeviceRole::kPrimary;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].role == serving &&
        devices_[i].health == DeviceHealth::kHealthy) {
      ecmp_.add(static_cast<std::uint32_t>(i));
    }
  }
}

void XgwHCluster::fail_device(std::size_t index) {
  devices_.at(index).health = DeviceHealth::kFailed;
  rebuild_ecmp();
  invalidate_fast_paths();
}

void XgwHCluster::recover_device(std::size_t index) {
  devices_.at(index).health = DeviceHealth::kHealthy;
  rebuild_ecmp();
  invalidate_fast_paths();
}

void XgwHCluster::invalidate_fast_paths() {
  // A health transition re-steers flows across devices (and DR standby
  // swaps reuse a device object for a different slot), so every member's
  // cached verdicts must lazily expire — the next packet of each flow
  // re-walks against the device's current tables.
  for (Device& device : devices_) {
    if (device.gateway) device.gateway->invalidate_fast_path();
  }
}

double XgwHCluster::sram_water_level() const {
  double worst = 0;
  for (const Device& device : devices_) {
    if (device.health != DeviceHealth::kHealthy) continue;
    worst = std::max(worst,
                     device.gateway->occupancy_report().sram_path_worst);
    break;  // devices are identical; one sample suffices
  }
  return worst;
}

double XgwHCluster::tcam_water_level() const {
  double worst = 0;
  for (const Device& device : devices_) {
    if (device.health != DeviceHealth::kHealthy) continue;
    worst = std::max(worst,
                     device.gateway->occupancy_report().tcam_path_worst);
    break;
  }
  return worst;
}

}  // namespace sf::cluster
