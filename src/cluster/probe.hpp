// Pre-admission probe testing (§6.1 "Cluster construction"): after table
// download and consistency checks, probe generators inject synthetic
// packets "covering as many test scenarios as possible", and only then is
// user traffic admitted. This campaign derives probes from the desired
// topology (the source of truth) and verifies the data plane's answers:
// local VMs resolve to their NC, peer routes resolve through the peer's
// table, Internet destinations steer to the software fleet.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/controller.hpp"
#include "workload/topology.hpp"

namespace sf::cluster {

class ProbeCampaign {
 public:
  struct Config {
    /// VMs probed per VPC (sampled deterministically).
    std::size_t vms_per_vpc = 3;
    /// Probe peer-route reachability.
    bool cover_peering = true;
    /// Probe the Internet default route (expects fallback steering).
    bool cover_internet = true;
    /// Stop collecting failure details after this many (the count still
    /// reflects all mismatches).
    std::size_t max_failure_details = 16;
  };

  struct Report {
    std::size_t probes_sent = 0;
    std::size_t mismatches = 0;
    std::vector<std::string> failures;

    bool passed() const { return mismatches == 0; }
  };

  ProbeCampaign();
  explicit ProbeCampaign(Config config) : config_(config) {}

  /// Probes every VPC assigned to `cluster_index` through the controller's
  /// data path and checks the forwarding verdicts against `topology`.
  Report run(Controller& controller, std::size_t cluster_index,
             const workload::RegionTopology& topology) const;

  /// Probes the whole region (all clusters).
  Report run_all(Controller& controller,
                 const workload::RegionTopology& topology) const;

 private:
  void probe_vpc(Controller& controller, const workload::VpcRecord& vpc,
                 const workload::RegionTopology& topology,
                 Report* report) const;
  void record_failure(Report* report, std::string description) const;

  Config config_;
};

inline ProbeCampaign::ProbeCampaign() : ProbeCampaign(Config{}) {}

}  // namespace sf::cluster
