// Health monitoring with debounce (§6.1 "Cluster management" / "Disaster
// recovery"): the controller watches heartbeats, traffic and error rates,
// and only acts on *sustained* evidence — a single missed heartbeat or a
// brief jitter burst must not flap a device in and out of the ECMP set.
// Confirmed transitions are forwarded to the DisasterRecovery coordinator.

#pragma once

#include <cstdint>
#include <unordered_map>

#include "cluster/disaster_recovery.hpp"

namespace sf::cluster {

class HealthMonitor {
 public:
  struct Config {
    /// Consecutive missed heartbeats before a device is failed.
    unsigned fail_after_missed = 3;
    /// Consecutive good heartbeats before a failed device recovers.
    unsigned recover_after_ok = 2;
    /// Port packet-error rate that counts as a bad observation.
    double port_error_rate_threshold = 1e-6;
    /// Consecutive bad observations before a port is isolated.
    unsigned isolate_port_after = 2;
  };

  HealthMonitor(DisasterRecovery* recovery, Config config);

  /// Feeds one heartbeat observation for a device.
  void report_heartbeat(std::size_t cluster, std::size_t device, bool ok,
                        double now);

  /// Feeds one port error-rate observation.
  void report_port_errors(std::size_t cluster, std::size_t device,
                          unsigned port, double error_rate, double now);

  /// Monitoring state, for tests/telemetry.
  bool device_considered_failed(std::size_t cluster,
                                std::size_t device) const;
  bool port_considered_isolated(std::size_t cluster, std::size_t device,
                                unsigned port) const;

 private:
  struct DeviceState {
    unsigned consecutive_missed = 0;
    unsigned consecutive_ok = 0;
    bool failed = false;
  };
  struct PortState {
    unsigned consecutive_bad = 0;
    bool isolated = false;
  };

  static std::uint64_t device_key(std::size_t cluster, std::size_t device) {
    return (static_cast<std::uint64_t>(cluster) << 32) | device;
  }
  static std::uint64_t port_key(std::size_t cluster, std::size_t device,
                                unsigned port) {
    return (device_key(cluster, device) << 12) | port;
  }

  DisasterRecovery* recovery_;
  Config config_;
  std::unordered_map<std::uint64_t, DeviceState> devices_;
  std::unordered_map<std::uint64_t, PortState> ports_;
};

}  // namespace sf::cluster
