// Health monitoring with debounce (§6.1 "Cluster management" / "Disaster
// recovery"): the controller watches heartbeats, traffic and error rates,
// and only acts on *sustained* evidence — a single missed heartbeat or a
// brief jitter burst must not flap a device in and out of the ECMP set.
// The same hysteresis applies symmetrically on the way back: one clean
// observation does not un-isolate a port, and one good heartbeat does not
// return a failed device to service.
//
// Confirmed transitions are forwarded to the DisasterRecovery coordinator.
// The monitor also registers itself as the coordinator's RecoveryListener,
// so decisions recovery takes on its own (port-fault escalation to a
// device failure, cold-standby replacement) are reflected back into the
// monitoring state instead of silently diverging from it.

#pragma once

#include <cstdint>
#include <unordered_map>

#include "cluster/disaster_recovery.hpp"

namespace sf::cluster {

class HealthMonitor : public RecoveryListener {
 public:
  struct Config {
    /// Consecutive missed heartbeats before a device is failed.
    unsigned fail_after_missed = 3;
    /// Consecutive good heartbeats before a failed device recovers.
    unsigned recover_after_ok = 2;
    /// Port packet-error rate that counts as a bad observation.
    double port_error_rate_threshold = 1e-6;
    /// Consecutive bad observations before a port is isolated.
    unsigned isolate_port_after = 2;
    /// Consecutive clean observations before an isolated port returns to
    /// the ECMP spread — the symmetric half of isolate_port_after, so a
    /// flapping port cannot oscillate in and out on every probe.
    unsigned recover_port_after_ok = 2;
  };

  HealthMonitor(DisasterRecovery* recovery, Config config);
  ~HealthMonitor() override;

  /// Feeds one heartbeat observation for a device.
  void report_heartbeat(std::size_t cluster, std::size_t device, bool ok,
                        double now);

  /// Feeds one port error-rate observation.
  void report_port_errors(std::size_t cluster, std::size_t device,
                          unsigned port, double error_rate, double now);

  /// Monitoring state, for tests/telemetry.
  bool device_considered_failed(std::size_t cluster,
                                std::size_t device) const;
  bool port_considered_isolated(std::size_t cluster, std::size_t device,
                                unsigned port) const;

  // ---- RecoveryListener (recovery-initiated transitions) -------------------

  /// DR escalated a failure it decided on its own (e.g. all ports gone):
  /// adopt the failed state so later ok-heartbeats drive a real recovery.
  void on_device_marked_failed(std::size_t cluster, std::size_t device,
                               double now) override;
  /// The slot serves again on fresh hardware: forget the old device's
  /// heartbeat debt and port isolation history.
  void on_device_marked_recovered(std::size_t cluster, std::size_t device,
                                  double now) override;

 private:
  struct DeviceState {
    unsigned consecutive_missed = 0;
    unsigned consecutive_ok = 0;
    bool failed = false;
  };
  struct PortState {
    unsigned consecutive_bad = 0;
    unsigned consecutive_ok = 0;
    bool isolated = false;
  };

  static std::uint64_t device_key(std::size_t cluster, std::size_t device) {
    return (static_cast<std::uint64_t>(cluster) << 32) | device;
  }
  static std::uint64_t port_key(std::size_t cluster, std::size_t device,
                                unsigned port) {
    return (device_key(cluster, device) << 12) | port;
  }

  DisasterRecovery* recovery_;
  Config config_;
  std::unordered_map<std::uint64_t, DeviceState> devices_;
  std::unordered_map<std::uint64_t, PortState> ports_;
};

}  // namespace sf::cluster
