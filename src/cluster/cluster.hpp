// An XGW-H cluster: N identical hardware gateways sharing traffic behind
// one ECMP group, with a 1:1 hot-standby backup set (§6.1 "Disaster
// recovery"). Every device holds the same tables; installs fan out to all
// devices, primaries and backups alike, so failover needs no table
// download.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/load_balancer.hpp"
#include "xgwh/xgwh.hpp"

namespace sf::cluster {

enum class DeviceRole : std::uint8_t { kPrimary, kBackup };
enum class DeviceHealth : std::uint8_t { kHealthy, kFailed, kDraining };

class XgwHCluster : public dataplane::Gateway,
                    public dataplane::TableProgrammer {
 public:
  struct Config {
    std::uint32_t cluster_id = 0;
    std::size_t primary_devices = 4;
    std::size_t backup_devices = 4;  // 1:1 backup by default
    unsigned max_ecmp_next_hops = 64;
    xgwh::XgwH::Config device;
  };

  explicit XgwHCluster(Config config);

  // ---- table fan-out (dataplane::TableProgrammer) -------------------------

  /// Installs fan out to every device (primaries and backups hold the same
  /// tables); the returned per-op statuses are the first device's — they
  /// are identical by construction, so one answer speaks for all.
  dataplane::BatchResult apply(const dataplane::TableOpBatch& batch) override;

  std::size_t route_count() const;    // per device (identical by design)
  std::size_t mapping_count() const;

  // ---- data plane (dataplane::Gateway) --------------------------------------

  /// ECMP-picks a live primary (or backup after failover) and forwards.
  xgwh::ForwardResult forward(const net::OverlayPacket& packet,
                              double now = 0);

  /// Gateway interface: forward() sliced to the unified verdict.
  dataplane::Verdict process(const net::OverlayPacket& packet,
                             double now) override {
    return forward(packet, now);
  }

  /// The device index process() would pick for this flow (tracing).
  std::optional<std::size_t> pick_device(const net::FiveTuple& tuple) const;

  /// True when the device that would serve this packet holds its flow in
  /// the flow cache — the guard's tier-1 "established?" probe. Const and
  /// side-effect free (see XgwH::flow_established).
  bool flow_established(const net::OverlayPacket& packet) const {
    const std::optional<std::size_t> index = pick_device(packet.inner);
    if (!index) return false;
    return devices_[*index].gateway->flow_established(packet);
  }

  // ---- health / failover ----------------------------------------------------

  std::size_t device_count() const { return devices_.size(); }
  xgwh::XgwH& device(std::size_t index) { return *devices_[index].gateway; }
  const xgwh::XgwH& device(std::size_t index) const {
    return *devices_[index].gateway;
  }
  DeviceHealth device_health(std::size_t index) const {
    return devices_[index].health;
  }
  DeviceRole device_role(std::size_t index) const {
    return devices_[index].role;
  }

  /// Marks a device failed and removes it from the ECMP set; when the
  /// last primary fails the cluster fails over to the backups.
  void fail_device(std::size_t index);
  void recover_device(std::size_t index);

  /// True when traffic is being served by the backup set.
  bool failed_over() const { return failed_over_; }
  std::size_t live_device_count() const { return ecmp_.size(); }

  /// Worst-pipeline occupancy across live devices (water-level input).
  double sram_water_level() const;
  double tcam_water_level() const;

  std::uint32_t id() const { return config_.cluster_id; }
  const Config& config() const { return config_; }

 private:
  struct Device {
    std::unique_ptr<xgwh::XgwH> gateway;
    DeviceRole role = DeviceRole::kPrimary;
    DeviceHealth health = DeviceHealth::kHealthy;
  };

  void rebuild_ecmp();
  /// Bumps every member device's flow-cache epoch after a health
  /// transition / standby swap re-steers flows.
  void invalidate_fast_paths();

  Config config_;
  std::vector<Device> devices_;
  EcmpGroup ecmp_;
  bool failed_over_ = false;
};

}  // namespace sf::cluster
