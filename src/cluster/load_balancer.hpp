// The load-balancing layer in front of the gateway clusters (Fig. 12).
//
// Two stages:
//   * VniDirector — the region-level steering the controller programs:
//     VNI -> cluster (horizontal table splitting, §4.3).
//   * EcmpGroup — flow-hash ECMP across the devices of one cluster.
//     Commercial boxes cap the next-hop set (§2.3: often < 64, sometimes
//     16), which bounds cluster size; the cap is enforced here.

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "net/headers.hpp"
#include "net/packet.hpp"

namespace sf::cluster {

/// VNI -> cluster steering table.
class VniDirector {
 public:
  void assign(net::Vni vni, std::uint32_t cluster_id) {
    map_[vni] = cluster_id;
  }
  void unassign(net::Vni vni) { map_.erase(vni); }

  std::optional<std::uint32_t> cluster_for(net::Vni vni) const {
    auto it = map_.find(vni);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t size() const { return map_.size(); }

  /// Entry count per cluster (for balance reports).
  std::unordered_map<std::uint32_t, std::size_t> vnis_per_cluster() const;

 private:
  std::unordered_map<net::Vni, std::uint32_t> map_;
};

/// Flow-hash ECMP across at most `max_next_hops` members.
class EcmpGroup {
 public:
  explicit EcmpGroup(unsigned max_next_hops = 64)
      : max_next_hops_(max_next_hops) {
    if (max_next_hops == 0) {
      throw std::invalid_argument("ECMP needs at least one next hop slot");
    }
  }

  /// Adds a member id. Throws when the commercial next-hop cap is hit —
  /// the §2.3 constraint that forces multiple clusters per region.
  void add(std::uint32_t member);
  bool remove(std::uint32_t member);
  bool contains(std::uint32_t member) const;

  /// Picks a live member for a flow, or nullopt when empty.
  std::optional<std::uint32_t> pick(const net::FiveTuple& tuple) const;
  std::optional<std::uint32_t> pick_by_hash(std::uint64_t hash) const;

  std::size_t size() const { return members_.size(); }
  unsigned max_next_hops() const { return max_next_hops_; }
  const std::vector<std::uint32_t>& members() const { return members_; }

 private:
  unsigned max_next_hops_;
  std::vector<std::uint32_t> members_;  // kept sorted for determinism
};

}  // namespace sf::cluster
