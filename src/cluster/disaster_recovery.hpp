// Disaster recovery coordination at three levels (§6.1):
//   * cluster — 1:1 hot-standby failover (XgwHCluster::fail_device flips
//     the ECMP set to the backups when the last primary dies);
//   * node — failed devices leave the ECMP set; when a cluster runs too
//     thin, a globally reserved cold-standby gateway is pulled in;
//   * port — a flapping port is isolated, shaving a fraction of its
//     device's capacity until it recovers.
//
// The coordinator reacts to health notifications from the simulators,
// keeps the cold-standby pool, and journals every action it takes.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/controller.hpp"

namespace sf::cluster {

class DisasterRecovery {
 public:
  struct Config {
    /// Globally reserved cold-standby gateways for the region.
    std::size_t cold_standby_pool = 4;
    /// When a cluster's live device count falls below this fraction of
    /// its primaries, a cold standby is activated.
    double min_live_fraction = 0.5;
    /// Ports per device (capacity granularity for port-level isolation).
    unsigned ports_per_device = 32;
  };

  struct Event {
    double time = 0;
    std::string description;
  };

  DisasterRecovery(Controller* controller, Config config);

  // ---- notifications from health monitoring -------------------------------

  void on_device_failure(std::size_t cluster, std::size_t device,
                         double now);
  void on_device_recovery(std::size_t cluster, std::size_t device,
                          double now);
  void on_port_fault(std::size_t cluster, std::size_t device, unsigned port,
                     double now);
  void on_port_recovery(std::size_t cluster, std::size_t device,
                        unsigned port, double now);

  // ---- state ---------------------------------------------------------------

  std::size_t cold_standby_available() const { return cold_standby_; }

  /// Fraction of a device's capacity currently usable (1.0 minus isolated
  /// ports).
  double device_capacity_fraction(std::size_t cluster,
                                  std::size_t device) const;

  const std::vector<Event>& events() const { return events_; }

 private:
  void record(double now, std::string description);

  Controller* controller_;
  Config config_;
  std::size_t cold_standby_;
  /// (cluster, device) -> isolated port count.
  std::unordered_map<std::uint64_t, unsigned> isolated_ports_;
  std::vector<Event> events_;
};

}  // namespace sf::cluster
