// Disaster recovery coordination at three levels (§6.1):
//   * cluster — 1:1 hot-standby failover (XgwHCluster::fail_device flips
//     the ECMP set to the backups when the last primary dies);
//   * node — failed devices leave the ECMP set; when a cluster runs too
//     thin, a globally reserved cold-standby gateway is pulled in;
//   * port — a flapping port is isolated, shaving a fraction of its
//     device's capacity until it recovers.
//
// The coordinator reacts to health notifications from the simulators,
// keeps the cold-standby pool, and journals every action it takes.
// Decisions it takes *on its own* (port-fault escalation to node level,
// cold-standby replacement) are pushed back to the registered
// RecoveryListener so the health view never desyncs from the recovery
// state machine.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/controller.hpp"

namespace sf::cluster {

/// Receives recovery-side state transitions that did not originate from
/// the listener itself — e.g. the HealthMonitor learns that DR escalated
/// a port fault to a device failure, or replaced a dead device with a
/// cold standby (which arrives with fresh, healthy ports).
class RecoveryListener {
 public:
  virtual ~RecoveryListener() = default;

  /// The device in this slot is now considered failed cluster-side.
  virtual void on_device_marked_failed(std::size_t cluster,
                                       std::size_t device, double now) = 0;
  /// The slot serves again (heartbeat recovery or a fresh standby);
  /// per-device observation state should be reset.
  virtual void on_device_marked_recovered(std::size_t cluster,
                                          std::size_t device,
                                          double now) = 0;
};

class DisasterRecovery {
 public:
  struct Config {
    /// Globally reserved cold-standby gateways for the region.
    std::size_t cold_standby_pool = 4;
    /// When a cluster's live device count falls below this fraction of
    /// its primaries, a cold standby is activated.
    double min_live_fraction = 0.5;
    /// Ports per device (capacity granularity for port-level isolation).
    unsigned ports_per_device = 32;
  };

  struct Event {
    double time = 0;
    std::string description;
  };

  DisasterRecovery(Controller* controller, Config config);

  /// Registers the observer for recovery-initiated transitions (the
  /// HealthMonitor registers itself). Pass nullptr to detach.
  void set_listener(RecoveryListener* listener) { listener_ = listener; }
  RecoveryListener* listener() const { return listener_; }

  // ---- notifications from health monitoring -------------------------------

  void on_device_failure(std::size_t cluster, std::size_t device,
                         double now);
  void on_device_recovery(std::size_t cluster, std::size_t device,
                          double now);
  void on_port_fault(std::size_t cluster, std::size_t device, unsigned port,
                     double now);
  void on_port_recovery(std::size_t cluster, std::size_t device,
                        unsigned port, double now);

  // ---- state ---------------------------------------------------------------

  std::size_t cold_standby_available() const { return cold_standby_; }

  /// Fraction of a device's capacity currently usable (1.0 minus isolated
  /// ports).
  double device_capacity_fraction(std::size_t cluster,
                                  std::size_t device) const;

  /// Number of isolated ports on a device slot.
  unsigned isolated_port_count(std::size_t cluster,
                               std::size_t device) const;

  /// True when every slot reports full capacity and no escalation is in
  /// flight — the "no leaked recovery state" invariant chaos smoke checks
  /// after a schedule fully recovers.
  bool quiescent() const { return isolated_ports_.empty(); }

  const std::vector<Event>& events() const { return events_; }

  const Config& config() const { return config_; }

 private:
  void record(double now, std::string description);
  /// Drops the slot's isolated-port bookkeeping — the device in the slot
  /// was replaced or came back fresh, so stale counts must not keep
  /// shaving its reported capacity.
  void clear_port_state(std::size_t cluster, std::size_t device);

  Controller* controller_;
  Config config_;
  std::size_t cold_standby_;
  RecoveryListener* listener_ = nullptr;
  /// (cluster, device) -> isolated port count.
  std::unordered_map<std::uint64_t, unsigned> isolated_ports_;
  std::vector<Event> events_;
};

}  // namespace sf::cluster
