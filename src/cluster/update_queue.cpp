#include "cluster/update_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace sf::cluster {

UpdateQueue::UpdateQueue(dataplane::TableProgrammer& target, Config config)
    : target_(target), config_(config) {
  if (config_.initial_backoff_s <= 0 || config_.backoff_multiplier < 1.0 ||
      config_.max_backoff_s < config_.initial_backoff_s) {
    throw std::invalid_argument("UpdateQueue backoff config invalid");
  }
}

dataplane::TableOpStatus UpdateQueue::park(const dataplane::TableOp& op,
                                           double now,
                                           std::size_t attempts) {
  if (queue_.size() >= config_.max_pending) {
    ++stats_.overflowed;
    return dataplane::TableOpStatus::kRateLimited;
  }
  Pending pending;
  pending.op = op;
  pending.backoff = config_.initial_backoff_s;
  pending.due = now + pending.backoff;
  pending.attempts = attempts;
  queue_.push_back(pending);
  ++stats_.deferred;
  return dataplane::TableOpStatus::kRateLimited;
}

dataplane::TableOpStatus UpdateQueue::defer(const dataplane::TableOp& op,
                                            double now) {
  ++stats_.submitted;
  return park(op, now, 0);  // no attempt burned: parked, not retried
}

dataplane::TableOpStatus UpdateQueue::submit(const dataplane::TableOp& op,
                                             double now) {
  ++stats_.submitted;
  // Strict FIFO: while older ops wait, new ones wait behind them —
  // otherwise an install could overtake the remove it logically follows.
  if (!channel_up_ || !queue_.empty()) return park(op, now, 1);
  const dataplane::TableOpStatus status = dataplane::apply(target_, op);
  if (status == dataplane::TableOpStatus::kRateLimited) {
    return park(op, now, 1);
  }
  ++stats_.applied;
  return status;
}

std::size_t UpdateQueue::advance(double now) {
  if (!channel_up_) return 0;
  std::size_t applied = 0;
  while (!queue_.empty() && queue_.front().due <= now) {
    Pending& head = queue_.front();
    ++stats_.retries;
    const dataplane::TableOpStatus status =
        dataplane::apply(target_, head.op);
    if (status == dataplane::TableOpStatus::kRateLimited) {
      ++head.attempts;
      if (config_.max_attempts > 0 &&
          head.attempts >= config_.max_attempts) {
        ++stats_.gave_up;
        queue_.pop_front();
        continue;
      }
      // Head-of-line blocking is deliberate: retry the same op later
      // rather than letting younger ops jump the order.
      head.backoff =
          std::min(head.backoff * config_.backoff_multiplier,
                   config_.max_backoff_s);
      head.due = now + head.backoff;
      break;
    }
    // Terminal outcomes (ok, duplicate, not-found, capacity) leave the
    // queue; only rate limiting means "try again".
    ++stats_.applied;
    ++applied;
    queue_.pop_front();
  }
  return applied;
}

double UpdateQueue::next_retry_at() const {
  if (queue_.empty()) return std::numeric_limits<double>::infinity();
  return queue_.front().due;
}

}  // namespace sf::cluster
