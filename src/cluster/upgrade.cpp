#include "cluster/upgrade.hpp"

namespace sf::cluster {

RollingUpgrade::Result RollingUpgrade::run(XgwHCluster& cluster,
                                           const UpgradeFn& upgrade,
                                           const HealthFn& health) const {
  Result result;
  const std::size_t primaries = cluster.config().primary_devices;

  for (std::size_t device = 0; device < primaries; ++device) {
    StepResult step;
    step.device = device;

    if (cluster.device_health(device) != DeviceHealth::kHealthy) {
      step.note = "skipped: device not healthy";
      result.steps.push_back(step);
      result.abort_reason =
          "device " + std::to_string(device) + " unhealthy before roll";
      return result;
    }
    if (cluster.live_device_count() <= config_.min_live_devices) {
      step.note = "skipped: draining would violate min live devices";
      result.steps.push_back(step);
      result.abort_reason = "not enough live devices to drain safely";
      return result;
    }

    // Drain: traffic shifts to the siblings via ECMP.
    cluster.fail_device(device);
    step.upgraded = upgrade(cluster.device(device));
    // Rejoin (even a failed upgrade rejoins the old version — the roll
    // aborts, it does not shrink the fleet).
    cluster.recover_device(device);
    step.health_ok = step.upgraded && health(cluster);

    if (!step.upgraded) {
      step.note = "upgrade action failed; device restored on old version";
      result.steps.push_back(step);
      result.abort_reason =
          "upgrade failed on device " + std::to_string(device);
      return result;
    }
    if (!step.health_ok) {
      step.note = "post-upgrade health check failed";
      result.steps.push_back(step);
      result.abort_reason =
          "health gate failed after device " + std::to_string(device);
      return result;
    }
    step.note = "ok";
    result.steps.push_back(step);
  }
  result.completed = result.steps.size() == primaries;
  return result;
}

}  // namespace sf::cluster
