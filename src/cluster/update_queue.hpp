// Reliable table-push front-end for the controller's update channel.
//
// Device install channels are the §2.3 bottleneck: the controller's token
// bucket answers kRateLimited when the budget is gone, and before this
// queue existed callers (provisioning loops, recovery replays) dropped
// those ops on the floor — the desired state silently diverged from the
// devices. UpdateQueue makes every push at-least-once: rejected ops are
// parked and retried with exponential backoff, strictly in submission
// order (once anything is queued, later ops queue behind it, so
// add-then-remove sequences never invert). A channel-outage switch models
// the controller losing its update channel entirely: submissions park
// immediately and drain when the channel returns.

#pragma once

#include <cstdint>
#include <deque>
#include <limits>

#include "dataplane/table_programmer.hpp"

namespace sf::cluster {

class UpdateQueue {
 public:
  struct Config {
    /// First retry delay after a rate-limited push (seconds).
    double initial_backoff_s = 0.25;
    /// Backoff multiplier per consecutive failed attempt of the same op.
    double backoff_multiplier = 2.0;
    /// Backoff ceiling (seconds).
    double max_backoff_s = 8.0;
    /// Attempts before an op is abandoned; 0 retries forever (the right
    /// default for rate limiting — tokens always come back).
    std::size_t max_attempts = 0;
    /// Queue depth limit; submissions beyond it are rejected outright.
    std::size_t max_pending = 1 << 20;
  };

  struct Stats {
    std::uint64_t submitted = 0;      // submit() calls
    std::uint64_t applied = 0;        // ops that reached the target
    std::uint64_t deferred = 0;       // ops parked at least once
    std::uint64_t retries = 0;        // retry attempts (incl. failed ones)
    std::uint64_t gave_up = 0;        // dropped after max_attempts
    std::uint64_t overflowed = 0;     // rejected by max_pending
  };

  UpdateQueue(dataplane::TableProgrammer& target, Config config);

  /// Pushes one op. Applied immediately when the channel is up and nothing
  /// is queued ahead of it; otherwise parked (returns kRateLimited — the
  /// op is not lost, advance() will deliver it).
  dataplane::TableOpStatus submit(const dataplane::TableOp& op, double now);

  /// Parks one op WITHOUT attempting the channel first — the circuit
  /// breaker's short-circuit: while the breaker is open every new op goes
  /// straight to the queue, keeping submission order, and is delivered by
  /// advance() once the breaker lets the channel be tried again. Returns
  /// kRateLimited like any parked submission (kRateLimited also on
  /// max_pending overflow, with stats().overflowed bumped).
  dataplane::TableOpStatus defer(const dataplane::TableOp& op, double now);

  /// Retries due ops in FIFO order until the head is not yet due, the
  /// channel rejects again, or the queue empties. Returns ops applied.
  std::size_t advance(double now);

  /// Models an update-channel outage: while down, every submit parks and
  /// advance() delivers nothing.
  void set_channel_up(bool up) { channel_up_ = up; }
  bool channel_up() const { return channel_up_; }

  std::size_t pending() const { return queue_.size(); }
  /// Earliest time a queued op becomes due; +inf when the queue is empty.
  double next_retry_at() const;

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  struct Pending {
    dataplane::TableOp op;
    double due = 0;
    double backoff = 0;
    std::size_t attempts = 0;
  };

  /// Parks an op with its first-retry schedule.
  dataplane::TableOpStatus park(const dataplane::TableOp& op, double now,
                                std::size_t attempts);

  dataplane::TableProgrammer& target_;
  Config config_;
  std::deque<Pending> queue_;
  bool channel_up_ = true;
  Stats stats_;
};

}  // namespace sf::cluster
