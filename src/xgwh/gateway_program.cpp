#include "xgwh/gateway_program.hpp"

#include <sstream>

namespace sf::xgwh {

std::vector<LogicalTableInfo> gateway_table_layout() {
  using asic::PathSlot;
  using tables::MatchKind;
  return {
      {"shard_select", MatchKind::kExact, PathSlot::kFrontIngress,
       "hash of VNI -> loopback pipe (table splitting, Fig. 14)"},
      {"acl", MatchKind::kTernary, PathSlot::kFrontIngress,
       "tenant ACLs over VNI + inner 5-tuple (SLA policy)"},
      {"vxlan_route_alpm_dir", MatchKind::kLpm, PathSlot::kBackEgress,
       "ALPM directory: pooled (label|VNI|IP) pivots in TCAM"},
      {"vxlan_route_alpm_buckets", MatchKind::kExact, PathSlot::kBackEgress,
       "ALPM buckets: suffix-compressed routes in SRAM"},
      {"vm_nc_pooled", MatchKind::kExact, PathSlot::kBackIngress,
       "pooled VM->NC mapping, v6 keys digested to 32 bits"},
      {"vm_nc_conflicts", MatchKind::kExact, PathSlot::kBackIngress,
       "full-key side table for digest collisions"},
      {"meters", MatchKind::kExact, PathSlot::kBackIngress,
       "per-tenant token buckets (QoS / fallback protection)"},
      {"fallback_steering", MatchKind::kExact, PathSlot::kBackEgress,
       "special VNI -> XGW-x86 next hop (HW/SW co-design)"},
      {"tunnel_rewrite", MatchKind::kExact, PathSlot::kFrontEgress,
       "outer header rewrite: NC / remote region / XGW-x86"},
      {"counters", MatchKind::kExact, PathSlot::kFrontEgress,
       "per-tenant byte/packet counters (billing, telemetry)"},
  };
}

std::vector<std::string> lookup_table_names(
    const asic::CompressionConfig& config, net::IpFamily family) {
  const bool v4 = family == net::IpFamily::kV4;
  std::vector<std::string> names;
  // Ingress front pipe.
  names.push_back("acl");
  if (config.alpm) {
    names.push_back("vxlan_route_alpm_dir");
    names.push_back("vxlan_route_alpm_buckets");
  } else if (config.pool) {
    names.push_back("vxlan_route_pooled");
  } else {
    names.push_back(v4 ? "vxlan_route_v4" : "vxlan_route_v6");
  }
  // Egress back pipe.
  names.push_back("fallback_steering");
  // Ingress back pipe.
  if (config.compress) {
    names.push_back("vm_nc_pooled");
    names.push_back("vm_nc_conflicts");
  } else {
    names.push_back(v4 ? "vm_nc_v4" : "vm_nc_v6");
  }
  names.push_back("meters");
  // Egress front pipe.
  names.push_back("counters");
  return names;
}

std::string describe_gateway_layout() {
  static const char* kSlotNames[] = {"Ingress 0/2", "Egress 1/3",
                                     "Ingress 1/3", "Egress 0/2", "Balanced"};
  std::ostringstream out;
  for (const LogicalTableInfo& info : gateway_table_layout()) {
    out << kSlotNames[static_cast<int>(info.slot)] << "  "
        << to_string(info.match) << "  " << info.name << " — "
        << info.description << "\n";
  }
  return out.str();
}

}  // namespace sf::xgwh
