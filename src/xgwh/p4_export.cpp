#include "xgwh/p4_export.hpp"

#include <sstream>

#include "asic/stage_planner.hpp"
#include "xgwh/gateway_program.hpp"

namespace sf::xgwh {
namespace {

void emit_headers(std::ostream& out) {
  out << R"(// ---- headers ---------------------------------------------------------
header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  dscp_ecn;
    bit<16> total_len;
    bit<16> identification;
    bit<16> flags_frag;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header ipv6_t {
    bit<4>   version;
    bit<8>   traffic_class;
    bit<20>  flow_label;
    bit<16>  payload_len;
    bit<8>   next_hdr;
    bit<8>   hop_limit;
    bit<128> src_addr;
    bit<128> dst_addr;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}

header vxlan_t {
    bit<8>  flags;
    bit<24> reserved;
    bit<24> vni;
    bit<8>  reserved2;
}

)";
}

void emit_metadata(std::ostream& out, bool folded) {
  out << "// ---- bridged metadata";
  if (folded) {
    out << " (crosses " << 3
        << " gress boundaries under pipeline folding, Fig. 13)";
  }
  out << R"( ----
header bridged_meta_t {
    bit<1>   shard;          // VNI-hash shard: loopback pipe select
    bit<3>   scope;          // Local / Peer / IDC / Cross-region / Internet
    bit<1>   fallback;       // steer to XGW-x86
    bit<24>  resolved_vni;   // after iterative Peer resolution
    bit<32>  tunnel_ip;      // remote region / IDC endpoint
    bit<32>  nc_ip;          // destination server
}

)";
}

void emit_parser(std::ostream& out) {
  out << R"(// ---- parser -----------------------------------------------------------
parser SailfishParser(packet_in pkt, out headers_t hdr) {
    state start { pkt.extract(hdr.ethernet); transition select(hdr.ethernet.ether_type) {
        0x0800: outer_ipv4; 0x86dd: outer_ipv6; } }
    state outer_ipv4 { pkt.extract(hdr.outer_ipv4); transition outer_udp; }
    state outer_ipv6 { pkt.extract(hdr.outer_ipv6); transition outer_udp; }
    state outer_udp  { pkt.extract(hdr.udp); transition select(hdr.udp.dst_port) {
        4789: vxlan; } }
    state vxlan      { pkt.extract(hdr.vxlan); transition inner_ethernet; }
    state inner_ethernet { pkt.extract(hdr.inner_ethernet);
        transition select(hdr.inner_ethernet.ether_type) {
        0x0800: inner_ipv4; 0x86dd: inner_ipv6; } }
    state inner_ipv4 { pkt.extract(hdr.inner_ipv4); transition accept; }
    state inner_ipv6 { pkt.extract(hdr.inner_ipv6); transition accept; }
}

)";
}

const char* match_kind_p4(tables::MatchKind kind) {
  switch (kind) {
    case tables::MatchKind::kExact:
      return "exact";
    case tables::MatchKind::kLpm:
      return "lpm";
    case tables::MatchKind::kTernary:
      return "ternary";
  }
  return "exact";
}

struct TableDef {
  const char* name;
  const char* keys;     // pre-rendered key block body
  const char* actions;  // pre-rendered action list
  tables::MatchKind kind;
};

const TableDef* find_table_def(const std::string& name) {
  static const TableDef kDefs[] = {
      {"shard_select",
       "        hdr.vxlan.vni : exact;  // hashed to meta.shard\n",
       "set_shard", tables::MatchKind::kExact},
      {"acl",
       "        hdr.vxlan.vni            : ternary;\n"
       "        hdr.inner_ipv4.src_addr  : ternary;\n"
       "        hdr.inner_ipv4.dst_addr  : ternary;\n"
       "        hdr.inner_ipv4.protocol  : ternary;\n"
       "        meta.l4_src_port         : ternary;  // ranges expand\n"
       "        meta.l4_dst_port         : ternary;\n",
       "permit; deny", tables::MatchKind::kTernary},
      {"vxlan_route_alpm_dir",
       "        meta.family_label  : ternary;  // pooled key (c)\n"
       "        meta.resolved_vni  : ternary;\n"
       "        meta.pooled_dst    : ternary;  // v4 zero-extended to 128b\n",
       "set_partition", tables::MatchKind::kLpm},
      {"vxlan_route_alpm_buckets",
       "        meta.partition_id  : exact;\n"
       "        meta.pooled_suffix : exact;  // suffix-compressed routes\n",
       "set_scope_local; set_scope_peer; set_scope_tunnel; "
       "set_scope_internet",
       tables::MatchKind::kExact},
      {"vm_nc_pooled",
       "        meta.family_label  : exact;  // label separates v4/digest\n"
       "        meta.resolved_vni  : exact;\n"
       "        meta.dst_ip32      : exact;  // v4 addr or 32b v6 digest\n",
       "set_nc", tables::MatchKind::kExact},
      {"vm_nc_conflicts",
       "        meta.resolved_vni       : exact;\n"
       "        hdr.inner_ipv6.dst_addr : exact;  // full 128b key\n",
       "set_nc", tables::MatchKind::kExact},
      {"meters", "        meta.resolved_vni : exact;\n",
       "run_meter", tables::MatchKind::kExact},
      {"fallback_steering", "        meta.special_vni : exact;\n",
       "to_xgw_x86", tables::MatchKind::kExact},
      {"tunnel_rewrite", "        meta.scope : exact;\n",
       "rewrite_to_nc; rewrite_to_tunnel; rewrite_to_x86",
       tables::MatchKind::kExact},
      {"counters", "        meta.resolved_vni : exact;\n",
       "count", tables::MatchKind::kExact},
  };
  for (const TableDef& def : kDefs) {
    if (name == def.name) return &def;
  }
  return nullptr;
}

}  // namespace

std::string export_p4_program(const P4ExportOptions& options) {
  std::ostringstream out;
  const bool folded = options.compression.fold;

  out << "// Sailfish gateway dataplane — P4-16 sketch generated from the\n"
         "// model in src/xgwh. Mode: "
      << (folded ? "folded (pipes 0/2 entry, 1/3 loopback)" : "unfolded")
      << ", compression:"
      << (options.compression.fold ? " fold" : "")
      << (options.compression.split ? " split" : "")
      << (options.compression.pool ? " pool" : "")
      << (options.compression.compress ? " digest" : "")
      << (options.compression.alpm ? " alpm" : "") << "\n\n";

  emit_headers(out);
  emit_metadata(out, folded);
  emit_parser(out);

  // Stage pragmas: lay the loopback-pipe program out on real stages.
  asic::StagePlanner planner{asic::ChipConfig{}};
  asic::StagePlanner::Plan plan;
  if (options.stage_pragmas) {
    const auto demands = asic::compute_demands(
        asic::ChipConfig{}, options.workload, options.compression);
    std::vector<asic::StageTable> stage_tables;
    std::string previous;
    for (const auto& demand : demands) {
      asic::StageTable table;
      table.name = demand.name;
      table.kind = demand.tcam_slices > 0 ? asic::MemoryKind::kTcam
                                          : asic::MemoryKind::kSram;
      table.units = std::max(demand.sram_words, demand.tcam_slices) /
                    (options.compression.split ? 4 : 1);
      if (!previous.empty()) table.depends_on = {previous};
      previous = demand.name;
      stage_tables.push_back(std::move(table));
    }
    plan = planner.plan(stage_tables);
  }
  auto stage_of = [&](const std::string& name) -> int {
    for (const auto& placement : plan.tables) {
      if (placement.name == name) {
        return static_cast<int>(placement.first_stage);
      }
    }
    return -1;
  };

  out << "// ---- tables (lookup order; slots per Figs. 13-15) ---------\n";
  for (const LogicalTableInfo& info : gateway_table_layout()) {
    const TableDef* def = find_table_def(info.name);
    out << "// slot: "
        << (info.slot == asic::PathSlot::kFrontIngress ? "Ingress 0/2"
            : info.slot == asic::PathSlot::kBackEgress ? "Egress 1/3"
            : info.slot == asic::PathSlot::kBackIngress
                ? "Ingress 1/3"
                : "Egress 0/2")
        << " — " << info.description << "\n";
    const int stage = stage_of(info.name);
    if (options.stage_pragmas && stage >= 0) {
      out << "@pragma stage " << stage << "\n";
    }
    out << "table " << info.name << " {\n    key = {\n"
        << (def != nullptr ? def->keys : "")
        << "    }\n    actions = { "
        << (def != nullptr ? def->actions : "NoAction")
        << "; }\n    // match kind: " << match_kind_p4(info.match)
        << "\n}\n\n";
  }

  out << "// ---- control flow ------------------------------------------\n";
  if (folded) {
    out << R"(control IngressEntry /* pipes 0/2 */ {
    apply { shard_select.apply(); acl.apply();
            // traffic manager: egress port = loopback pipe 1 or 3 }
}
control EgressRoute /* pipes 1/3, loopback */ {
    apply { vxlan_route_alpm_dir.apply(); vxlan_route_alpm_buckets.apply();
            // Peer scope: re-resolve with next-hop VNI }
}
control IngressVmNc /* pipes 1/3 after loopback */ {
    apply { if (meta.scope == LOCAL) { vm_nc_conflicts.apply();
                if (miss) vm_nc_pooled.apply(); }
            meters.apply(); fallback_steering.apply(); }
}
control EgressRewrite /* pipes 0/2, exit */ {
    apply { tunnel_rewrite.apply(); counters.apply(); }
}
)";
  } else {
    out << R"(control IngressFull /* all pipes */ {
    apply { shard_select.apply(); acl.apply();
            vxlan_route_alpm_dir.apply(); vxlan_route_alpm_buckets.apply();
            if (meta.scope == LOCAL) { vm_nc_conflicts.apply();
                if (miss) vm_nc_pooled.apply(); }
            meters.apply(); fallback_steering.apply(); }
}
control EgressFull /* all pipes */ {
    apply { tunnel_rewrite.apply(); counters.apply(); }
}
)";
  }
  if (options.stage_pragmas) {
    out << "\n// stage plan: " << (plan.feasible ? "fits" : "DOES NOT FIT")
        << ", " << plan.stages_used << "/"
        << asic::ChipConfig{}.stages_per_pipeline << " stages used\n";
  }
  return out.str();
}

}  // namespace sf::xgwh
