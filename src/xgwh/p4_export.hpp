// P4-16 program export.
//
// Sailfish's production dataplane is "thousands of lines of P4-16" on
// Tofino (§5.1); the SDK and its architecture headers are proprietary, so
// this repository *models* the program (xgwh/xgwh.cpp) and additionally
// emits a faithful P4-16-style source sketch of it: headers, bridged
// metadata, parser, the match-action tables with their keys/actions, the
// per-gress apply blocks in lookup order, and @pragma stage hints from
// the stage planner. The artifact is meant for review and porting, not
// for compiling against the closed toolchain.

#pragma once

#include <string>

#include "asic/placer.hpp"

namespace sf::xgwh {

struct P4ExportOptions {
  asic::CompressionConfig compression = asic::CompressionConfig::all();
  /// Entry-count scale used to size tables and compute stage pragmas.
  asic::GatewayWorkload workload{};
  /// Emit @pragma stage hints computed by the stage planner.
  bool stage_pragmas = true;
};

/// Emits the gateway program as P4-16-style text.
std::string export_p4_program(const P4ExportOptions& options);

}  // namespace sf::xgwh
