// The gateway program's logical table layout (Figs. 13-15): which tables
// exist, their match kinds, and the folded-path slot each occupies. The
// Table 4 bench and the documentation derive from this single source.

#pragma once

#include <string>
#include <vector>

#include "asic/placer.hpp"
#include "tables/entry.hpp"

namespace sf::xgwh {

struct LogicalTableInfo {
  std::string name;
  tables::MatchKind match = tables::MatchKind::kExact;
  asic::PathSlot slot = asic::PathSlot::kFrontIngress;
  std::string description;
};

/// The Sailfish gateway's table layout in folded mode, in lookup order.
std::vector<LogicalTableInfo> gateway_table_layout();

/// Renders the layout as a table-per-line summary (README/bench output).
std::string describe_gateway_layout();

/// Placement-table names (asic::compute_demands naming) a packet of the
/// given IP family consults under a compression config, in lookup order
/// along the folded path (Ingress front -> Egress back -> Ingress back ->
/// Egress front). Service tables are listed unconditionally; callers
/// intersect with the tables their workload actually placed. The
/// differential placement tester walks packets through exactly this list.
std::vector<std::string> lookup_table_names(
    const asic::CompressionConfig& config, net::IpFamily family);

}  // namespace sf::xgwh
