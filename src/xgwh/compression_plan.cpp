#include "xgwh/compression_plan.hpp"

#include <stdexcept>

namespace sf::xgwh {

asic::CompressionConfig config_for_steps(std::string_view steps) {
  asic::CompressionConfig config;
  for (char step : steps) {
    switch (step) {
      case 'a':
        config.fold = true;
        break;
      case 'b':
        config.split = true;
        break;
      case 'c':
        config.pool = true;
        break;
      case 'd':
        config.compress = true;
        break;
      case 'e':
        config.alpm = true;
        break;
      case 'f':
        config.cross_path_spill = true;
        break;
      default:
        throw std::invalid_argument(std::string("unknown compression step: ") +
                                    step);
    }
  }
  if (config.split && !config.fold) {
    throw std::invalid_argument("step b requires step a (folding)");
  }
  if (config.cross_path_spill && !config.fold) {
    // Unfolded paths are replicated full gateways; borrowing another
    // replica's pipe would break lookup locality.
    throw std::invalid_argument("step f requires step a (folding)");
  }
  return config;
}

std::vector<std::pair<std::string, asic::CompressionConfig>> fig17_steps() {
  return {
      {"Initial", config_for_steps("")},
      {"a", config_for_steps("a")},
      {"a+b", config_for_steps("ab")},
      {"a+b+c+d", config_for_steps("abcd")},
      {"a+b+c+d+e", config_for_steps("abcde")},
  };
}

std::string step_description(char step) {
  switch (step) {
    case 'a':
      return "Pipeline folding";
    case 'b':
      return "Table splitting between pipelines";
    case 'c':
      return "IPv4/IPv6 table pooling";
    case 'd':
      return "Compressing longer table entries";
    case 'e':
      return "TCAM conservation for large FIBs (ALPM)";
    case 'f':
      return "Cross-path spill (multi-pipeline overflow)";
  }
  return "?";
}

}  // namespace sf::xgwh
