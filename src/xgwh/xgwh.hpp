// XGW-H: the Tofino-based hardware gateway (one SfChip running the Sailfish
// gateway program).
//
// Datapath (folded mode, Fig. 13/14 of the paper):
//   Ingress 0/2 : entry pipes — ACL, shard select (hash of VNI) -> egress 1|3
//   Egress  1/3 : loopback pipes — VXLAN route lookup in that shard
//   Ingress 1/3 : VM-NC lookup in that shard -> exit pipe select
//   Egress  0/2 : tunnel rewrite (outer DIP = NC, or steer to XGW-x86)
//
// Unfolded mode runs the whole program in one pass on every pipeline with
// fully replicated tables (4x memory, 2x throughput, half the latency).
//
// The gateway exposes a controller-facing table API and a data-plane
// process() call; occupancy reports come from the placer fed with *live*
// table statistics (measured ALPM partitions, measured digest conflicts).

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "asic/chip_config.hpp"
#include "asic/pipeline.hpp"
#include "asic/placer.hpp"
#include "asic/walker.hpp"
#include "dataplane/flow_cache.hpp"
#include "dataplane/gateway.hpp"
#include "dataplane/table_programmer.hpp"
#include "tables/alpm.hpp"
#include "tables/digest_table.hpp"
#include "tables/service_tables.hpp"
#include "telemetry/registry.hpp"

namespace sf::xgwh {

/// The hardware gateway's verdict: the unified dataplane fields plus the
/// chip-level observables the figures consume.
struct ForwardResult : dataplane::Verdict {
  unsigned passes = 0;
  unsigned egress_pipe = 0;
  /// Loopback egress pipe (1 or 3) the packet crossed in folded mode —
  /// the quantity Figs. 20/21 balance.
  std::optional<unsigned> shard_pipe;
};

class XgwH : public dataplane::Gateway, public dataplane::TableProgrammer {
 public:
  struct Config {
    asic::ChipConfig chip;
    asic::CompressionConfig compression = asic::CompressionConfig::all();
    net::Ipv4Addr device_ip = net::Ipv4Addr(10, 0, 0, 1);
    /// Next hop for fallback traffic (the XGW-x86 cluster VIP).
    net::Ipv4Addr x86_next_hop = net::Ipv4Addr(10, 0, 0, 100);
    /// Rate limit toward XGW-x86 (overload protection, §4.2).
    double fallback_rate_bps = 20e9;
    double fallback_burst_bytes = 32e6;
    /// Hash buckets of each shard's VM-NC table (4 ways each). Sized for
    /// the expected mapping count; fleet simulations spawn many devices,
    /// so the default stays modest.
    std::size_t vm_table_buckets = 1 << 14;
    /// Flow-cache slots in front of the pipeline walk (0 disables; the
    /// default honors the SF_FLOW_CACHE environment gate). The cache table
    /// is allocated lazily on first insert, so idle fleet devices cost
    /// nothing.
    std::size_t flow_cache_entries = dataplane::default_flow_cache_entries();
  };

  explicit XgwH(Config config);

  // ---- controller-facing table API (dataplane::TableProgrammer) ----------

  /// Applies a batch op-by-op. Cached verdicts of a mutated VNI lazily
  /// miss and re-walk; other VNIs keep their fast path (per-VNI
  /// generations — DESIGN.md §13). The publish epoch reported per op is
  /// the device's monotone mutation counter.
  dataplane::BatchResult apply(const dataplane::TableOpBatch& batch) override;
  void add_acl_rule(tables::AclRule rule);

  /// Invalidates every cached verdict, across all VNIs: the cluster/DR
  /// layers call this on health reroutes and standby swaps, and ACL
  /// changes escalate here too (rules match any VNI).
  void invalidate_fast_path() {
    ++op_epoch_;
    ++global_gen_;
  }
  std::uint64_t fast_path_generation() const { return op_epoch_; }

  /// Hit/miss/eviction statistics of the flow cache (plain struct, kept
  /// outside the registry so telemetry snapshots stay byte-identical with
  /// the cache on or off).
  const dataplane::FlowCacheStats& flow_cache_stats() const {
    return flow_cache_.stats();
  }

  /// True when this device's flow cache holds a live entry for the
  /// packet's flow — the guard's tier-1 "established?" probe. Const and
  /// side-effect free: it never touches cache stats or the admission
  /// filter, so probing cannot perturb cache-on/off byte-identity.
  bool flow_established(const net::OverlayPacket& packet) const {
    if (!flow_cache_.enabled()) return false;
    return flow_cache_.contains(
        dataplane::make_flow_key(packet.vni, packet.inner),
        effective_generation(packet.vni));
  }

  std::size_t route_count() const;
  std::size_t mapping_count() const;

  /// Exact-presence checks, used by the controller's consistency audit.
  bool has_route(net::Vni vni, const net::IpPrefix& prefix) const;
  bool has_mapping(const tables::VmNcKey& key) const;

  // ---- data plane (dataplane::Gateway) ------------------------------------

  /// Processes one packet with full chip observables. `now` is the
  /// simulation clock (seconds), used by the fallback rate limiter;
  /// `ingress_pipe` defaults to a flow-hash pick among the entry pipes.
  ForwardResult forward(const net::OverlayPacket& packet, double now = 0,
                        std::optional<unsigned> ingress_pipe = std::nullopt);

  /// Gateway interface: forward() sliced to the unified verdict.
  dataplane::Verdict process(const net::OverlayPacket& packet,
                             double now) override {
    return forward(packet, now);
  }

  /// The SoA batched fast path (DESIGN.md §15): cache probes stay in
  /// strict packet order (FlowCacheStats byte-exact), non-capture misses
  /// walk the pipeline as a column-major batch with software-pipelined
  /// table lookups, and verdicts emit in packet order. Byte-identical to
  /// looping process() — verdicts, registry snapshots and cache stats.
  void process_batch(std::span<const net::OverlayPacket> packets, double now,
                     std::span<dataplane::Verdict> out) override;

  /// Hash-threaded form: `flow_hashes[i]` must equal
  /// `packets[i].inner.hash()` (the sharded engine's shard-steering hash).
  /// Skips the per-packet tuple rehash for entry-pipe and cache-key
  /// derivation.
  void process_batch(std::span<const net::OverlayPacket> packets,
                     std::span<const std::uint64_t> flow_hashes, double now,
                     std::span<dataplane::Verdict> out) override;

  /// The real batched fast path: the sharded engine hands each shard
  /// sub-spans of one shared index list, so packets and verdicts are
  /// never gathered/scattered through per-burst copies. `flow_hashes` may
  /// be empty (hashes are then computed here, once per packet).
  void process_batch_indexed(std::span<const net::OverlayPacket> packets,
                             std::span<const std::uint64_t> flow_hashes,
                             std::span<const std::uint32_t> indices,
                             double now,
                             std::span<dataplane::Verdict> out) override;

  using dataplane::Gateway::process_batch;  // allocating convenience form

  // ---- telemetry ----------------------------------------------------------

  /// Bytes that crossed each loopback egress pipe (index = pipe).
  const std::array<std::uint64_t, 4>& shard_pipe_bytes() const {
    return shard_pipe_bytes_;
  }

  struct Telemetry {
    std::uint64_t packets_in = 0;
    std::uint64_t packets_forwarded = 0;
    std::uint64_t packets_fallback = 0;
    std::uint64_t packets_dropped = 0;
    std::uint64_t fallback_rate_limited = 0;
    std::uint64_t bytes_in = 0;
  };
  const Telemetry& telemetry() const { return telemetry_; }

  /// This device's always-on counter registry: the struct above plus
  /// per-table hit/miss counts ("xgwh.table.route.hit", ...), the walker's
  /// per-pipe stage counters ("asic.pipeN.*"), per-loopback-pipe bytes and
  /// a forwarding-latency histogram. Fleet views merge these snapshots.
  telemetry::Registry& registry() { return *registry_; }
  const telemetry::Registry& registry() const { return *registry_; }

  /// Occupancy under this gateway's compression config, fed with live
  /// table statistics.
  asic::OccupancyReport occupancy_report() const;

  /// Live workload description (entry counts by family + measured ALPM /
  /// digest stats) — also reused by the controller's water-level checks.
  asic::GatewayWorkload live_workload() const;

  const Config& config() const { return config_; }

  /// Performance envelope of this gateway (Fig. 18): active entry pipes
  /// halve under folding.
  double max_throughput_bps() const;
  double max_packet_rate_pps() const;

  /// The shard (0/1) a VNI's entries land in when splitting is enabled:
  /// a hash of the VNI (§4.4 offers "parity of VNI" as one option; a
  /// hash stays balanced even when VNI assignment correlates with
  /// clusters). Static so load balancers and simulators can agree.
  static unsigned shard_of_vni(net::Vni vni);

 private:
  struct Shard {
    tables::Alpm<tables::VxlanRouteAction> routes;
    tables::DigestVmNcTable mappings;
    std::size_t routes_v4 = 0;
    std::size_t routes_v6 = 0;
    std::size_t maps_v4 = 0;
    std::size_t maps_v6 = 0;
  };

  struct CounterDelta {
    telemetry::Counter* counter = nullptr;
    std::uint64_t delta = 0;
  };

  /// The per-flow summary the cache replays in place of a pipeline walk:
  /// the walk's verdict inputs, the packet mutation (outer header
  /// rewrite), and the exact per-counter deltas the walk produced so a
  /// replayed hit leaves the telemetry registry byte-identical to a walk.
  ///
  /// The deltas live in a shared flyweight table (`delta_sets_`), not in
  /// the entry: distinct walks produce only a handful of distinct delta
  /// patterns (path x pipes x passes), so interning keeps the cache entry
  /// at ~2 cache lines and every hit replays a vector that stays hot.
  struct CachedWalk {
    static constexpr std::uint32_t kNoDeltaSet = 0xFFFFFFFF;

    bool dropped = false;
    std::uint8_t drop_code = 0;
    std::uint8_t act = 0;  // kAction metadata (valid when !dropped)
    bool set_outer_src = false;
    bool set_outer_dst = false;
    std::uint8_t passes = 0;
    std::uint8_t egress_pipe = 0;
    std::uint16_t bridged_bits = 0;
    std::uint32_t delta_set = kNoDeltaSet;  // index into delta_sets_
    net::IpAddr outer_src;
    net::IpAddr outer_dst;
  };

  /// Shard index (0/1) for a VNI — parity split (§4.4).
  unsigned shard_of(net::Vni vni) const;
  Shard& shard_for(net::Vni vni);
  const Shard& shard_for(net::Vni vni) const;

  // Per-op bodies behind apply().
  dataplane::TableOpStatus apply_install_route(
      net::Vni vni, const net::IpPrefix& prefix,
      tables::VxlanRouteAction action);
  dataplane::TableOpStatus apply_remove_route(net::Vni vni,
                                              const net::IpPrefix& prefix);
  dataplane::TableOpStatus apply_install_mapping(const tables::VmNcKey& key,
                                                 tables::VmNcAction action);
  dataplane::TableOpStatus apply_remove_mapping(const tables::VmNcKey& key);

  /// Invalidates cached verdicts that may depend on `vni`: bumps the
  /// VNI's own generation, or the global one when the VNI ever took part
  /// in a peer route (a cached verdict may have crossed the hop).
  void note_vni_mutation(net::Vni vni);
  /// Composite cache generation for a packet entering on `vni`.
  std::uint64_t effective_generation(net::Vni vni) const {
    const auto it = vni_gens_.find(vni);
    const std::uint64_t local = it == vni_gens_.end() ? 0 : it->second;
    return (global_gen_ << 32) | (local & 0xFFFFFFFFu);
  }

  void build_program();

  // Stage implementations (bound into the PipelineProgram).
  void stage_entry(asic::PacketContext& ctx);
  void stage_acl(asic::PacketContext& ctx);
  void stage_route_lookup(asic::PacketContext& ctx, unsigned shard);
  void stage_vm_nc_lookup(asic::PacketContext& ctx, unsigned shard);
  void stage_rewrite(asic::PacketContext& ctx);

  // Fast-path plumbing.
  void snapshot_walk_counters();
  CachedWalk summarize_walk(const asic::PacketContext& ctx,
                            const asic::WalkSummary& walked,
                            bool capture_deltas);
  std::uint32_t intern_delta_set(const std::vector<CounterDelta>& deltas);
  ForwardResult finish(const net::OverlayPacket& packet, double now,
                       const CachedWalk& walk, bool replayed);
  /// finish() body writing straight into the caller's verdict slot — the
  /// batch path emits without the intermediate ForwardResult copy. Every
  /// Verdict field of `dest` is assigned; `extras`, when given, receives
  /// the ForwardResult-only fields.
  void finish_into(dataplane::Verdict& dest, const net::OverlayPacket& packet,
                   double now, const CachedWalk& walk, bool replayed,
                   ForwardResult* extras = nullptr);

  /// Entry-pipe pick from the flow hash (the scalar path and the batch
  /// path must agree bit-for-bit).
  unsigned entry_pipe_of(std::uint64_t flow_hash) const {
    return config_.compression.fold
               ? (flow_hash & 1 ? 2u : 0u)
               : static_cast<unsigned>(flow_hash & 3);
  }

  /// Walks the deferred (non-capture-miss) packets of the current burst as
  /// a column-major SoA batch and fills their CachedWalk summaries.
  void flush_soa_walk(std::span<const net::OverlayPacket> packets,
                      std::span<const std::uint32_t> indices);

  /// Reusable column-major scratch of the batched fast path (DESIGN.md
  /// §15). A device is single-writer, so one scratch per device suffices;
  /// vectors keep their capacity across bursts.
  struct BatchScratch {
    // Per-packet columns, indexed by POSITION in the burst's index list
    // (not by the caller's packet index — positions are dense, indices
    // may stride).
    std::vector<dataplane::FlowKey> key;
    std::vector<std::uint64_t> gen;
    std::vector<CachedWalk> walk;
    std::vector<std::uint8_t> replayed;
    std::vector<std::uint64_t> hash;  // position-indexed flow hashes
    std::vector<std::uint32_t> idx;   // identity list for contiguous calls
    /// Burst positions whose walk is deferred to the SoA sweep (cache
    /// misses that do NOT capture — or every packet when the cache is
    /// off).
    std::vector<std::uint32_t> pend;

    // SoA walk columns, indexed by position in `pend`.
    std::vector<net::Vni> vni;
    std::vector<unsigned> entry_pipe;
    std::vector<unsigned> lb_pipe;
    std::vector<unsigned> exit_pipe;
    std::vector<std::uint8_t> alive;
    std::vector<std::uint8_t> drop_code;
    std::vector<std::uint8_t> scope;  // tables::RouteScope of the route hit
    std::vector<std::uint8_t> fallback;
    std::vector<std::uint8_t> has_nc;
    std::vector<std::uint32_t> tunnel_ip;
    std::vector<std::uint32_t> nc_ip;
    std::vector<tables::TcamKey> rkey;    // pooled route key per hop
    std::vector<std::uint32_t> rpart;     // prepared ALPM partition
    std::vector<std::uint32_t> work;      // current sweep's worklist
    std::vector<std::uint32_t> next_work;
    // Per-pipeline-shard gather lists for the batched directory sweep:
    // the route stage groups the worklist by shard so each shard's ALPM
    // sees one contiguous key span to software-pipeline.
    std::vector<tables::TcamKey> shard_keys[2];
    std::vector<std::uint32_t> shard_pos[2];
    std::vector<std::uint32_t> shard_part[2];

    /// Reused walk state for capture misses and the scalar forward() path
    /// (borrowed-walker API; the Phv allocation amortizes across packets).
    asic::PacketContext walk_ctx;
  };
  BatchScratch batch_;

  Config config_;
  std::array<Shard, 2> shards_;
  tables::AclTable acl_;
  tables::MeterTable fallback_meter_;
  std::size_t fallback_meter_index_ = 0;

  asic::PipelineProgram program_;
  std::unique_ptr<asic::Walker> walker_;

  // Compiled PHV field handles (interned once in build_program()).
  asic::FieldId fid_shard_ = asic::kInvalidFieldId;
  asic::FieldId fid_scope_ = asic::kInvalidFieldId;
  asic::FieldId fid_fallback_ = asic::kInvalidFieldId;
  asic::FieldId fid_resolved_vni_ = asic::kInvalidFieldId;
  asic::FieldId fid_tunnel_ip_ = asic::kInvalidFieldId;
  asic::FieldId fid_nc_ip_ = asic::kInvalidFieldId;
  asic::FieldId fid_action_ = asic::kInvalidFieldId;

  // Flow-cache fast path (single-writer; one cache per device/shard).
  // Invalidation is per-VNI: entries carry the composite generation of
  // their entry VNI, so a route churn in one tenant leaves every other
  // tenant's fast path warm.
  dataplane::FlowCache<CachedWalk> flow_cache_;
  std::uint64_t op_epoch_ = 0;    // monotone mutation counter
  std::uint64_t global_gen_ = 0;  // all-VNI invalidation generation
  std::unordered_map<net::Vni, std::uint64_t> vni_gens_;
  std::unordered_set<net::Vni> peered_vnis_;
  std::vector<telemetry::Counter*> tracked_counters_;
  std::vector<std::uint64_t> walk_baseline_;
  std::vector<CounterDelta> scratch_deltas_;  // miss-side staging buffer
  /// Interned walk-delta patterns (flyweight; counter pointers are stable
  /// for the registry's lifetime, so sets never invalidate).
  std::vector<std::vector<CounterDelta>> delta_sets_;
  std::unordered_map<std::uint64_t, std::uint32_t> delta_set_index_;

  std::array<std::uint64_t, 4> shard_pipe_bytes_{};
  Telemetry telemetry_;

  // Registry + pre-resolved counter handles (hot-path instruments).
  std::unique_ptr<telemetry::Registry> registry_;
  telemetry::Counter* ctr_packets_in_ = nullptr;
  telemetry::Counter* ctr_bytes_in_ = nullptr;
  telemetry::Counter* ctr_forwarded_ = nullptr;
  telemetry::Counter* ctr_fallback_ = nullptr;
  telemetry::Counter* ctr_dropped_ = nullptr;
  telemetry::Counter* ctr_rate_limited_ = nullptr;
  telemetry::Counter* ctr_route_hit_ = nullptr;
  telemetry::Counter* ctr_route_miss_ = nullptr;
  telemetry::Counter* ctr_vm_hit_ = nullptr;
  telemetry::Counter* ctr_vm_miss_ = nullptr;
  telemetry::Counter* ctr_acl_deny_ = nullptr;
  std::array<telemetry::Counter*, 4> ctr_pipe_bytes_{};
  telemetry::Histogram* hist_latency_ = nullptr;
  telemetry::Histogram* hist_passes_ = nullptr;  // walker's, for hit replay
  // Walker-owned counters the SoA batch walk bumps in bulk (resolved by
  // name after walker_->set_registry; no new registrations).
  telemetry::Counter* ctr_asic_packets_ = nullptr;
  telemetry::Counter* ctr_asic_drops_ = nullptr;
  std::array<telemetry::Counter*, 4> ctr_asic_ingress_{};
  std::array<telemetry::Counter*, 4> ctr_asic_egress_{};
};

}  // namespace sf::xgwh
