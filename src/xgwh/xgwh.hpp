// XGW-H: the Tofino-based hardware gateway (one SfChip running the Sailfish
// gateway program).
//
// Datapath (folded mode, Fig. 13/14 of the paper):
//   Ingress 0/2 : entry pipes — ACL, shard select (hash of VNI) -> egress 1|3
//   Egress  1/3 : loopback pipes — VXLAN route lookup in that shard
//   Ingress 1/3 : VM-NC lookup in that shard -> exit pipe select
//   Egress  0/2 : tunnel rewrite (outer DIP = NC, or steer to XGW-x86)
//
// Unfolded mode runs the whole program in one pass on every pipeline with
// fully replicated tables (4x memory, 2x throughput, half the latency).
//
// The gateway exposes a controller-facing table API and a data-plane
// process() call; occupancy reports come from the placer fed with *live*
// table statistics (measured ALPM partitions, measured digest conflicts).

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "asic/chip_config.hpp"
#include "asic/pipeline.hpp"
#include "asic/placer.hpp"
#include "asic/walker.hpp"
#include "dataplane/gateway.hpp"
#include "dataplane/table_programmer.hpp"
#include "tables/alpm.hpp"
#include "tables/digest_table.hpp"
#include "tables/service_tables.hpp"
#include "telemetry/registry.hpp"

namespace sf::xgwh {

/// The hardware gateway's verdict: the unified dataplane fields plus the
/// chip-level observables the figures consume.
struct ForwardResult : dataplane::Verdict {
  unsigned passes = 0;
  unsigned egress_pipe = 0;
  /// Loopback egress pipe (1 or 3) the packet crossed in folded mode —
  /// the quantity Figs. 20/21 balance.
  std::optional<unsigned> shard_pipe;
};

class XgwH : public dataplane::Gateway, public dataplane::TableProgrammer {
 public:
  struct Config {
    asic::ChipConfig chip;
    asic::CompressionConfig compression = asic::CompressionConfig::all();
    net::Ipv4Addr device_ip = net::Ipv4Addr(10, 0, 0, 1);
    /// Next hop for fallback traffic (the XGW-x86 cluster VIP).
    net::Ipv4Addr x86_next_hop = net::Ipv4Addr(10, 0, 0, 100);
    /// Rate limit toward XGW-x86 (overload protection, §4.2).
    double fallback_rate_bps = 20e9;
    double fallback_burst_bytes = 32e6;
    /// Hash buckets of each shard's VM-NC table (4 ways each). Sized for
    /// the expected mapping count; fleet simulations spawn many devices,
    /// so the default stays modest.
    std::size_t vm_table_buckets = 1 << 14;
  };

  explicit XgwH(Config config);

  // ---- controller-facing table API (dataplane::TableProgrammer) ----------

  dataplane::TableOpStatus install_route(
      net::Vni vni, const net::IpPrefix& prefix,
      tables::VxlanRouteAction action) override;
  dataplane::TableOpStatus remove_route(net::Vni vni,
                                        const net::IpPrefix& prefix) override;
  dataplane::TableOpStatus install_mapping(const tables::VmNcKey& key,
                                           tables::VmNcAction action) override;
  dataplane::TableOpStatus remove_mapping(const tables::VmNcKey& key) override;
  void add_acl_rule(tables::AclRule rule);

  std::size_t route_count() const;
  std::size_t mapping_count() const;

  /// Exact-presence checks, used by the controller's consistency audit.
  bool has_route(net::Vni vni, const net::IpPrefix& prefix) const;
  bool has_mapping(const tables::VmNcKey& key) const;

  // ---- data plane (dataplane::Gateway) ------------------------------------

  /// Processes one packet with full chip observables. `now` is the
  /// simulation clock (seconds), used by the fallback rate limiter;
  /// `ingress_pipe` defaults to a flow-hash pick among the entry pipes.
  ForwardResult forward(const net::OverlayPacket& packet, double now = 0,
                        std::optional<unsigned> ingress_pipe = std::nullopt);

  /// Gateway interface: forward() sliced to the unified verdict.
  dataplane::Verdict process(const net::OverlayPacket& packet,
                             double now) override {
    return forward(packet, now);
  }

  // ---- telemetry ----------------------------------------------------------

  /// Bytes that crossed each loopback egress pipe (index = pipe).
  const std::array<std::uint64_t, 4>& shard_pipe_bytes() const {
    return shard_pipe_bytes_;
  }

  struct Telemetry {
    std::uint64_t packets_in = 0;
    std::uint64_t packets_forwarded = 0;
    std::uint64_t packets_fallback = 0;
    std::uint64_t packets_dropped = 0;
    std::uint64_t fallback_rate_limited = 0;
    std::uint64_t bytes_in = 0;
  };
  const Telemetry& telemetry() const { return telemetry_; }

  /// This device's always-on counter registry: the struct above plus
  /// per-table hit/miss counts ("xgwh.table.route.hit", ...), the walker's
  /// per-pipe stage counters ("asic.pipeN.*"), per-loopback-pipe bytes and
  /// a forwarding-latency histogram. Fleet views merge these snapshots.
  telemetry::Registry& registry() { return *registry_; }
  const telemetry::Registry& registry() const { return *registry_; }

  /// Occupancy under this gateway's compression config, fed with live
  /// table statistics.
  asic::OccupancyReport occupancy_report() const;

  /// Live workload description (entry counts by family + measured ALPM /
  /// digest stats) — also reused by the controller's water-level checks.
  asic::GatewayWorkload live_workload() const;

  const Config& config() const { return config_; }

  /// Performance envelope of this gateway (Fig. 18): active entry pipes
  /// halve under folding.
  double max_throughput_bps() const;
  double max_packet_rate_pps() const;

  /// The shard (0/1) a VNI's entries land in when splitting is enabled:
  /// a hash of the VNI (§4.4 offers "parity of VNI" as one option; a
  /// hash stays balanced even when VNI assignment correlates with
  /// clusters). Static so load balancers and simulators can agree.
  static unsigned shard_of_vni(net::Vni vni);

 private:
  struct Shard {
    tables::Alpm<tables::VxlanRouteAction> routes;
    tables::DigestVmNcTable mappings;
    std::size_t routes_v4 = 0;
    std::size_t routes_v6 = 0;
    std::size_t maps_v4 = 0;
    std::size_t maps_v6 = 0;
  };

  /// Shard index (0/1) for a VNI — parity split (§4.4).
  unsigned shard_of(net::Vni vni) const;
  Shard& shard_for(net::Vni vni);
  const Shard& shard_for(net::Vni vni) const;

  void build_program();

  // Stage implementations (bound into the PipelineProgram).
  void stage_entry(asic::PacketContext& ctx);
  void stage_acl(asic::PacketContext& ctx);
  void stage_route_lookup(asic::PacketContext& ctx, unsigned shard);
  void stage_vm_nc_lookup(asic::PacketContext& ctx, unsigned shard);
  void stage_rewrite(asic::PacketContext& ctx);

  Config config_;
  std::array<Shard, 2> shards_;
  tables::AclTable acl_;
  tables::MeterTable fallback_meter_;
  std::size_t fallback_meter_index_ = 0;

  asic::PipelineProgram program_;
  std::unique_ptr<asic::Walker> walker_;

  std::array<std::uint64_t, 4> shard_pipe_bytes_{};
  Telemetry telemetry_;

  // Registry + pre-resolved counter handles (hot-path instruments).
  std::unique_ptr<telemetry::Registry> registry_;
  telemetry::Counter* ctr_packets_in_ = nullptr;
  telemetry::Counter* ctr_bytes_in_ = nullptr;
  telemetry::Counter* ctr_forwarded_ = nullptr;
  telemetry::Counter* ctr_fallback_ = nullptr;
  telemetry::Counter* ctr_dropped_ = nullptr;
  telemetry::Counter* ctr_rate_limited_ = nullptr;
  telemetry::Counter* ctr_route_hit_ = nullptr;
  telemetry::Counter* ctr_route_miss_ = nullptr;
  telemetry::Counter* ctr_vm_hit_ = nullptr;
  telemetry::Counter* ctr_vm_miss_ = nullptr;
  telemetry::Counter* ctr_acl_deny_ = nullptr;
  std::array<telemetry::Counter*, 4> ctr_pipe_bytes_{};
  telemetry::Histogram* hist_latency_ = nullptr;
};

}  // namespace sf::xgwh
