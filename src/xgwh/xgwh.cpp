#include "xgwh/xgwh.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/hash.hpp"

namespace sf::xgwh {
namespace {

// Metadata field names used across gresses. Widths reflect what a P4
// program would carry in its bridged header. build_program() interns each
// name to a dense FieldId once; the per-packet stages below only ever
// index the PHV slot array.
constexpr const char* kShard = "shard";              // 1 bit
constexpr const char* kScope = "scope";              // 3 bits
constexpr const char* kFallback = "fallback";        // 1 bit
constexpr const char* kResolvedVni = "resolved_vni"; // 24 bits
constexpr const char* kTunnelIp = "tunnel_ip";       // 32 bits
constexpr const char* kNcIp = "nc_ip";               // 32 bits
constexpr const char* kAction = "fwd_action";        // 2 bits

constexpr std::uint64_t kActForward = 0;
constexpr std::uint64_t kActTunnel = 1;
constexpr std::uint64_t kActFallback = 2;

// Drops carry the typed reason through the gateway-agnostic asic layer as
// a (static note, code) pair; forward() recovers the enum from the code.
// dataplane::name() strings have static storage, so this never allocates.
void drop_with(asic::PacketContext& ctx, dataplane::DropReason reason) {
  ctx.drop(dataplane::name(reason), static_cast<std::uint8_t>(reason));
}

dataplane::DropReason reason_from_code(std::uint8_t code) {
  // Code 0 means the asic layer itself aborted (no stage gave a reason).
  if (code == 0 ||
      code > static_cast<std::uint8_t>(dataplane::DropReason::kUnhandledScope)) {
    return dataplane::DropReason::kPipelineFault;
  }
  return static_cast<dataplane::DropReason>(code);
}

}  // namespace

XgwH::XgwH(Config config)
    : config_(std::move(config)), program_(config_.chip.pipelines) {
  if (config_.chip.pipelines != 4) {
    throw std::invalid_argument("XGW-H expects a 4-pipeline chip");
  }
  tables::Alpm<tables::VxlanRouteAction>::Config alpm_config;
  alpm_config.max_bucket_entries = config_.compression.alpm_max_bucket;
  alpm_config.directory_slice_bits = config_.chip.tcam_slice_bits;
  tables::DigestVmNcTable::Config vm_config;
  vm_config.buckets = config_.vm_table_buckets;
  for (Shard& shard : shards_) {
    shard.routes = tables::Alpm<tables::VxlanRouteAction>(alpm_config);
    shard.mappings = tables::DigestVmNcTable(vm_config);
  }
  fallback_meter_index_ = fallback_meter_.add(tables::MeterTable::Config{
      config_.fallback_rate_bps, config_.fallback_burst_bytes});
  build_program();
  walker_ = std::make_unique<asic::Walker>(config_.chip, &program_);
  flow_cache_ = dataplane::FlowCache<CachedWalk>(
      dataplane::FlowCache<CachedWalk>::Config{config_.flow_cache_entries});

  registry_ = std::make_unique<telemetry::Registry>();
  walker_->set_registry(registry_.get());
  ctr_packets_in_ = &registry_->counter("xgwh.packets_in");
  ctr_bytes_in_ = &registry_->counter("xgwh.bytes_in");
  ctr_forwarded_ = &registry_->counter("xgwh.packets_forwarded");
  ctr_fallback_ = &registry_->counter("xgwh.packets_fallback");
  ctr_dropped_ = &registry_->counter("xgwh.packets_dropped");
  ctr_rate_limited_ = &registry_->counter("xgwh.fallback_rate_limited");
  ctr_route_hit_ = &registry_->counter("xgwh.table.route.hit");
  ctr_route_miss_ = &registry_->counter("xgwh.table.route.miss");
  ctr_vm_hit_ = &registry_->counter("xgwh.table.vm_nc.hit");
  ctr_vm_miss_ = &registry_->counter("xgwh.table.vm_nc.miss");
  ctr_acl_deny_ = &registry_->counter("xgwh.table.acl.deny");
  for (unsigned pipe = 0; pipe < 4; ++pipe) {
    ctr_pipe_bytes_[pipe] = &registry_->counter(
        "xgwh.pipe" + std::to_string(pipe) + ".loopback_bytes");
  }
  hist_latency_ = &registry_->histogram(
      "xgwh.latency_us", telemetry::Histogram::Config{
                             /*min_value=*/0.25, /*growth=*/2.0,
                             /*buckets=*/16, /*reservoir=*/256});
  // The walker registered "asic.passes" in set_registry() above; a cache
  // hit replays the per-walk record into the same histogram.
  hist_passes_ = &registry_->histogram("asic.passes");
  // Same deal for the walker's packet counters: resolved by name (no new
  // registrations) so the SoA batch walk can bump them in bulk.
  ctr_asic_packets_ = &registry_->counter("asic.packets");
  ctr_asic_drops_ = &registry_->counter("asic.drops");
  for (unsigned pipe = 0; pipe < 4; ++pipe) {
    const std::string base = "asic.pipe" + std::to_string(pipe);
    ctr_asic_ingress_[pipe] = &registry_->counter(base + ".ingress.packets");
    ctr_asic_egress_[pipe] = &registry_->counter(base + ".egress.packets");
  }
}

unsigned XgwH::shard_of_vni(net::Vni vni) {
  return static_cast<unsigned>(net::mix64(vni) & 1u);
}

unsigned XgwH::shard_of(net::Vni vni) const {
  return config_.compression.split ? shard_of_vni(vni) : 0u;
}

XgwH::Shard& XgwH::shard_for(net::Vni vni) { return shards_[shard_of(vni)]; }
const XgwH::Shard& XgwH::shard_for(net::Vni vni) const {
  return shards_[shard_of(vni)];
}

dataplane::BatchResult XgwH::apply(const dataplane::TableOpBatch& batch) {
  dataplane::BatchResult result;
  for (const dataplane::TableOp& op : batch.ops) {
    dataplane::TableOpStatus status = dataplane::TableOpStatus::kNotFound;
    switch (op.kind) {
      case dataplane::TableOp::Kind::kAddRoute:
        status = apply_install_route(op.vni, op.prefix, op.route_action);
        break;
      case dataplane::TableOp::Kind::kDelRoute:
        status = apply_remove_route(op.vni, op.prefix);
        break;
      case dataplane::TableOp::Kind::kAddMapping:
        status = apply_install_mapping(op.mapping_key, op.mapping_action);
        break;
      case dataplane::TableOp::Kind::kDelMapping:
        status = apply_remove_mapping(op.mapping_key);
        break;
    }
    result.record(status, op_epoch_);
  }
  return result;
}

void XgwH::note_vni_mutation(net::Vni vni) {
  ++op_epoch_;
  if (peered_vnis_.count(vni) > 0) {
    ++global_gen_;
  } else {
    ++vni_gens_[vni];
  }
}

dataplane::TableOpStatus XgwH::apply_install_route(
    net::Vni vni, const net::IpPrefix& prefix,
    tables::VxlanRouteAction action) {
  Shard& shard = shard_for(vni);
  const bool is_new = shard.routes.insert(vni, prefix, action);
  if (is_new) {
    (prefix.family() == net::IpFamily::kV4 ? shard.routes_v4
                                           : shard.routes_v6)++;
  }
  // Re-inserts can change the action payload too, so invalidate either
  // way. A peer route welds both VNIs' cache fates together permanently.
  if (action.scope == tables::RouteScope::kPeer) {
    peered_vnis_.insert(vni);
    peered_vnis_.insert(action.next_hop_vni);
    ++op_epoch_;
    ++global_gen_;
  } else {
    note_vni_mutation(vni);
  }
  return is_new ? dataplane::TableOpStatus::kOk
                : dataplane::TableOpStatus::kDuplicate;
}

dataplane::TableOpStatus XgwH::apply_remove_route(net::Vni vni,
                                                  const net::IpPrefix& prefix) {
  Shard& shard = shard_for(vni);
  if (!shard.routes.erase(vni, prefix)) {
    return dataplane::TableOpStatus::kNotFound;
  }
  (prefix.family() == net::IpFamily::kV4 ? shard.routes_v4
                                         : shard.routes_v6)--;
  note_vni_mutation(vni);
  return dataplane::TableOpStatus::kOk;
}

dataplane::TableOpStatus XgwH::apply_install_mapping(
    const tables::VmNcKey& key, tables::VmNcAction action) {
  Shard& shard = shard_for(key.vni);
  const std::size_t before =
      shard.mappings.stats().main_entries +
      shard.mappings.stats().conflict_entries;
  if (!shard.mappings.insert(key, action)) {
    // The digest table only rejects when the main bucket and the conflict
    // store are both unable to take the entry.
    return dataplane::TableOpStatus::kCapacityExceeded;
  }
  note_vni_mutation(key.vni);
  const std::size_t after = shard.mappings.stats().main_entries +
                            shard.mappings.stats().conflict_entries;
  if (after > before) {
    (key.vm_ip.is_v4() ? shard.maps_v4 : shard.maps_v6)++;
    return dataplane::TableOpStatus::kOk;
  }
  return dataplane::TableOpStatus::kDuplicate;
}

dataplane::TableOpStatus XgwH::apply_remove_mapping(
    const tables::VmNcKey& key) {
  Shard& shard = shard_for(key.vni);
  if (!shard.mappings.erase(key)) return dataplane::TableOpStatus::kNotFound;
  (key.vm_ip.is_v4() ? shard.maps_v4 : shard.maps_v6)--;
  note_vni_mutation(key.vni);
  return dataplane::TableOpStatus::kOk;
}

void XgwH::add_acl_rule(tables::AclRule rule) {
  acl_.add(std::move(rule));
  invalidate_fast_path();
}

bool XgwH::has_route(net::Vni vni, const net::IpPrefix& prefix) const {
  return shard_for(vni).routes.find(vni, prefix) != nullptr;
}

bool XgwH::has_mapping(const tables::VmNcKey& key) const {
  return shard_for(key.vni)
      .mappings.lookup(key.vni, key.vm_ip)
      .has_value();
}

std::size_t XgwH::route_count() const {
  return shards_[0].routes.size() + shards_[1].routes.size();
}

std::size_t XgwH::mapping_count() const {
  const auto s0 = shards_[0].mappings.stats();
  const auto s1 = shards_[1].mappings.stats();
  return s0.main_entries + s0.conflict_entries + s1.main_entries +
         s1.conflict_entries;
}

void XgwH::build_program() {
  // Compile step: intern every metadata field name once. The stages below
  // only touch the PHV through these dense ids — no string hashing per
  // packet. freeze() turns any runtime intern into a hard error.
  asic::PhvLayout& layout = program_.phv_layout();
  fid_shard_ = layout.intern(kShard);
  fid_scope_ = layout.intern(kScope);
  fid_fallback_ = layout.intern(kFallback);
  fid_resolved_vni_ = layout.intern(kResolvedVni);
  fid_tunnel_ip_ = layout.intern(kTunnelIp);
  fid_nc_ip_ = layout.intern(kNcIp);
  fid_action_ = layout.intern(kAction);
  layout.freeze();

  const bool folded = config_.compression.fold;
  auto bind = [this](void (XgwH::*fn)(asic::PacketContext&)) {
    return [this, fn](asic::PacketContext& ctx) { (this->*fn)(ctx); };
  };
  auto bind_shard = [this](void (XgwH::*fn)(asic::PacketContext&, unsigned),
                           unsigned shard) {
    return [this, fn, shard](asic::PacketContext& ctx) {
      (this->*fn)(ctx, shard);
    };
  };

  if (folded) {
    // Entry pipes 0/2: ACL + shard steering.
    for (unsigned pipe : {0u, 2u}) {
      asic::GressProgram entry{"entry", {bind(&XgwH::stage_entry),
                                         bind(&XgwH::stage_acl)}};
      program_.set_ingress(pipe, std::move(entry));
      program_.set_egress(
          pipe, asic::GressProgram{"rewrite", {bind(&XgwH::stage_rewrite)}});
      program_.set_loopback(pipe, false);
    }
    // Loopback pipes 1/3: shard-local route + VM-NC lookups.
    for (unsigned shard : {0u, 1u}) {
      const unsigned pipe = 1 + 2 * shard;
      program_.set_egress(
          pipe, asic::GressProgram{
                    "route",
                    {bind_shard(&XgwH::stage_route_lookup, shard)}});
      program_.set_ingress(
          pipe, asic::GressProgram{
                    "vm_nc",
                    {bind_shard(&XgwH::stage_vm_nc_lookup, shard)}});
      program_.set_loopback(pipe, true);
    }
  } else {
    // Unfolded: the full program in one pass on every pipe; tables are not
    // sharded (shard 0 holds everything).
    for (unsigned pipe = 0; pipe < config_.chip.pipelines; ++pipe) {
      program_.set_ingress(
          pipe, asic::GressProgram{
                    "full",
                    {bind(&XgwH::stage_entry), bind(&XgwH::stage_acl),
                     bind_shard(&XgwH::stage_route_lookup, 0),
                     bind_shard(&XgwH::stage_vm_nc_lookup, 0)}});
      program_.set_egress(
          pipe, asic::GressProgram{"rewrite", {bind(&XgwH::stage_rewrite)}});
      program_.set_loopback(pipe, false);
    }
  }
}

void XgwH::stage_entry(asic::PacketContext& ctx) {
  if (ctx.packet.vni > net::kMaxVni) {
    drop_with(ctx, dataplane::DropReason::kInvalidVni);
    return;
  }
  const unsigned shard = shard_of(ctx.packet.vni);
  ctx.meta.set(fid_shard_, shard, 1, /*bridged=*/true);
  if (config_.compression.fold) {
    // Steer through the loopback pipe owning this shard (Fig. 14).
    ctx.egress_pipe = 1 + 2 * shard;
  }
}

void XgwH::stage_acl(asic::PacketContext& ctx) {
  if (acl_.evaluate(ctx.packet.vni, ctx.packet.inner) ==
      tables::AclVerdict::kDeny) {
    ctr_acl_deny_->add();
    drop_with(ctx, dataplane::DropReason::kAclDeny);
  }
}

void XgwH::stage_route_lookup(asic::PacketContext& ctx, unsigned shard) {
  (void)shard;  // the pipe this stage runs in; see the note below
  net::Vni vni = ctx.packet.vni;
  // Iterative lookup until the scope leaves "Peer" (Fig. 2's walkthrough).
  // Each hop resolves in the shard owning the *current* VNI: peered VPCs
  // can land on different parities, in which case a hardware
  // implementation recirculates the packet through the sibling loopback
  // pipe (rare; peer hops are a thin slice of traffic) or the controller
  // co-shards the peer group. The functional model reads the sibling
  // shard directly.
  for (int hop = 0; hop < 4; ++hop) {
    auto route = shards_[shard_of(vni)].routes.lookup(vni,
                                                      ctx.packet.inner.dst);
    (route ? ctr_route_hit_ : ctr_route_miss_)->add();
    if (!route) {
      // Long-tail/volatile tables live in XGW-x86: steer, don't drop.
      ctx.meta.set(fid_fallback_, 1, 1, true);
      ctx.meta.set(fid_resolved_vni_, vni, 24, true);
      return;
    }
    switch (route->scope) {
      case tables::RouteScope::kLocal:
        ctx.meta.set(fid_scope_, static_cast<std::uint64_t>(route->scope), 3,
                     true);
        ctx.meta.set(fid_fallback_, 0, 1, true);
        ctx.meta.set(fid_resolved_vni_, vni, 24, true);
        return;
      case tables::RouteScope::kPeer:
        vni = route->next_hop_vni;
        continue;
      case tables::RouteScope::kIdc:
      case tables::RouteScope::kCrossRegion:
        ctx.meta.set(fid_scope_, static_cast<std::uint64_t>(route->scope), 3,
                     true);
        ctx.meta.set(fid_fallback_, 0, 1, true);
        ctx.meta.set(fid_resolved_vni_, vni, 24, true);
        ctx.meta.set(fid_tunnel_ip_, route->remote_endpoint.value(), 32,
                     true);
        return;
      case tables::RouteScope::kInternet:
        // South-north: SNAT happens at XGW-x86 (Fig. 11).
        ctx.meta.set(fid_fallback_, 1, 1, true);
        ctx.meta.set(fid_resolved_vni_, vni, 24, true);
        return;
    }
  }
  drop_with(ctx, dataplane::DropReason::kPeerResolutionLoop);
}

void XgwH::stage_vm_nc_lookup(asic::PacketContext& ctx, unsigned shard) {
  // Re-bridge the routing verdict across the remaining crossings.
  for (asic::FieldId field :
       {fid_scope_, fid_fallback_, fid_resolved_vni_, fid_tunnel_ip_}) {
    ctx.meta.bridge(field);
  }
  if (config_.compression.fold) {
    // Exit through the entry-side pipe paired with this loopback pipe
    // (Ingress 1 -> Egress 0, Ingress 3 -> Egress 2; Fig. 13).
    ctx.egress_pipe = ctx.pipe == 1 ? 0 : 2;
  }

  if (ctx.meta.get_or(fid_fallback_) == 1) return;
  const auto scope =
      static_cast<tables::RouteScope>(ctx.meta.get_or(fid_scope_));
  if (scope != tables::RouteScope::kLocal) return;  // tunnel scopes skip

  const net::Vni vni =
      static_cast<net::Vni>(ctx.meta.get_or(fid_resolved_vni_));
  // Like the route stage: the mapping lives in the resolved VNI's shard.
  (void)shard;
  auto mapping =
      shards_[shard_of(vni)].mappings.lookup(vni, ctx.packet.inner.dst);
  (mapping ? ctr_vm_hit_ : ctr_vm_miss_)->add();
  if (!mapping) {
    // Mapping not in hardware (volatile entry): fall back to XGW-x86.
    ctx.meta.set(fid_fallback_, 1, 1, true);
    return;
  }
  ctx.meta.set(fid_nc_ip_, mapping->nc_ip.value(), 32, true);
}

void XgwH::stage_rewrite(asic::PacketContext& ctx) {
  ctx.packet.outer_src_ip = net::IpAddr(config_.device_ip);
  if (ctx.meta.get_or(fid_fallback_) == 1) {
    ctx.packet.outer_dst_ip = net::IpAddr(config_.x86_next_hop);
    ctx.meta.set(fid_action_, kActFallback, 2);
    return;
  }
  const auto scope =
      static_cast<tables::RouteScope>(ctx.meta.get_or(fid_scope_));
  if (scope == tables::RouteScope::kIdc ||
      scope == tables::RouteScope::kCrossRegion) {
    ctx.packet.outer_dst_ip = net::IpAddr(net::Ipv4Addr(
        static_cast<std::uint32_t>(ctx.meta.get_or(fid_tunnel_ip_))));
    ctx.meta.set(fid_action_, kActTunnel, 2);
    return;
  }
  auto nc = ctx.meta.get(fid_nc_ip_);
  if (!nc) {
    drop_with(ctx, dataplane::DropReason::kNoNcResolved);
    return;
  }
  ctx.packet.outer_dst_ip =
      net::IpAddr(net::Ipv4Addr(static_cast<std::uint32_t>(*nc)));
  ctx.meta.set(fid_action_, kActForward, 2);
}

void XgwH::snapshot_walk_counters() {
  // The counter set is fixed after construction in practice; re-scan only
  // if something registered extra counters since the last walk.
  if (tracked_counters_.size() != registry_->counter_count()) {
    tracked_counters_.clear();
    tracked_counters_.reserve(registry_->counter_count());
    registry_->for_each_counter(
        [this](const std::string&, telemetry::Counter& counter) {
          tracked_counters_.push_back(&counter);
        });
  }
  walk_baseline_.resize(tracked_counters_.size());
  for (std::size_t i = 0; i < tracked_counters_.size(); ++i) {
    walk_baseline_[i] = tracked_counters_[i]->value();
  }
}

XgwH::CachedWalk XgwH::summarize_walk(const asic::PacketContext& ctx,
                                      const asic::WalkSummary& walked,
                                      bool capture_deltas) {
  CachedWalk walk;
  walk.dropped = walked.dropped;
  walk.drop_code = walked.drop_code;
  walk.act = static_cast<std::uint8_t>(
      ctx.meta.get_or(fid_action_, kActForward));
  // stage_rewrite is the only stage that mutates the packet: it writes
  // outer_src unconditionally, then outer_dst unless it drops first
  // (kNoNcResolved). Whether the rewrite ran is a property of the walk
  // path, so it caches with the verdict.
  walk.set_outer_src =
      !walked.dropped ||
      walked.drop_code ==
          static_cast<std::uint8_t>(dataplane::DropReason::kNoNcResolved);
  walk.set_outer_dst = !walked.dropped;
  walk.outer_src = ctx.packet.outer_src_ip;
  walk.outer_dst = ctx.packet.outer_dst_ip;
  walk.passes = static_cast<std::uint8_t>(walked.passes);
  walk.egress_pipe = static_cast<std::uint8_t>(walked.egress_pipe);
  walk.bridged_bits = static_cast<std::uint16_t>(walked.bridged_bits);
  // Exact per-counter deltas the walk produced (stage hit/miss counts,
  // per-pipe packet counts, asic totals) — replayed verbatim on a hit so
  // telemetry snapshots cannot tell the fast path from a walk. The
  // pattern is interned: flows sharing a walk path share one delta set.
  if (capture_deltas) {
    scratch_deltas_.clear();
    for (std::size_t i = 0; i < tracked_counters_.size(); ++i) {
      const std::uint64_t delta =
          tracked_counters_[i]->value() - walk_baseline_[i];
      if (delta != 0) scratch_deltas_.push_back({tracked_counters_[i], delta});
    }
    walk.delta_set = intern_delta_set(scratch_deltas_);
  }
  return walk;
}

std::uint32_t XgwH::intern_delta_set(const std::vector<CounterDelta>& deltas) {
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  for (const CounterDelta& d : deltas) {
    h ^= reinterpret_cast<std::uintptr_t>(d.counter) + 0x9E3779B97F4A7C15ull +
         (h << 6) + (h >> 2);
    h ^= d.delta + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  }
  auto [it, fresh] =
      delta_set_index_.try_emplace(h, static_cast<std::uint32_t>(
                                          delta_sets_.size()));
  if (fresh) {
    delta_sets_.push_back(deltas);
    return it->second;
  }
  // Hash collision between distinct patterns would silently misattribute
  // counters; verify and fall back to an un-deduplicated append.
  const std::vector<CounterDelta>& existing = delta_sets_[it->second];
  const bool same =
      existing.size() == deltas.size() &&
      std::equal(existing.begin(), existing.end(), deltas.begin(),
                 [](const CounterDelta& a, const CounterDelta& b) {
                   return a.counter == b.counter && a.delta == b.delta;
                 });
  if (same) return it->second;
  delta_sets_.push_back(deltas);
  return static_cast<std::uint32_t>(delta_sets_.size() - 1);
}

void XgwH::finish_into(dataplane::Verdict& dest,
                       const net::OverlayPacket& packet, double now,
                       const CachedWalk& walk, bool replayed,
                       ForwardResult* extras) {
  if (replayed) {
    if (walk.delta_set != CachedWalk::kNoDeltaSet) {
      for (const CounterDelta& d : delta_sets_[walk.delta_set]) {
        d.counter->add(d.delta);
      }
    }
    hist_passes_->record(static_cast<double>(walk.passes));
  }

  // The batch path hands `dest` straight from the caller's verdict array,
  // so every Verdict field is (re)assigned here — nothing may survive from
  // a previous burst's verdict in the same slot.
  dest.packet = packet;
  if (walk.set_outer_src) dest.packet.outer_src_ip = walk.outer_src;
  if (walk.set_outer_dst) dest.packet.outer_dst_ip = walk.outer_dst;
  dest.software_path = false;
  if (extras != nullptr) {
    extras->passes = walk.passes;
    extras->egress_pipe = walk.egress_pipe;
  }
  // Same formula the walker applies; wire size comes from this packet, so
  // flows whose packets vary in size still get exact latencies on a hit.
  dest.latency_us = config_.chip.latency_us(
      walk.passes, dest.packet.wire_size() + walk.bridged_bits / 8);
  hist_latency_->record(dest.latency_us);

  if (config_.compression.fold) {
    const unsigned shard = shard_of(packet.vni);
    const unsigned loopback_pipe = 1 + 2 * shard;
    if (extras != nullptr) extras->shard_pipe = loopback_pipe;
    if (!walk.dropped) {
      shard_pipe_bytes_[loopback_pipe] += packet.wire_size();
      ctr_pipe_bytes_[loopback_pipe]->add(packet.wire_size());
    }
  }

  if (walk.dropped) {
    ++telemetry_.packets_dropped;
    ctr_dropped_->add();
    dest.action = dataplane::Action::kDrop;
    dest.drop_reason = reason_from_code(walk.drop_code);
    return;
  }
  dest.drop_reason = dataplane::DropReason::kNone;

  if (walk.act == kActFallback) {
    // Overload protection before handing to the software gateway. The
    // meter is stateful, so it runs on every packet — cache hits included.
    if (fallback_meter_.offer(fallback_meter_index_,
                              static_cast<double>(packet.wire_size()),
                              now) == tables::MeterColor::kRed) {
      ++telemetry_.fallback_rate_limited;
      ++telemetry_.packets_dropped;
      ctr_rate_limited_->add();
      ctr_dropped_->add();
      dest.action = dataplane::Action::kDrop;
      dest.drop_reason = dataplane::DropReason::kFallbackRateLimited;
      return;
    }
    ++telemetry_.packets_fallback;
    ctr_fallback_->add();
    dest.action = dataplane::Action::kFallbackToX86;
    return;
  }
  ++telemetry_.packets_forwarded;
  ctr_forwarded_->add();
  dest.action = walk.act == kActTunnel ? dataplane::Action::kForwardTunnel
                                       : dataplane::Action::kForwardToNc;
}

ForwardResult XgwH::finish(const net::OverlayPacket& packet, double now,
                           const CachedWalk& walk, bool replayed) {
  ForwardResult result;
  finish_into(result, packet, now, walk, replayed, &result);
  return result;
}

ForwardResult XgwH::forward(const net::OverlayPacket& packet, double now,
                            std::optional<unsigned> ingress_pipe) {
  ++telemetry_.packets_in;
  telemetry_.bytes_in += packet.wire_size();
  ctr_packets_in_->add();
  ctr_bytes_in_->add(packet.wire_size());

  // One tuple hash serves both the entry-pipe pick and the cache key (the
  // sharded engine threads the very same hash down process_batch). An
  // explicit ingress_pipe overrides the flow-hash pick, so those packets
  // bypass the cache entirely.
  const bool cacheable = flow_cache_.enabled() && !ingress_pipe.has_value();
  dataplane::FlowKey key;
  std::uint64_t generation = 0;
  unsigned entry_pipe = 0;
  if (ingress_pipe) {
    entry_pipe = *ingress_pipe;
  } else {
    const std::uint64_t h = packet.inner.hash();
    entry_pipe = entry_pipe_of(h);
    if (cacheable) {
      // Fast path: replay the cached walk for this exact (VNI, 5-tuple).
      key = dataplane::make_flow_key(packet.vni, h);
      generation = effective_generation(packet.vni);
      if (const CachedWalk* hit = flow_cache_.find(key, generation)) {
        return finish(packet, now, *hit, /*replayed=*/true);
      }
    }
  }

  // Second-miss admission: only flows that have missed before are worth
  // the capture + insert; one-packet flows cost a single filter write.
  const bool capture = cacheable && flow_cache_.note_miss(key);
  if (capture) snapshot_walk_counters();
  asic::WalkSummary walked;
  walker_->run(packet, entry_pipe, batch_.walk_ctx, walked);
  CachedWalk summary =
      summarize_walk(batch_.walk_ctx, walked, /*capture_deltas=*/capture);
  const ForwardResult result = finish(packet, now, summary, /*replayed=*/false);
  if (capture) flow_cache_.insert(key, generation, summary);
  return result;
}

void XgwH::process_batch(std::span<const net::OverlayPacket> packets,
                         double now, std::span<dataplane::Verdict> out) {
  if (out.size() < packets.size()) {
    throw std::invalid_argument(
        "process_batch: output span smaller than the batch");
  }
  batch_.idx.resize(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    batch_.idx[i] = static_cast<std::uint32_t>(i);
  }
  process_batch_indexed(packets, {}, batch_.idx, now, out);
}

void XgwH::process_batch(std::span<const net::OverlayPacket> packets,
                         std::span<const std::uint64_t> flow_hashes,
                         double now, std::span<dataplane::Verdict> out) {
  if (flow_hashes.size() != packets.size()) {
    throw std::invalid_argument(
        "process_batch: flow_hashes.size() must equal packets.size()");
  }
  if (out.size() < packets.size()) {
    throw std::invalid_argument(
        "process_batch: output span smaller than the batch");
  }
  batch_.idx.resize(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    batch_.idx[i] = static_cast<std::uint32_t>(i);
  }
  process_batch_indexed(packets, flow_hashes, batch_.idx, now, out);
}

void XgwH::process_batch_indexed(std::span<const net::OverlayPacket> packets,
                                 std::span<const std::uint64_t> flow_hashes,
                                 std::span<const std::uint32_t> indices,
                                 double now,
                                 std::span<dataplane::Verdict> out) {
  const std::size_t n = indices.size();
  if (out.size() < packets.size()) {
    throw std::invalid_argument(
        "process_batch_indexed: output span smaller than the packet array");
  }
  if (n == 0) return;

  BatchScratch& b = batch_;

  // Normalize hashes to one position-indexed column: the later sweeps
  // then stream it sequentially no matter how the indices stride. This
  // first walk also prefetches each packet a few positions ahead — the
  // engine's index lists stride the base array (one shard keeps every
  // N-th packet), which defeats the hardware streamer, so the first
  // touch of every packet would otherwise stall on L3; the later phases
  // then re-touch the burst L2-warm.
  constexpr std::size_t kAhead = 8;
  const auto prefetch_packet = [&](std::size_t i) {
    if (i + kAhead < n) {
      const char* p =
          reinterpret_cast<const char*>(&packets[indices[i + kAhead]]);
      __builtin_prefetch(p);
      __builtin_prefetch(p + 64);
    }
  };
  b.hash.resize(n);
  if (flow_hashes.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      prefetch_packet(i);
      b.hash[i] = packets[indices[i]].inner.hash();
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      prefetch_packet(i);
      b.hash[i] = flow_hashes[indices[i]];
    }
  }

  // Bulk ingest, BEFORE any capture snapshot: a capture walk's counter
  // delta window must contain that walk's adds and nothing else, exactly
  // like the scalar path (which ingests each packet before snapshotting).
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < n; ++i) bytes += packets[indices[i]].wire_size();
  telemetry_.packets_in += n;
  telemetry_.bytes_in += bytes;
  ctr_packets_in_->add(n);
  ctr_bytes_in_->add(bytes);

  b.pend.clear();
  b.walk.resize(n);
  b.replayed.assign(n, 0);

  if (flow_cache_.enabled()) {
    b.key.resize(n);
    b.gen.resize(n);
    // Phase 1: derive every cache key from the precomputed flow hash and
    // issue its slot prefetch — by the time phase 2 probes slot i, the
    // line has had n-i probes' worth of time to arrive.
    for (std::size_t i = 0; i < n; ++i) {
      b.key[i] = dataplane::make_flow_key(packets[indices[i]].vni, b.hash[i]);
      b.gen[i] = effective_generation(packets[indices[i]].vni);
      flow_cache_.prefetch(b.key[i]);
    }
    // Phase 2: probe in strict packet order — find/note_miss/insert
    // mutate cache stats and admission state, and their sequence is part
    // of the byte-identity contract. Only walks with no cache side
    // effects (non-capture misses) defer to the SoA sweep.
    for (std::size_t i = 0; i < n; ++i) {
      if (const CachedWalk* hit = flow_cache_.find(b.key[i], b.gen[i])) {
        b.walk[i] = *hit;  // copy: the pointer dies at the next insert
        b.replayed[i] = 1;
        continue;
      }
      if (flow_cache_.note_miss(b.key[i])) {
        // Capture miss: walks alone so its delta window stays exact.
        // Flush the deferred packets gathered so far first — their bulk
        // counter adds must land outside the window.
        flush_soa_walk(packets, indices);
        snapshot_walk_counters();
        asic::WalkSummary walked;
        walker_->run(packets[indices[i]], entry_pipe_of(b.hash[i]),
                     b.walk_ctx, walked, /*record_pass_hist=*/false);
        b.walk[i] =
            summarize_walk(b.walk_ctx, walked, /*capture_deltas=*/true);
        flow_cache_.insert(b.key[i], b.gen[i], b.walk[i]);
      } else {
        b.pend.push_back(static_cast<std::uint32_t>(i));
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      b.pend.push_back(static_cast<std::uint32_t>(i));
    }
  }
  flush_soa_walk(packets, indices);

  // Phase 3: emit verdicts in packet order. Histogram records and the
  // stateful fallback meter live here, so their streams are sample-for-
  // sample what the scalar loop produces. Deferred walks suppressed their
  // in-walk "asic.passes" record; replayed hits record theirs in finish.
  for (std::size_t i = 0; i < n; ++i) {
    // The verdict slots are write-allocated on first touch and the index
    // stride defeats the hardware streamer — hint them in ahead.
    if (i + 4 < n) {
      char* slot = reinterpret_cast<char*>(&out[indices[i + 4]]);
      __builtin_prefetch(slot, 1);
      __builtin_prefetch(slot + 64, 1);
      __builtin_prefetch(slot + 128, 1);
    }
    if (b.replayed[i] == 0) {
      hist_passes_->record(static_cast<double>(b.walk[i].passes));
    }
    // In-place emission: finish_into writes every Verdict field, so the
    // slot needs no clearing and no ForwardResult temporary is copied.
    finish_into(out[indices[i]], packets[indices[i]], now, b.walk[i],
                b.replayed[i] != 0);
  }
}

void XgwH::flush_soa_walk(std::span<const net::OverlayPacket> packets,
                          std::span<const std::uint32_t> indices) {
  BatchScratch& b = batch_;
  const std::size_t m = b.pend.size();
  if (m == 0) return;
  const bool fold = config_.compression.fold;

  b.vni.resize(m);
  b.entry_pipe.resize(m);
  b.lb_pipe.resize(m);
  b.exit_pipe.resize(m);
  b.alive.assign(m, 1);
  b.drop_code.assign(m, 0);
  b.scope.assign(m, 0);
  b.fallback.assign(m, 0);
  b.has_nc.assign(m, 0);
  b.tunnel_ip.resize(m);
  b.nc_ip.resize(m);
  b.rkey.resize(m);
  b.rpart.resize(m);

  // Counter totals, added in bulk at the end (counters commute, so only
  // the totals must match the scalar walk's per-packet bumps).
  std::array<std::uint64_t, 4> ing{};
  std::array<std::uint64_t, 4> eg{};
  std::uint64_t n_drops = 0, n_route_hit = 0, n_route_miss = 0;
  std::uint64_t n_vm_hit = 0, n_vm_miss = 0, n_acl_deny = 0;

  // Ingress pass 0: parse + entry + ACL. Every packet charges its entry
  // pipe's ingress counter (the walker bumps it before any stage runs);
  // folded survivors then cross to their shard's loopback egress.
  b.work.clear();
  for (std::size_t k = 0; k < m; ++k) {
    const net::OverlayPacket& pkt = packets[indices[b.pend[k]]];
    b.vni[k] = pkt.vni;
    const unsigned entry = entry_pipe_of(b.hash[b.pend[k]]);
    b.entry_pipe[k] = entry;
    ++ing[entry];
    if (pkt.vni > net::kMaxVni) {
      b.alive[k] = 0;
      b.drop_code[k] =
          static_cast<std::uint8_t>(dataplane::DropReason::kInvalidVni);
      continue;
    }
    b.lb_pipe[k] = 1 + 2 * shard_of(pkt.vni);
    if (acl_.evaluate(pkt.vni, pkt.inner) == tables::AclVerdict::kDeny) {
      ++n_acl_deny;
      b.alive[k] = 0;
      b.drop_code[k] =
          static_cast<std::uint8_t>(dataplane::DropReason::kAclDeny);
      continue;
    }
    if (fold) ++eg[b.lb_pipe[k]];
    b.work.push_back(static_cast<std::uint32_t>(k));
  }

  // Route lookups, one software-pipelined sweep per peer hop: build the
  // pooled key and prepare (TCAM directory probe + SRAM bucket prefetch)
  // for the whole worklist, then resolve the whole worklist — each
  // bucket's DRAM fetch hides behind the other keys' directory probes.
  for (int hop = 0; hop < 4 && !b.work.empty(); ++hop) {
    // Group the worklist by pipeline shard so each shard's ALPM gets one
    // contiguous key span: the directory sweep then hashes + prefetches
    // the whole span depth-major (the per-packet serial probe chain was
    // the hot path's single largest stall).
    for (unsigned s = 0; s < 2; ++s) {
      b.shard_keys[s].clear();
      b.shard_pos[s].clear();
    }
    for (std::uint32_t k : b.work) {
      const net::OverlayPacket& pkt = packets[indices[b.pend[k]]];
      b.rkey[k] = tables::make_pooled_key(b.vni[k], pkt.inner.dst);
      const unsigned s = shard_of(b.vni[k]);
      b.shard_keys[s].push_back(b.rkey[k]);
      b.shard_pos[s].push_back(k);
    }
    for (unsigned s = 0; s < 2; ++s) {
      b.shard_part[s].resize(b.shard_keys[s].size());
      shards_[s].routes.lookup_prepare_batch(b.shard_keys[s],
                                             b.shard_part[s]);
      for (std::size_t j = 0; j < b.shard_pos[s].size(); ++j) {
        b.rpart[b.shard_pos[s][j]] = b.shard_part[s][j];
      }
    }
    b.next_work.clear();
    for (std::uint32_t k : b.work) {
      auto route = shards_[shard_of(b.vni[k])].routes.lookup_resolve(
          b.rkey[k], b.rpart[k]);
      if (!route) {
        ++n_route_miss;
        b.fallback[k] = 1;
        continue;
      }
      ++n_route_hit;
      switch (route->scope) {
        case tables::RouteScope::kLocal:
          b.scope[k] = static_cast<std::uint8_t>(route->scope);
          break;
        case tables::RouteScope::kPeer:
          b.vni[k] = route->next_hop_vni;
          b.next_work.push_back(k);
          break;
        case tables::RouteScope::kIdc:
        case tables::RouteScope::kCrossRegion:
          b.scope[k] = static_cast<std::uint8_t>(route->scope);
          b.tunnel_ip[k] = route->remote_endpoint.value();
          break;
        case tables::RouteScope::kInternet:
          b.fallback[k] = 1;
          break;
      }
    }
    std::swap(b.work, b.next_work);
  }
  // Hop budget exhausted with peers still pending: the scalar stage drops.
  for (std::uint32_t k : b.work) {
    b.alive[k] = 0;
    b.drop_code[k] =
        static_cast<std::uint8_t>(dataplane::DropReason::kPeerResolutionLoop);
  }

  // Pass 1 (folded): survivors loop back through the shard pipe's ingress
  // and pick their exit pipe; unfolded exits through the entry pipe.
  // Local-scope non-fallback packets queue for the VM-NC sweep.
  b.work.clear();
  for (std::size_t k = 0; k < m; ++k) {
    if (!b.alive[k]) continue;
    if (fold) ++ing[b.lb_pipe[k]];
    b.exit_pipe[k] = fold ? (b.lb_pipe[k] == 1 ? 0u : 2u) : b.entry_pipe[k];
    if (b.fallback[k] == 0 &&
        static_cast<tables::RouteScope>(b.scope[k]) ==
            tables::RouteScope::kLocal) {
      b.work.push_back(static_cast<std::uint32_t>(k));
    }
  }

  // VM-NC sweep: prefetch the mapping buckets a strip at a time, then
  // resolve the strip. Strips keep the prefetched lines L1-resident —
  // prefetching the whole burst up front left the early lines evicted by
  // the time the resolve loop reached them. The mapping lives in the
  // *resolved* VNI's shard, same as the scalar stage.
  constexpr std::size_t kVmStrip = 64;
  for (std::size_t s0 = 0; s0 < b.work.size(); s0 += kVmStrip) {
    const std::size_t s1 = std::min(s0 + kVmStrip, b.work.size());
    for (std::size_t j = s0; j < s1; ++j) {
      const std::uint32_t k = b.work[j];
      const net::OverlayPacket& pkt = packets[indices[b.pend[k]]];
      shards_[shard_of(b.vni[k])].mappings.prefetch(b.vni[k], pkt.inner.dst);
    }
    for (std::size_t j = s0; j < s1; ++j) {
      const std::uint32_t k = b.work[j];
      const net::OverlayPacket& pkt = packets[indices[b.pend[k]]];
      auto mapping =
          shards_[shard_of(b.vni[k])].mappings.lookup(b.vni[k], pkt.inner.dst);
      if (mapping) {
        ++n_vm_hit;
        b.has_nc[k] = 1;
        b.nc_ip[k] = mapping->nc_ip.value();
      } else {
        ++n_vm_miss;
        b.fallback[k] = 2;  // vm-stage fallback: bridged accounting differs
      }
    }
  }

  // Rewrite + summary fill. Passes and bridged bits are exact per-path
  // constants of the pipeline program — DESIGN.md §15 derives them, and
  // the batch-identity tests hold them to the walker's own accounting.
  const net::IpAddr outer_src{config_.device_ip};
  const net::IpAddr x86_hop{config_.x86_next_hop};
  for (std::size_t k = 0; k < m; ++k) {
    CachedWalk walk;  // delta_set stays kNoDeltaSet: nothing to replay
    if (!b.alive[k]) {
      // Pre-rewrite drops never touch the packet. A folded peer-loop drop
      // dies in the loopback egress: it crossed once (the 1-bit shard
      // field) and completed one pass; entry/ACL drops die in ingress.
      walk.dropped = true;
      walk.drop_code = b.drop_code[k];
      const bool peer_loop =
          b.drop_code[k] ==
          static_cast<std::uint8_t>(dataplane::DropReason::kPeerResolutionLoop);
      walk.passes = (fold && peer_loop) ? 1 : 0;
      walk.bridged_bits = (fold && peer_loop) ? 1 : 0;
      ++n_drops;
      b.walk[b.pend[k]] = walk;
      continue;
    }
    ++eg[b.exit_pipe[k]];  // the walker bumps it before the rewrite stage
    const auto scope = static_cast<tables::RouteScope>(b.scope[k]);
    const bool tunnel = b.fallback[k] == 0 &&
                        (scope == tables::RouteScope::kIdc ||
                         scope == tables::RouteScope::kCrossRegion);
    walk.passes = fold ? 2 : 1;
    walk.set_outer_src = true;
    walk.outer_src = outer_src;
    unsigned bridged = 0;
    if (b.fallback[k] == 1) {
      // Route stage steered to x86: fallback1+resolved24 crossed twice
      // (folded) or once with the shard bit (unfolded).
      bridged = fold ? 51u : 26u;
      walk.act = static_cast<std::uint8_t>(kActFallback);
      walk.outer_dst = x86_hop;
    } else if (tunnel) {
      // scope3+fallback1+resolved24+tunnel32, twice; +shard1 at entry.
      bridged = fold ? 121u : 61u;
      walk.act = static_cast<std::uint8_t>(kActTunnel);
      walk.outer_dst = net::IpAddr(net::Ipv4Addr(b.tunnel_ip[k]));
    } else if (b.fallback[k] == 2) {
      // VM miss re-raises fallback: scope3+fallback1+resolved24, twice.
      bridged = fold ? 57u : 29u;
      walk.act = static_cast<std::uint8_t>(kActFallback);
      walk.outer_dst = x86_hop;
    } else if (b.has_nc[k]) {
      // Local delivery: +nc32 on the final crossing.
      bridged = fold ? 89u : 61u;
      walk.act = static_cast<std::uint8_t>(kActForward);
      walk.outer_dst = net::IpAddr(net::Ipv4Addr(b.nc_ip[k]));
    } else {
      // Local route, no NC, no fallback: the rewrite stage drops. The
      // rewrite already wrote outer_src, so that mutation caches.
      walk.dropped = true;
      walk.drop_code =
          static_cast<std::uint8_t>(dataplane::DropReason::kNoNcResolved);
      walk.bridged_bits = fold ? 57u : 29u;
      ++n_drops;
      b.walk[b.pend[k]] = walk;
      continue;
    }
    walk.set_outer_dst = true;
    walk.egress_pipe = static_cast<std::uint8_t>(b.exit_pipe[k]);
    walk.bridged_bits = static_cast<std::uint16_t>(bridged);
    b.walk[b.pend[k]] = walk;
  }

  ctr_asic_packets_->add(m);
  for (unsigned pipe = 0; pipe < 4; ++pipe) {
    if (ing[pipe] != 0) ctr_asic_ingress_[pipe]->add(ing[pipe]);
    if (eg[pipe] != 0) ctr_asic_egress_[pipe]->add(eg[pipe]);
  }
  if (n_drops != 0) ctr_asic_drops_->add(n_drops);
  if (n_route_hit != 0) ctr_route_hit_->add(n_route_hit);
  if (n_route_miss != 0) ctr_route_miss_->add(n_route_miss);
  if (n_vm_hit != 0) ctr_vm_hit_->add(n_vm_hit);
  if (n_vm_miss != 0) ctr_vm_miss_->add(n_vm_miss);
  if (n_acl_deny != 0) ctr_acl_deny_->add(n_acl_deny);

  b.pend.clear();
}

asic::GatewayWorkload XgwH::live_workload() const {
  asic::GatewayWorkload w{};
  w.vxlan_routes_v4 = shards_[0].routes_v4 + shards_[1].routes_v4;
  w.vxlan_routes_v6 = shards_[0].routes_v6 + shards_[1].routes_v6;
  w.vm_maps_v4 = shards_[0].maps_v4 + shards_[1].maps_v4;
  w.vm_maps_v6 = shards_[0].maps_v6 + shards_[1].maps_v6;
  w.digest_conflicts = shards_[0].mappings.stats().conflict_entries +
                       shards_[1].mappings.stats().conflict_entries;
  // Physical TCAM rows, port-range expansion included.
  w.acl_rules = acl_.tcam_rows();
  return w;
}

asic::OccupancyReport XgwH::occupancy_report() const {
  asic::CompressionConfig compression = config_.compression;
  if (compression.alpm) {
    const auto s0 = shards_[0].routes.stats();
    const auto s1 = shards_[1].routes.stats();
    compression.measured_alpm = asic::AlpmDemand{
        s0.directory_slices + s1.directory_slices,
        s0.allocated_bucket_words + s1.allocated_bucket_words};
  }
  return asic::Placer(config_.chip).evaluate(live_workload(), compression);
}

double XgwH::max_throughput_bps() const {
  const unsigned active = config_.compression.fold ? 2 : 4;
  return config_.chip.throughput_bps(active);
}

double XgwH::max_packet_rate_pps() const {
  const unsigned active = config_.compression.fold ? 2 : 4;
  return config_.chip.packet_rate_pps(active);
}

}  // namespace sf::xgwh
