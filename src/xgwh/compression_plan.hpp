// Named compression steps — the x-axis of Fig. 17 — and helpers to build
// cumulative CompressionConfigs from step letters.

#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "asic/placer.hpp"

namespace sf::xgwh {

/// Builds a config enabling the given step letters (subset of "abcdef"):
///   a = pipeline folding            b = table splitting between pipelines
///   c = IPv4/IPv6 table pooling     d = compressing longer table entries
///   e = TCAM conservation (ALPM)    f = cross-path spill (multi-pipeline
///                                       overflow; requires a)
/// Throws std::invalid_argument on unknown letters, b-without-a or
/// f-without-a.
asic::CompressionConfig config_for_steps(std::string_view steps);

/// The cumulative step sequence of Fig. 17:
/// Initial, a, a+b, a+b+c+d, a+b+c+d+e.
std::vector<std::pair<std::string, asic::CompressionConfig>> fig17_steps();

/// One-line description of a step letter (for bench output).
std::string step_description(char step);

}  // namespace sf::xgwh
