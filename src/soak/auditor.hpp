// sf::soak — the between-intervals invariant auditor (DESIGN.md §17).
//
// The soak's correctness backstop: after every simulated interval the
// auditor sweeps the region for conservation and coherence violations that
// individual unit tests cannot see because they only emerge from hours of
// composed churn:
//
//   * SNAT port-block conservation — for every x86 node,
//     free ports + live sessions == pool capacity (allocated == recycled +
//     live; a leaked binding breaks this within one interval);
//   * flow-cache generation coherence — probe flows are pushed through
//     both forward() (cache-assisted) and forward_punted() (never cached);
//     a stale cache surviving a table-generation bump shows up as a
//     verdict divergence;
//   * interval-report sanity — rates non-negative, ratios inside [0, 1],
//     p999 >= p99;
//   * placement accounting parity — the live incremental placement (when
//     enabled) must stay feasible (the heavy per-replace parity gate runs
//     inside Placer::replace; this catches a layout that survived it
//     infeasibly);
//
// plus, in *strict* mode (valid only when no fault is active and the
// retry queue has drained):
//
//   * no leaked DR ledgers — disaster recovery quiescent, every device
//     healthy and in ECMP, no ports isolated, no cluster failed over;
//   * controller/device consistency — desired state fully installed
//     (check_consistency reports nothing missing);
//   * control plane drained — no deferred ops, channel up and undegraded.
//
// The auditor only reports; the SoakEngine decides whether a violation is
// fatal.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/region.hpp"
#include "workload/flowgen.hpp"

namespace sf::soak {

class InvariantAuditor {
 public:
  struct Config {
    /// East-west flows probed through forward()/forward_punted() per node.
    std::size_t probe_flows = 8;
  };

  /// `flows` must outlive the auditor; SNAT pool shape is read from the
  /// region's own config.
  InvariantAuditor(core::SailfishRegion& region,
                   std::span<const workload::Flow> flows, Config config);

  /// Runs the light sweep; with `strict` adds the quiescence checks.
  /// `last_interval` (optional) is bounds-checked. Returns violations
  /// found this sweep (also appended to all_violations()).
  std::vector<std::string> audit(
      double now, bool strict,
      const core::SailfishRegion::IntervalReport* last_interval = nullptr);

  std::uint64_t audits_run() const { return audits_run_; }
  std::uint64_t strict_audits_run() const { return strict_audits_run_; }
  const std::vector<std::string>& all_violations() const {
    return all_violations_;
  }

 private:
  void check_snat(std::vector<std::string>& out) const;
  void check_flow_cache_coherence(double now, std::vector<std::string>& out);
  void check_interval_bounds(
      const core::SailfishRegion::IntervalReport& interval,
      std::vector<std::string>& out) const;
  void check_placement(std::vector<std::string>& out) const;
  void check_quiescent(std::vector<std::string>& out) const;

  core::SailfishRegion& region_;
  std::span<const workload::Flow> flows_;
  Config config_;
  /// Pre-selected east-west probe flows (indices into flows_).
  std::vector<std::size_t> probes_;
  std::uint64_t audits_run_ = 0;
  std::uint64_t strict_audits_run_ = 0;
  std::vector<std::string> all_violations_;
};

}  // namespace sf::soak
