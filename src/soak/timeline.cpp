#include "soak/timeline.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "guard/guard.hpp"
#include "workload/rng.hpp"
#include "workload/topology.hpp"

namespace sf::soak {
namespace {

std::string format(const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  return buffer;
}

std::uint64_t slot_key(std::size_t cluster, std::size_t device) {
  return (static_cast<std::uint64_t>(cluster) << 32) | device;
}

/// A synthetic tenant for churn waves: one subnet route and two VM
/// mappings out of 10.128/9 — disjoint from generated topologies and from
/// the injector's 10.0/9 storm block, so the two harnesses can share a
/// region without colliding.
workload::VpcRecord churn_vpc(net::Vni vni, unsigned ordinal) {
  workload::VpcRecord vpc;
  vpc.vni = vni;
  const std::uint32_t base =
      0x0a800000u | ((static_cast<std::uint32_t>(ordinal) & 0xffffu) << 8);
  workload::RouteRecord route;
  route.prefix = net::Ipv4Prefix(net::Ipv4Addr(base), 24);
  route.action =
      tables::VxlanRouteAction{tables::RouteScope::kLocal, 0, net::Ipv4Addr()};
  vpc.routes.push_back(route);
  for (std::uint32_t vm_index = 0; vm_index < 2; ++vm_index) {
    workload::VmRecord vm;
    vm.ip = net::IpAddr(net::Ipv4Addr(base + 1 + vm_index));
    vm.nc_ip = net::Ipv4Addr(0xac200000u + ordinal);
    vpc.vms.push_back(vm);
  }
  return vpc;
}

}  // namespace

/// Observes recovery-initiated device transitions (escalation, cold
/// standby) and forwards them to the monitor — same chain the injector
/// builds.
struct ChaosTimeline::Tap : cluster::RecoveryListener {
  cluster::RecoveryListener* next = nullptr;
  ChaosTimeline* owner = nullptr;

  void on_device_marked_failed(std::size_t cluster, std::size_t device,
                               double now) override {
    if (next != nullptr) next->on_device_marked_failed(cluster, device, now);
  }
  void on_device_marked_recovered(std::size_t cluster, std::size_t device,
                                  double now) override {
    // The slot serves again (recovery debounce or a cold standby). If the
    // schedule still holds this device down, truncate the window — the
    // replacement is fresh hardware whose heartbeats arrive clean.
    auto it = owner->windows_.find(slot_key(cluster, device));
    if (it != owner->windows_.end()) {
      for (DownWindow& w : it->second) w.end = std::min(w.end, now);
    }
    if (next != nullptr) {
      next->on_device_marked_recovered(cluster, device, now);
    }
  }
};

ChaosTimeline::ChaosTimeline(core::SailfishRegion& region, Config config)
    : region_(region),
      config_(std::move(config)),
      monitor_(&region.disaster_recovery(), config_.health) {
  tap_ = std::make_unique<Tap>();
  tap_->next = &monitor_;
  tap_->owner = this;
  region_.disaster_recovery().set_listener(tap_.get());
  draw_schedule();
}

ChaosTimeline::~ChaosTimeline() {
  region_.disaster_recovery().set_listener(nullptr);
}

void ChaosTimeline::draw_schedule() {
  workload::Rng rng(config_.seed ^ 0x50a11f00d5eedULL);
  const double interval = config_.interval_s;
  const std::size_t intervals =
      static_cast<std::size_t>(config_.horizon_s / interval);
  const std::size_t events = static_cast<std::size_t>(
      config_.events_per_day * config_.horizon_s / 86400.0);

  const std::size_t clusters = region_.controller().cluster_count();
  const std::size_t devices =
      clusters > 0 ? region_.controller().cluster(0).device_count() : 0;
  const unsigned ports = region_.config().recovery.ports_per_device;
  const bool dpu = config_.dpu_faults && region_.dpu_node_count() > 0;

  // Faces in a fixed order; disabled faces fall through to device crash.
  for (std::size_t i = 0; i < events; ++i) {
    chaos::ChaosEvent event;
    // Leave the first few and last ~2% of intervals fault-free so the
    // run starts converged (warmup drains the install backlog) and has
    // room to settle before the final audit.
    const std::size_t lo = std::max<std::size_t>(3, intervals / 50);
    const std::size_t hi = intervals > 2 * lo ? intervals - lo : intervals;
    event.time =
        interval * static_cast<double>(lo + rng.uniform(hi - lo));
    event.cluster = rng.uniform(std::max<std::size_t>(1, clusters));
    event.device = rng.uniform(std::max<std::size_t>(1, devices));
    event.port = static_cast<unsigned>(rng.uniform(std::max(1u, ports)));

    switch (rng.uniform(8)) {
      case 0:
      default:
        event.kind = chaos::FaultKind::kDeviceCrash;
        event.duration = interval * (2.0 + static_cast<double>(
                                               rng.uniform(3)));
        break;
      case 1:
        if (!config_.port_faults) {
          event.kind = chaos::FaultKind::kDeviceCrash;
          event.duration = interval * 2.0;
          break;
        }
        event.kind = chaos::FaultKind::kPortErrorBurst;
        event.count = 3 + static_cast<unsigned>(rng.uniform(3));
        event.error_rate = 1e-4;
        break;
      case 2:
        if (!config_.port_faults) {
          event.kind = chaos::FaultKind::kDeviceCrash;
          event.duration = interval * 2.0;
          break;
        }
        event.kind = chaos::FaultKind::kLinkLoss;
        event.count = 2 + static_cast<unsigned>(
                              rng.uniform(std::max(1u, ports / 2)));
        event.error_rate = 1e-3;
        break;
      case 3:
        if (!config_.channel_outages) {
          event.kind = chaos::FaultKind::kDeviceCrash;
          event.duration = interval * 2.0;
          break;
        }
        event.kind = chaos::FaultKind::kChannelOutage;
        event.duration = interval * (1.0 + static_cast<double>(
                                               rng.uniform(2)));
        break;
      case 4:
        if (!config_.controller_brownouts) {
          event.kind = chaos::FaultKind::kDeviceCrash;
          event.duration = interval * 2.0;
          break;
        }
        event.kind = chaos::FaultKind::kControllerBrownout;
        event.duration = interval * (1.0 + static_cast<double>(
                                               rng.uniform(3)));
        event.count = 4 + static_cast<unsigned>(rng.uniform(8));
        break;
      case 5:
        if (!config_.tenant_storms || config_.tenant_vnis.empty()) {
          event.kind = chaos::FaultKind::kDeviceCrash;
          event.duration = interval * 2.0;
          break;
        }
        event.kind = chaos::FaultKind::kTenantStorm;
        // device doubles as the tenant index; error_rate as the
        // multiplier (same overloading the injector uses).
        event.device = rng.uniform(config_.tenant_vnis.size());
        event.duration = interval * (3.0 + static_cast<double>(
                                               rng.uniform(5)));
        event.error_rate =
            config_.storm_multiplier_min +
            (config_.storm_multiplier_max - config_.storm_multiplier_min) *
                rng.uniform_real();
        break;
      case 6:
        if (!config_.churn_storms) {
          event.kind = chaos::FaultKind::kDeviceCrash;
          event.duration = interval * 2.0;
          break;
        }
        event.kind = chaos::FaultKind::kChurnStorm;
        event.count = 6 + static_cast<unsigned>(rng.uniform(18));
        break;
      case 7:
        if (!dpu) {
          event.kind = chaos::FaultKind::kDeviceCrash;
          event.duration = interval * 2.0;
          break;
        }
        event.kind = chaos::FaultKind::kDpuFailure;
        event.device = rng.uniform(region_.dpu_node_count());
        event.duration = interval * (2.0 + static_cast<double>(
                                               rng.uniform(3)));
        break;
    }
    schedule_.add(event);
  }
}

void ChaosTimeline::retarget_wave(unsigned count) {
  if (config_.migratable_vms.empty()) return;
  const unsigned wave = vm_wave_next_++;
  for (unsigned v = 0; v < count; ++v) {
    const tables::VmNcKey& key =
        config_.migratable_vms[vm_cursor_++ % config_.migratable_vms.size()];
    dataplane::TableOp op;
    op.kind = dataplane::TableOp::Kind::kAddMapping;
    op.vni = key.vni;
    op.mapping_key = key;
    op.mapping_action = tables::VmNcAction{net::Ipv4Addr(
        172, static_cast<std::uint8_t>(24 + wave % 8),
        static_cast<std::uint8_t>(v),
        static_cast<std::uint8_t>(1 + vm_cursor_ % 250))};
    region_.controller().push_op(op);
  }
}

bool ChaosTimeline::slot_down(std::uint64_t key, double now) const {
  auto it = windows_.find(key);
  if (it == windows_.end()) return false;
  for (const DownWindow& w : it->second) {
    if (w.start <= now + 1e-6 && now < w.end - 1e-6) return true;
  }
  return false;
}

void ChaosTimeline::fire_event(const chaos::ChaosEvent& event, double now) {
  cluster::Controller& controller = region_.controller();
  switch (event.kind) {
    case chaos::FaultKind::kDeviceCrash: {
      windows_[slot_key(event.cluster, event.device)].push_back(
          DownWindow{event.time, event.time + event.duration});
      break;
    }
    case chaos::FaultKind::kPortErrorBurst:
    case chaos::FaultKind::kLinkLoss: {
      const unsigned burst = event.kind == chaos::FaultKind::kPortErrorBurst
                                 ? event.count
                                 : config_.health.isolate_port_after + 1;
      const unsigned first =
          event.kind == chaos::FaultKind::kPortErrorBurst ? event.port : 0;
      const unsigned span =
          event.kind == chaos::FaultKind::kPortErrorBurst ? 1 : event.count;
      for (unsigned p = first; p < first + span; ++p) {
        const std::uint64_t key =
            (slot_key(event.cluster, event.device) << 12) | p;
        PortTrack& track = tracks_[key];
        track.cluster = event.cluster;
        track.device = event.device;
        track.port = p;
        track.bad_remaining += burst;
        track.error_rate = event.error_rate;
      }
      break;
    }
    case chaos::FaultKind::kChannelOutage: {
      if (!channel_down_) {
        controller.set_update_channel_up(false);
        channel_down_ = true;
      }
      channel_down_until_ =
          std::max(channel_down_until_, event.time + event.duration);
      break;
    }
    case chaos::FaultKind::kControllerBrownout: {
      if (!browned_out_) {
        controller.set_update_channel_degraded(true);
        browned_out_ = true;
      }
      brownout_until_ =
          std::max(brownout_until_, event.time + event.duration);
      // Provisioning keeps arriving into the brownout. The wave must be
      // hardware-tier work — software-tier onboarding never consumes the
      // update channel — so it re-targets live hardware mappings; every
      // attempt is refused, feeding the breaker trip / short-circuit path.
      retarget_wave(std::max(4u, event.count));
      break;
    }
    case chaos::FaultKind::kTenantStorm: {
      const net::Vni vni =
          config_.tenant_vnis[event.device % config_.tenant_vnis.size()];
      storms_.push_back(Storm{vni, event.error_rate, event.time,
                              event.time + event.duration});
      break;
    }
    case chaos::FaultKind::kChurnStorm: {
      // Onboarding wave: fresh tenants pushed through the rate-limited
      // channel (overflow-admitted once hardware is at its water levels;
      // the ops still mirror to x86 and exercise the retry queue).
      for (unsigned v = 0; v < event.count; ++v) {
        const unsigned ordinal = churn_ordinal_next_++;
        controller.add_vpc(
            churn_vpc(config_.churn_vni_base + ordinal, ordinal));
      }
      // VM-migration wave on *live* tenants: each re-target is a
      // hardware-table update that rides the RCU publish path, bumps
      // generations on the x86 mirrors, and feeds the placement engine.
      retarget_wave(event.count);
      break;
    }
    case chaos::FaultKind::kDpuFailure: {
      if (region_.dpu_node_count() == 0) break;
      const std::size_t node = event.device % region_.dpu_node_count();
      region_.set_dpu_failed(node, true);
      dpu_dark_.push_back(
          DpuDark{node, event.time + event.duration, false});
      break;
    }
    case chaos::FaultKind::kDeviceFlap:
    case chaos::FaultKind::kUpdateStorm:
    case chaos::FaultKind::kMidUpgradeFailure:
      // Never drawn by draw_schedule(); the injector owns these.
      break;
  }
}

ChaosTimeline::StepResult ChaosTimeline::step(double now) {
  cluster::Controller& controller = region_.controller();
  StepResult result;

  // 1. Fire events due at this boundary.
  const auto& events = schedule_.events();
  while (next_event_ < events.size() &&
         events[next_event_].time <= now + 1e-6) {
    fire_event(events[next_event_], now);
    ++next_event_;
    ++result.events_fired;
  }

  // 1b. Provisioning keeps arriving through a brownout: a trickle of
  // hardware-tier re-targets every boundary. Once the breaker has
  // tripped, these are short-circuited straight onto the retry queue
  // without burning a channel attempt.
  if (browned_out_) retarget_wave(2);

  // 2. Heartbeats, fixed cluster-major order.
  for (std::size_t c = 0; c < controller.cluster_count(); ++c) {
    const std::size_t devices = controller.cluster(c).device_count();
    for (std::size_t d = 0; d < devices; ++d) {
      monitor_.report_heartbeat(c, d, !slot_down(slot_key(c, d), now), now);
    }
  }

  // 3. Port error reports, sorted key order. Clean reports continue until
  // the monitor has let the port back in, then the track retires.
  for (auto it = tracks_.begin(); it != tracks_.end();) {
    PortTrack& track = it->second;
    if (track.bad_remaining > 0) {
      --track.bad_remaining;
      monitor_.report_port_errors(track.cluster, track.device, track.port,
                                  track.error_rate, now);
      ++it;
      continue;
    }
    monitor_.report_port_errors(track.cluster, track.device, track.port, 0.0,
                                now);
    if (!monitor_.port_considered_isolated(track.cluster, track.device,
                                           track.port)) {
      it = tracks_.erase(it);
    } else {
      ++it;
    }
  }

  // 4. Level-triggered restores.
  if (channel_down_ && now + 1e-6 >= channel_down_until_) {
    controller.set_update_channel_up(true);
    channel_down_ = false;
  }
  if (browned_out_ && now + 1e-6 >= brownout_until_) {
    controller.set_update_channel_degraded(false);
    browned_out_ = false;
  }
  for (DpuDark& dark : dpu_dark_) {
    if (!dark.restored && now + 1e-6 >= dark.end) {
      region_.set_dpu_failed(dark.node, false);
      dark.restored = true;
    }
  }

  // 5. Drain the control plane.
  controller.advance_clock(now);

  // 6. Report what is active.
  for (const Storm& storm : storms_) {
    if (storm.start <= now + 1e-6 && now < storm.end - 1e-6) {
      result.active_storms.push_back(StormSpec{storm.vni, storm.multiplier});
    }
  }
  std::sort(result.active_storms.begin(), result.active_storms.end(),
            [](const StormSpec& a, const StormSpec& b) {
              return a.vni < b.vni;
            });

  bool device_active = !tracks_.empty();
  for (const auto& [key, slot_windows] : windows_) {
    for (const DownWindow& w : slot_windows) {
      device_active = device_active || now < w.end - 1e-6;
    }
  }
  for (const DpuDark& dark : dpu_dark_) {
    device_active = device_active || !dark.restored;
  }
  // Recovery hysteresis still unwinding counts as active too.
  for (std::size_t c = 0; c < controller.cluster_count(); ++c) {
    const cluster::XgwHCluster& cl = controller.cluster(c);
    for (std::size_t d = 0; d < cl.device_count(); ++d) {
      device_active = device_active ||
                      cl.device_health(d) != cluster::DeviceHealth::kHealthy ||
                      monitor_.device_considered_failed(c, d);
    }
  }
  result.device_faults_active = device_active;
  result.deferred_ops = controller.deferred_op_count();
  result.control_faults_active = channel_down_ || browned_out_ ||
                                 result.deferred_ops != 0;
  return result;
}

std::vector<std::string> ChaosTimeline::final_audit(double now) {
  cluster::Controller& controller = region_.controller();
  std::vector<std::string> leaks;
  if (next_event_ != schedule_.size()) {
    leaks.push_back(format("%zu scheduled events never fired",
                           schedule_.size() - next_event_));
  }
  if (channel_down_) leaks.push_back("update channel left down");
  if (browned_out_) leaks.push_back("update channel left degraded");
  if (controller.deferred_op_count() != 0) {
    leaks.push_back(format("%zu table ops still deferred",
                           controller.deferred_op_count()));
  }
  if (const guard::CircuitBreaker* breaker = controller.breaker()) {
    if (breaker->state(now) != guard::CircuitBreaker::State::kClosed) {
      leaks.push_back("update-channel breaker left open");
    }
  }
  for (std::size_t c = 0; c < controller.cluster_count(); ++c) {
    const cluster::XgwHCluster& cl = controller.cluster(c);
    if (cl.failed_over()) {
      leaks.push_back(format("cluster %zu still failed over", c));
    }
    for (std::size_t d = 0; d < cl.device_count(); ++d) {
      if (cl.device_health(d) != cluster::DeviceHealth::kHealthy) {
        leaks.push_back(
            format("cluster %zu device %zu still out of ECMP", c, d));
      }
      if (monitor_.device_considered_failed(c, d)) {
        leaks.push_back(
            format("cluster %zu device %zu still failed in monitor", c, d));
      }
    }
  }
  if (!region_.disaster_recovery().quiescent()) {
    leaks.push_back("disaster recovery holds stale isolated-port state");
  }
  for (std::size_t n = 0; n < region_.dpu_node_count(); ++n) {
    if (region_.dpu_node(n).failed()) {
      leaks.push_back(format("dpu node %zu left failed", n));
    }
  }
  if (const guard::TenantGuard* guard = region_.tenant_guard()) {
    for (const Storm& storm : storms_) {
      if (guard->tier_of(storm.vni) != guard::Tier::kFull) {
        leaks.push_back(format("storm tenant %u still degraded",
                               static_cast<unsigned>(storm.vni)));
      }
    }
  }
  return leaks;
}

std::map<std::string, std::size_t> ChaosTimeline::event_counts() const {
  std::map<std::string, std::size_t> counts;
  for (const chaos::ChaosEvent& event : schedule_.events()) {
    ++counts[chaos::to_string(event.kind)];
  }
  return counts;
}

}  // namespace sf::soak
