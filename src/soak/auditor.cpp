#include "soak/auditor.hpp"

#include <cstdarg>
#include <cstdio>

namespace sf::soak {
namespace {

std::string format(const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  return buffer;
}

}  // namespace

InvariantAuditor::InvariantAuditor(core::SailfishRegion& region,
                                   std::span<const workload::Flow> flows,
                                   Config config)
    : region_(region), flows_(flows), config_(config) {
  // East-west flows only: SNAT flows would allocate bindings on every
  // probe, perturbing the very conservation the auditor checks.
  for (std::size_t i = 0;
       i < flows_.size() && probes_.size() < config_.probe_flows; ++i) {
    if (flows_[i].scope != tables::RouteScope::kInternet) probes_.push_back(i);
  }
}

std::vector<std::string> InvariantAuditor::audit(
    double now, bool strict,
    const core::SailfishRegion::IntervalReport* last_interval) {
  ++audits_run_;
  std::vector<std::string> out;
  check_snat(out);
  check_flow_cache_coherence(now, out);
  if (last_interval != nullptr) check_interval_bounds(*last_interval, out);
  check_placement(out);
  if (strict) {
    ++strict_audits_run_;
    check_quiescent(out);
  }
  all_violations_.insert(all_violations_.end(), out.begin(), out.end());
  return out;
}

void InvariantAuditor::check_snat(std::vector<std::string>& out) const {
  const auto& public_ips = region_.config().x86_template.snat.public_ips;
  for (std::size_t n = 0; n < region_.x86_node_count(); ++n) {
    const x86::SnatEngine& snat = region_.x86_node(n).snat();
    std::size_t free_total = 0;
    for (const net::Ipv4Addr& ip : public_ips) {
      free_total += snat.free_ports(ip);
    }
    const std::size_t live = snat.stats().active_sessions;
    if (free_total + live != snat.capacity()) {
      out.push_back(format(
          "x86 node %zu snat conservation broken: %zu free + %zu live != "
          "%zu capacity",
          n, free_total, live, snat.capacity()));
    }
  }
}

void InvariantAuditor::check_flow_cache_coherence(
    double now, std::vector<std::string>& out) {
  // forward() may serve from the node's flow cache; forward_punted() never
  // touches it. After any amount of table churn the two must agree on
  // every probe — a divergence means a stale cached verdict survived a
  // generation bump.
  for (std::size_t n = 0; n < region_.x86_node_count(); ++n) {
    x86::XgwX86& node = region_.x86_node(n);
    for (std::size_t p : probes_) {
      const workload::Flow& flow = flows_[p];
      net::OverlayPacket pkt;
      pkt.vni = flow.vni;
      pkt.inner = flow.tuple;
      pkt.payload_size = 96;
      const x86::X86Result cached = node.forward(pkt, now);
      const x86::X86Result walked = node.forward_punted(pkt, now);
      if (cached.action != walked.action ||
          cached.drop_reason != walked.drop_reason) {
        out.push_back(format(
            "x86 node %zu flow-cache incoherent for vni %u: cached %s vs "
            "walked %s",
            n, static_cast<unsigned>(flow.vni),
            dataplane::name(cached.action), dataplane::name(walked.action)));
      }
    }
  }
}

void InvariantAuditor::check_interval_bounds(
    const core::SailfishRegion::IntervalReport& interval,
    std::vector<std::string>& out) const {
  constexpr double kEps = 1e-9;
  if (interval.offered_pps < 0 || interval.offered_bps < 0) {
    out.push_back("interval offered rate negative");
  }
  if (interval.dropped_pps < -kEps ||
      interval.dropped_pps > interval.offered_pps * (1.0 + 1e-6) + kEps) {
    out.push_back(format("interval drops out of range: %.3e of %.3e pps",
                         interval.dropped_pps, interval.offered_pps));
  }
  if (interval.drop_rate < -kEps || interval.drop_rate > 1.0 + 1e-6) {
    out.push_back(format("interval drop rate out of [0,1]: %.9e",
                         interval.drop_rate));
  }
  if (interval.punt_queue_occupancy < -kEps ||
      interval.punt_queue_occupancy > 1.0 + 1e-6) {
    out.push_back(format("punt occupancy out of [0,1]: %.6f",
                         interval.punt_queue_occupancy));
  }
  if (interval.p999_latency_us + kEps < interval.p99_latency_us) {
    out.push_back(format("p999 %.3f below p99 %.3f",
                         interval.p999_latency_us, interval.p99_latency_us));
  }
  if (interval.guard_shed_pps < -kEps ||
      interval.guard_shed_pps > interval.dropped_pps + kEps) {
    out.push_back(format("guard sheds %.3e exceed interval drops %.3e",
                         interval.guard_shed_pps, interval.dropped_pps));
  }
}

void InvariantAuditor::check_placement(std::vector<std::string>& out) const {
  const asic::PlacementEngine* engine =
      region_.controller().placement_engine();
  if (engine == nullptr) return;
  if (!engine->placement().feasible()) {
    out.push_back("incremental placement left infeasible");
  }
}

void InvariantAuditor::check_quiescent(std::vector<std::string>& out) const {
  const cluster::Controller& controller = region_.controller();
  if (controller.deferred_op_count() != 0) {
    out.push_back(format("%zu table ops still deferred at quiescence",
                         controller.deferred_op_count()));
    // Consistency below would report every parked op as missing; the
    // deferral itself is already the violation.
    return;
  }
  if (!controller.update_channel_up()) {
    out.push_back("update channel down at quiescence");
  }
  if (controller.update_channel_degraded()) {
    out.push_back("update channel degraded at quiescence");
  }
  const cluster::DisasterRecovery& recovery = region_.disaster_recovery();
  if (!recovery.quiescent()) {
    out.push_back("disaster recovery holds stale isolated-port state");
  }
  for (std::size_t c = 0; c < controller.cluster_count(); ++c) {
    const cluster::XgwHCluster& cl = controller.cluster(c);
    if (cl.failed_over()) {
      out.push_back(format("cluster %zu still failed over", c));
    }
    for (std::size_t d = 0; d < cl.device_count(); ++d) {
      if (cl.device_health(d) != cluster::DeviceHealth::kHealthy) {
        out.push_back(
            format("cluster %zu device %zu still out of ECMP", c, d));
      }
    }
    const cluster::Controller::ConsistencyReport audit =
        controller.check_consistency(c);
    if (audit.missing_on_device != 0) {
      out.push_back(format("cluster %zu missing %zu entries on device", c,
                           audit.missing_on_device));
    }
  }
  for (std::size_t n = 0; n < region_.dpu_node_count(); ++n) {
    if (region_.dpu_node(n).failed()) {
      out.push_back(format("dpu node %zu left failed", n));
    }
  }
}

}  // namespace sf::soak
