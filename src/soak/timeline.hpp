// sf::soak — the week-long composed chaos timeline (DESIGN.md §17).
//
// The ChaosInjector replays second-scale schedules with a 0.5 s probe
// tick; a simulated week at that cadence would be ~1.2M ticks. The soak
// instead advances in interval-sized steps (default 600 s) and needs
// faults whose lifecycles are visible at that granularity, so the
// timeline draws its own seeded schedule — reusing ChaosEvent/FaultKind
// and the schedule container — with durations measured in whole
// intervals, and drives the same health/recovery machinery the injector
// does: heartbeats in fixed cluster-major order, port error reports in
// sorted key order, level-triggered restore of channel outages, controller
// brownouts and DPU nodes, and cold-standby replacement observed through
// a RecoveryListener tap.
//
// Fault kinds composed here: device crashes, port error bursts, link
// loss, channel outages, controller brownouts (breaker open/half-open/
// close), tenant storms (weight multipliers on *existing* metered
// tenants), churn storms (onboarding + migration waves through the RCU
// publish path), and DPU node loss. Upgrade failures and second-scale
// flaps stay with the injector — their lifecycles are invisible between
// 600 s boundaries.
//
// Determinism: a pure function of (region construction inputs, config).
// Every container iterated is ordered, every random draw comes from one
// seeded Rng consumed in schedule order.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/schedule.hpp"
#include "cluster/health.hpp"
#include "core/region.hpp"

namespace sf::soak {

/// A tenant whose offered traffic is inflated this interval.
struct StormSpec {
  net::Vni vni = 0;
  /// Weight multiplier applied to the tenant's flows.
  double multiplier = 1.0;
};

class ChaosTimeline {
 public:
  struct Config {
    std::uint64_t seed = 1;
    double interval_s = 600.0;
    double horizon_s = 7.0 * 86400.0;
    /// Mean scheduled faults per simulated day.
    double events_per_day = 8.0;
    /// Fault faces drawn (each adds variety; all deterministic).
    bool device_faults = true;
    bool port_faults = true;
    bool channel_outages = true;
    bool controller_brownouts = true;
    bool tenant_storms = true;
    bool churn_storms = true;
    /// DPU faults are drawn only when the region has a DPU tier.
    bool dpu_faults = true;
    /// Storm shape: the tenant's flow weights are multiplied by a draw
    /// from [multiplier_min, multiplier_max].
    double storm_multiplier_min = 20.0;
    double storm_multiplier_max = 50.0;
    /// Tenants eligible for storms (the region's real topology VNIs).
    std::vector<net::Vni> tenant_vnis;
    /// Base VNI for churn-onboarded synthetic tenants.
    net::Vni churn_vni_base = 0xB0A000;
    /// Live VM mappings churn storms re-target (VM migration waves
    /// through the rate-limited update channel — whole-VPC migration is
    /// refused once every cluster sits at its water level, so mapping
    /// re-targets are the churn that always lands on hardware tables).
    std::vector<tables::VmNcKey> migratable_vms;
    /// Health thresholds at interval granularity: a crash spanning
    /// `fail_after_missed` boundaries is detected.
    cluster::HealthMonitor::Config health{
        /*fail_after_missed=*/2, /*recover_after_ok=*/1,
        /*port_error_rate_threshold=*/1e-6,
        /*isolate_port_after=*/2, /*recover_port_after_ok=*/2};
  };

  struct StepResult {
    /// Ascending-VNI storms active this interval.
    std::vector<StormSpec> active_storms;
    /// Any device/port/DPU fault currently injected (heartbeats missed or
    /// error reports outstanding) — strict audits must wait.
    bool device_faults_active = false;
    /// Channel down/degraded, or deferred ops still parked.
    bool control_faults_active = false;
    std::size_t events_fired = 0;
    std::size_t deferred_ops = 0;
  };

  ChaosTimeline(core::SailfishRegion& region, Config config);
  ~ChaosTimeline();

  ChaosTimeline(const ChaosTimeline&) = delete;
  ChaosTimeline& operator=(const ChaosTimeline&) = delete;

  /// Advances the timeline to the interval boundary at `now` (call with
  /// strictly increasing boundaries): fires due events, delivers probes,
  /// restores expired faults, drains the controller clock.
  StepResult step(double now);

  /// Strict end-of-run leak audit (call after the horizon plus enough
  /// settle intervals for hysteresis to unwind). Returns violations.
  std::vector<std::string> final_audit(double now);

  const chaos::ChaosSchedule& schedule() const { return schedule_; }
  std::size_t events_fired() const { return next_event_; }
  /// Per-kind counts over the whole drawn schedule.
  std::map<std::string, std::size_t> event_counts() const;

 private:
  struct DownWindow {
    double start = 0;
    double end = 0;
  };
  struct PortTrack {
    std::size_t cluster = 0;
    std::size_t device = 0;
    unsigned port = 0;
    unsigned bad_remaining = 0;
    double error_rate = 0;
  };
  struct Storm {
    net::Vni vni = 0;
    double multiplier = 1.0;
    double start = 0;
    double end = 0;
  };
  struct DpuDark {
    std::size_t node = 0;
    double end = 0;
    bool restored = false;
  };
  struct Tap;

  void draw_schedule();
  void fire_event(const chaos::ChaosEvent& event, double now);
  /// A wave of VM-mapping re-targets over migratable_vms — hardware-tier
  /// updates that consume the (possibly refused) update channel.
  void retarget_wave(unsigned count);
  bool slot_down(std::uint64_t key, double now) const;

  core::SailfishRegion& region_;
  Config config_;
  chaos::ChaosSchedule schedule_;
  cluster::HealthMonitor monitor_;
  std::unique_ptr<Tap> tap_;
  std::size_t next_event_ = 0;
  std::map<std::uint64_t, std::vector<DownWindow>> windows_;
  std::map<std::uint64_t, PortTrack> tracks_;
  std::vector<Storm> storms_;
  std::vector<DpuDark> dpu_dark_;
  double channel_down_until_ = -1;
  bool channel_down_ = false;
  double brownout_until_ = -1;
  bool browned_out_ = false;
  unsigned churn_ordinal_next_ = 0;
  /// VM-migration waves: next mapping to re-target and the wave ordinal
  /// (each wave lands the VM on a fresh synthetic NC).
  unsigned vm_cursor_ = 0;
  unsigned vm_wave_next_ = 0;
};

}  // namespace sf::soak
