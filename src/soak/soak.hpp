// sf::soak — the week-long multi-region soak engine (DESIGN.md §17).
//
// A deterministic, seeded scenario: 2–3 SailfishRegions sharing one
// tenant universe (same topology seed; each tenant is "homed" in one
// region and offers a smaller cross-region share everywhere else) stepped
// through a time-compressed simulated week in interval-sized strides.
// Every stride composes:
//
//   * traffic — the region's diurnal + festival envelope
//     (workload::TrafficPattern) times a per-tenant diurnal phase drawn
//     from mix64(vni), times any active storm multiplier;
//   * chaos — the region's ChaosTimeline (device/port faults, channel
//     outages, controller brownouts through the circuit breaker, tenant
//     storms, churn storms over the RCU/placement path, DPU node loss);
//   * SNAT — a deterministic session stream against a deliberately
//     narrow per-IP port-block pool, so blocks exhaust and recycle under
//     pressure while cumulative sessions reach the millions;
//   * accounting — the SloLedger folds the IntervalReport into
//     per-tenant drop-budget ledgers and week-level latency percentiles;
//   * auditing — the InvariantAuditor sweeps conservation and coherence
//     invariants between intervals (strict quiescence checks whenever the
//     timeline reports no fault in flight).
//
// Determinism: the whole run is a pure function of Config. The interval
// simulator is byte-identical at any thread count by construction, and
// everything else here is single-threaded — so two runs with the same
// seed at 1 and 8 interval threads must render byte-identical reports
// (bench_soak enforces exactly that).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "guard/circuit_breaker.hpp"
#include "soak/auditor.hpp"
#include "soak/slo.hpp"
#include "soak/timeline.hpp"

namespace sf::soak {

class SoakEngine {
 public:
  struct Config {
    std::uint64_t seed = 1;
    std::size_t regions = 2;
    /// Simulated span (168 h = the full week; CI smoke runs ~6 h).
    double sim_hours = 168.0;
    double interval_s = 600.0;
    /// Interval-engine worker threads (results are identical at any
    /// value — the byte-identity canary runs 1 vs 8).
    std::size_t interval_threads = 1;
    /// Mean per-region offered rate. Sized so the x86 fleet can absorb
    /// the overflow tail when a DPU node goes dark (see DESIGN.md §17).
    double base_gbps = 250.0;
    /// Weekly dropped/offered budget per non-storm tenant.
    double drop_budget = 2e-3;
    /// Share of a tenant's traffic offered outside its home region.
    double cross_region_fraction = 0.2;
    double chaos_events_per_day = 8.0;
    /// SNAT sessions initiated per x86 node per interval at mean load
    /// (scaled by the traffic envelope each interval). Sized so the live
    /// population crosses the deliberately narrow pool capacity at the
    /// festival peak — exhaustion and FIFO block recycling must both
    /// actually happen during the week.
    std::size_t snat_sessions_per_interval = 2500;
    /// Unrecorded leading intervals that drain the install backlog and
    /// warm the tier placer before the ledger starts counting.
    std::size_t warmup_intervals = 2;
    /// Fault-free trailing intervals before the final leak audit, so
    /// recovery hysteresis and guard de-escalation can unwind.
    std::size_t settle_intervals = 12;
    /// abort() on the first auditor violation (the regression-canary
    /// mode); false collects violations into the report instead.
    bool fatal_on_violation = true;
    std::size_t probe_flows = 8;
  };

  /// One region's week, folded.
  struct RegionSummary {
    std::size_t region_index = 0;
    double offered_pkts = 0;
    double dropped_pkts = 0;
    double availability = 1.0;
    double week_p99_latency_us = 0;
    double week_p999_latency_us = 0;
    double punt_occupancy_max = 0;
    double punt_occupancy_mean = 0;
    double peak_drop_rate = 0;
    /// Scheduled chaos events by kind (the whole drawn schedule).
    std::map<std::string, std::size_t> chaos_events;
    bool breaker_present = false;
    guard::CircuitBreaker::Stats breaker;
    std::uint64_t snat_sessions = 0;
    std::uint64_t snat_exhaustions = 0;
    std::uint64_t snat_expired = 0;
    std::uint64_t snat_active_end = 0;
    /// Aggregate guard time-in-state over all metered tenants.
    std::array<double, 3> guard_tier_seconds{};
    std::uint64_t audits_run = 0;
    std::uint64_t strict_audits_run = 0;
    /// Ascending-VNI per-tenant ledgers.
    std::vector<TenantSlo> tenants;
    /// Non-storm tenants outside the drop budget.
    std::vector<net::Vni> budget_violations;
    /// Auditor violations + end-of-run timeline leaks.
    std::vector<std::string> violations;
  };

  struct Report {
    std::uint64_t seed = 0;
    std::size_t regions = 0;
    double interval_s = 0;
    std::size_t intervals = 0;  // recorded (post-warmup) intervals
    std::size_t warmup_intervals = 0;
    std::size_t settle_intervals = 0;
    double sim_hours = 0;
    double drop_budget = 0;
    std::vector<RegionSummary> region_summaries;
    std::size_t total_violations = 0;
    std::size_t total_budget_violations = 0;
    bool pass = false;

    /// Byte-stable rendering (fixed field order, fixed precision) — the
    /// 1-vs-8-thread canary byte-compares this string.
    std::string to_json() const;
  };

  explicit SoakEngine(Config config);
  ~SoakEngine();

  SoakEngine(const SoakEngine&) = delete;
  SoakEngine& operator=(const SoakEngine&) = delete;

  /// Runs the whole scenario. Call once.
  Report run();

 private:
  struct RegionState;

  void build_region(std::size_t index);
  /// Component-ordered VPC admission with a live controller clock, so the
  /// squeezed water levels are enforced against up-to-date route counts
  /// (see the implementation comment).
  void install_with_live_clock(RegionState& state);
  /// One region, one interval: chaos step, weighted interval simulation,
  /// SNAT stream, ledger fold (when `record`), invariant audit.
  void run_interval(RegionState& region, std::size_t interval_index,
                    bool record, std::vector<std::string>& violations);
  void drive_snat(RegionState& region, double t0, double rate_factor);
  void handle_violations(const std::vector<std::string>& violations,
                         std::size_t region_index, double now);

  Config config_;
  std::size_t week_intervals_ = 0;
  std::vector<std::unique_ptr<RegionState>> regions_;
  bool ran_ = false;
};

}  // namespace sf::soak
