#include "soak/soak.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "core/sailfish.hpp"
#include "net/hash.hpp"
#include "sim/sim_clock.hpp"
#include "workload/rng.hpp"
#include "workload/traffic_pattern.hpp"

namespace sf::soak {
namespace {

constexpr double kPi = 3.14159265358979323846;

std::string format(const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  return buffer;
}

/// Per-tenant diurnal modulation on top of the region envelope: a ±30%
/// sine whose phase is hashed from the VNI, so tenants peak at different
/// local hours and the region mix shifts through the day.
double tenant_envelope(net::Vni vni, double t_seconds) {
  const double phase = static_cast<double>(net::mix64(vni) % 24);
  const double hour = std::fmod(t_seconds / 3600.0, 24.0);
  return 1.0 + 0.3 * std::sin(2.0 * kPi * (hour - phase) / 24.0);
}

/// The region a tenant calls home (same answer in every region — the
/// tenant universe is shared).
std::size_t home_region(net::Vni vni, std::size_t regions) {
  return static_cast<std::size_t>(net::mix64(vni ^ 0x9e3779b9u) % regions);
}

/// Normalized cross-region multiplier: a tenant offers (1-f) of its
/// traffic at home and f spread over the other regions, scaled by the
/// region count so the per-region totals stay at the pattern's base rate.
double region_multiplier(net::Vni vni, std::size_t region,
                         std::size_t regions, double f) {
  if (regions <= 1) return 1.0;
  const double away = f / static_cast<double>(regions - 1);
  const bool home = home_region(vni, regions) == region;
  return static_cast<double>(regions) * (home ? 1.0 - f : away);
}

}  // namespace

struct SoakEngine::RegionState {
  std::size_t index = 0;
  workload::RegionTopology topology;
  std::vector<workload::Flow> flows;
  std::unique_ptr<core::SailfishRegion> region;
  workload::TrafficPattern pattern;
  std::unique_ptr<ChaosTimeline> timeline;
  std::unique_ptr<InvariantAuditor> auditor;
  std::unique_ptr<SloLedger> ledger;
  /// flows with per-interval weights written in place.
  std::vector<workload::Flow> scratch;
  /// Per-flow weight including the cross-region multiplier.
  std::vector<double> base_weight;
  std::uint64_t snat_counter = 0;
  std::uint64_t snat_attempts = 0;
  std::vector<std::string> all_violations;
};

SoakEngine::SoakEngine(Config config) : config_(std::move(config)) {
  if (config_.regions == 0) config_.regions = 1;
  week_intervals_ = static_cast<std::size_t>(
      std::max(1.0, config_.sim_hours * 3600.0 / config_.interval_s));
  for (std::size_t r = 0; r < config_.regions; ++r) build_region(r);
}

SoakEngine::~SoakEngine() = default;

void SoakEngine::build_region(std::size_t index) {
  auto state = std::make_unique<RegionState>();
  state->index = index;

  // One tenant universe: every region builds the same topology; the flow
  // populations (the tuples carrying each tenant's traffic) differ.
  core::SailfishOptions options = core::quickstart_options();
  options.topology.seed = 42;
  options.flows.flow_count = 500;
  // "Top flow is a fraction of a percent of the region" — the make_scenario
  // shape; a 1.25 head would put one flow at ~20% of the region, which no
  // single x86 core (or DPU fallback interval) could ever absorb.
  options.flows.zipf_exponent = 0.5;
  options.flows.seed =
      43 + static_cast<std::uint64_t>(index) + 1000 * (config_.seed % 1000);

  state->topology = workload::generate_topology(options.topology);
  state->flows = workload::generate_flows(state->topology, options.flows);

  // Shuffle VPC admission order (fixed seed: the tenant universe must
  // stay common across regions and soak seeds). Generated order is
  // largest-first, so admitting as-is would fill the squeezed clusters
  // with every tenant that matters and leave only the zero-traffic tail
  // in the software tier — the punt lanes and DPU tier would idle all
  // week. Shuffled, the overflow tier carries a real traffic share.
  workload::Rng shuffle_rng(0x50f7713100d5eedULL);
  for (std::size_t i = state->topology.vpcs.size(); i > 1; --i) {
    std::swap(state->topology.vpcs[i - 1],
              state->topology.vpcs[shuffle_rng.uniform(i)]);
  }

  // Per-tenant offered shares in THIS region (flow weight sums times the
  // cross-region multiplier) — the guard budgets derive from them.
  std::map<net::Vni, double> shares;
  state->base_weight.reserve(state->flows.size());
  for (const workload::Flow& flow : state->flows) {
    const double mult = region_multiplier(
        flow.vni, index, config_.regions, config_.cross_region_fraction);
    state->base_weight.push_back(flow.weight * mult);
    shares[flow.vni] += flow.weight * mult;
  }

  const double base_bps = config_.base_gbps * 1e9;
  auto& rc = options.region;

  // Hardware squeezed so ~25% of the tenant table demand overflows into
  // the software tier: the punt lanes and the DPU tier carry real load
  // all week instead of idling.
  const std::size_t total_routes = state->topology.total_routes();
  const std::size_t total_vms = state->topology.total_vms();
  rc.controller.routes_water_level =
      std::max<std::size_t>(8, total_routes * 3 / 16);
  rc.controller.mappings_water_level =
      std::max<std::size_t>(8, total_vms * 3 / 16);
  rc.controller.admit_overflow = true;
  // Update channel: budget generous enough that the install backlog
  // drains within the warmup intervals, breaker armed so brownouts trip
  // it (half-open probe at the next interval boundary).
  rc.controller.table_op_rate_limit = 2000;
  rc.controller.table_op_burst = 256;
  // The retry queue is strict FIFO, so a brownout produces exactly one
  // refused channel attempt per interval boundary (the head op), plus
  // one from the wave that finds the queue empty. trip_after=2 lets any
  // brownout spanning >= 2 boundaries walk the full breaker ladder:
  // trip, short-circuit, half-open probe, reopen while still degraded,
  // close when the brownout lifts.
  rc.controller.breaker.trip_after = 2;
  rc.controller.breaker.open_cooldown_s = config_.interval_s;
  // The live placement engine rides along in region 0 only — enough to
  // audit placement parity without doubling the cost everywhere.
  rc.controller.placement_enabled = index == 0;

  // x86 fleet sized so the overflow tail (everything the DPU tier does
  // not hold) fits with headroom even while a DPU node is dark.
  rc.x86_nodes = 2;
  rc.x86_template.model.cores = 48;
  rc.x86_template.model.cpu_ghz = 3.2;
  rc.x86_template.model.cycles_per_packet = 1600;
  // Deliberately narrow SNAT pool: two public IPs x 4096 ports per node,
  // sessions outliving one interval — block exhaustion and FIFO
  // recycling run continuously instead of never.
  rc.x86_template.snat.public_ips = {net::Ipv4Addr(198, 51, 100, 1),
                                     net::Ipv4Addr(198, 51, 100, 2)};
  rc.x86_template.snat.port_min = 1024;
  rc.x86_template.snat.port_max = 5119;
  rc.x86_template.snat.session_timeout_s = 1.5 * config_.interval_s;

  // Guard: every topology tenant metered at ~1.6x its own lawful peak
  // (diurnal x festival x tenant envelope x jitter), so normal traffic
  // never trips a budget and any 20-50x storm does — in the same
  // interval (escalate_after = 1 clamps the storm before it reaches the
  // dataplane; victims never absorb a storm's overload).
  rc.enable_guard = true;
  rc.guard.escalate_after = 1;
  rc.guard.deescalate_after = 2;
  const double peak_factor = 1.35 * 2.2 * 1.3 * 1.1;
  for (const workload::VpcRecord& vpc : state->topology.vpcs) {
    guard::TenantLimit limit;
    limit.vni = vpc.vni;
    double share = 0;
    if (auto it = shares.find(vpc.vni); it != shares.end()) {
      share = it->second;
    }
    limit.rate_bps = std::max(1e5, 1.6 * share * base_bps * peak_factor);
    rc.guard.tenants.push_back(limit);
  }

  rc.enable_punt_path = true;
  rc.punt_queue.depth_packets = 4096;
  rc.punt_queue.drain_pps = 3e7;

  rc.enable_dpu = true;
  rc.dpu_nodes = 2;
  rc.dpu_template.flow_table_entries = 8192;
  rc.tier_placer.tracker.capacity = 128;
  // Below the biggest per-flow rates (~0.9M pps at zipf 0.5): the
  // overflow tier's elephants really promote, so DPU darkness has
  // something to take away.
  rc.tier_placer.promote_min_pps = 2e5;
  rc.tier_placer.max_promote_per_interval = 256;
  rc.tier_placer.demote_after_idle = 3;

  // Pin the runtime gates: the soak's identity must not depend on the
  // caller's SF_GUARD/SF_DPU environment.
  rc.runtime = core::RuntimeConfig{};

  state->region = std::make_unique<core::SailfishRegion>(rc);
  install_with_live_clock(*state);
  state->region->set_interval_threads(config_.interval_threads);

  state->pattern.base_bps = base_bps;
  state->pattern.peak_hour = 21.0 - 8.0 * static_cast<double>(index);
  state->pattern.festival_start_day = 5.0;
  state->pattern.festival_end_day = 6.0;

  // Chaos: per-region seed, storms drawn from the heaviest local tenants
  // (a storm on a zero-share tenant would be a no-op), VM-migration
  // churn over the first mapped VM of the leading VPCs.
  ChaosTimeline::Config chaos;
  chaos.seed = config_.seed + 7919 * (index + 1);
  chaos.interval_s = config_.interval_s;
  chaos.horizon_s = static_cast<double>(week_intervals_ +
                                        config_.warmup_intervals) *
                    config_.interval_s;
  chaos.events_per_day = config_.chaos_events_per_day;
  std::vector<std::pair<double, net::Vni>> ranked;
  for (const auto& [vni, share] : shares) ranked.emplace_back(share, vni);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  for (std::size_t i = 0; i < ranked.size() && i < 16; ++i) {
    chaos.tenant_vnis.push_back(ranked[i].second);
  }
  std::sort(chaos.tenant_vnis.begin(), chaos.tenant_vnis.end());
  for (const workload::VpcRecord& vpc : state->topology.vpcs) {
    if (chaos.migratable_vms.size() >= 32) break;
    if (vpc.vms.empty()) continue;
    chaos.migratable_vms.push_back(
        tables::VmNcKey{vpc.vni, vpc.vms.front().ip});
  }
  state->timeline =
      std::make_unique<ChaosTimeline>(*state->region, std::move(chaos));

  state->auditor = std::make_unique<InvariantAuditor>(
      *state->region, std::span<const workload::Flow>(state->flows),
      InvariantAuditor::Config{config_.probe_flows});
  state->ledger =
      std::make_unique<SloLedger>(SloLedger::Config{config_.drop_budget});
  state->scratch = state->flows;

  regions_.push_back(std::move(state));
}

void SoakEngine::install_with_live_clock(RegionState& state) {
  // Controller::install_topology admits every VPC at clock 0: the
  // rate-limited channel freezes after its initial burst, so the
  // cluster route counts assign_cluster gates on never reach the water
  // level mid-install and the whole region lands in cluster 0. Admitting
  // with a live clock — each VPC waits out its own ops' channel budget —
  // lets the squeezed water levels actually close clusters, so ~25% of
  // the tenant universe really overflows into the software tier. Same
  // component-contiguous order install_topology uses (peered VPCs must
  // not interleave with other components).
  cluster::Controller& controller = state.region->controller();
  const auto& vpcs = state.topology.vpcs;
  std::map<net::Vni, std::size_t> index_of;
  for (std::size_t i = 0; i < vpcs.size(); ++i) index_of[vpcs[i].vni] = i;
  std::vector<bool> visited(vpcs.size(), false);
  std::vector<std::size_t> order;
  for (std::size_t start = 0; start < vpcs.size(); ++start) {
    if (visited[start]) continue;
    std::vector<std::size_t> component{start};
    visited[start] = true;
    for (std::size_t i = 0; i < component.size(); ++i) {
      for (net::Vni peer : vpcs[component[i]].peers) {
        auto it = index_of.find(peer);
        if (it != index_of.end() && !visited[it->second]) {
          visited[it->second] = true;
          component.push_back(it->second);
        }
      }
    }
    order.insert(order.end(), component.begin(), component.end());
  }
  const double rate =
      std::max(1.0, state.region->config().controller.table_op_rate_limit);
  double t_install = 0;
  for (std::size_t i : order) {
    controller.advance_clock(t_install);
    controller.add_vpc(vpcs[i]);
    const double ops =
        static_cast<double>(vpcs[i].routes.size() + vpcs[i].vms.size());
    t_install += ops / rate;
  }
  // Drain the tail of the backlog before the week starts.
  controller.advance_clock(t_install + 1.0);
}

void SoakEngine::drive_snat(RegionState& region, double t0,
                            double rate_factor) {
  const double interval = config_.interval_s;
  const auto count = static_cast<std::size_t>(
      std::max(0.0, static_cast<double>(config_.snat_sessions_per_interval) *
                        rate_factor));
  for (std::size_t n = 0; n < region.region->x86_node_count(); ++n) {
    x86::SnatEngine& snat = region.region->x86_node(n).snat();
    for (std::size_t i = 0; i < count; ++i) {
      // Deterministic unique session: counter bits spread over the CGNAT
      // source ip and port; dst is a fixed external peer. Tuples recycle
      // only long after their sessions expired.
      const std::uint64_t c = region.snat_counter++;
      net::FiveTuple tuple;
      tuple.src = net::IpAddr(net::Ipv4Addr(
          0x64400000u | (static_cast<std::uint32_t>(n) << 20) |
          static_cast<std::uint32_t>(c & 0xfffffu)));
      tuple.dst = net::IpAddr(net::Ipv4Addr(192, 0, 2, 10));
      tuple.proto = 6;
      tuple.src_port =
          static_cast<std::uint16_t>(1024 + (c >> 20) % 60000);
      tuple.dst_port = 443;
      const double t =
          t0 + interval * (static_cast<double>(i) + 0.5) /
                   static_cast<double>(count);
      ++region.snat_attempts;
      snat.translate(tuple, t);
    }
    snat.expire(t0 + interval);
  }
}

void SoakEngine::handle_violations(
    const std::vector<std::string>& violations, std::size_t region_index,
    double now) {
  if (violations.empty()) return;
  RegionState& region = *regions_[region_index];
  for (const std::string& v : violations) {
    region.all_violations.push_back(
        format("t=%.0f region %zu: ", now, region_index) + v);
  }
  if (config_.fatal_on_violation) {
    for (const std::string& v : region.all_violations) {
      std::fprintf(stderr, "FATAL soak invariant violation: %s\n", v.c_str());
    }
    std::abort();
  }
}

void SoakEngine::run_interval(RegionState& region,
                              std::size_t interval_index, bool record,
                              std::vector<std::string>& violations_out) {
  const double interval = config_.interval_s;
  const double t0 = static_cast<double>(interval_index) * interval;
  const double t1 = t0 + interval;
  const double t_mid = t0 + 0.5 * interval;

  const ChaosTimeline::StepResult step = region.timeline->step(t0);

  std::map<net::Vni, double> storm_mult;
  std::vector<net::Vni> storm_vnis;
  for (const StormSpec& storm : step.active_storms) {
    storm_mult[storm.vni] = storm.multiplier;
    storm_vnis.push_back(storm.vni);
  }

  for (std::size_t i = 0; i < region.scratch.size(); ++i) {
    const net::Vni vni = region.flows[i].vni;
    double w = region.base_weight[i] * tenant_envelope(vni, t_mid);
    if (auto it = storm_mult.find(vni); it != storm_mult.end()) {
      w *= it->second;
    }
    region.scratch[i].weight = w;
  }

  const double total_bps = workload::rate_at(region.pattern, t_mid);
  const core::SailfishRegion::IntervalReport report =
      region.region->simulate_interval(
          region.scratch, total_bps,
          static_cast<std::uint64_t>(interval_index) * config_.regions +
              region.index);

  drive_snat(region, t0, total_bps / region.pattern.base_bps);

  if (record) {
    region.ledger->record_interval(interval, report, storm_vnis);
  }

  // Strict (quiescence) checks only apply when the timeline says nothing
  // is in flight; the light sweep runs every interval.
  const bool strict =
      !step.device_faults_active && !step.control_faults_active;
  violations_out = region.auditor->audit(t1, strict, &report);
}

SoakEngine::Report SoakEngine::run() {
  if (ran_) {
    std::fprintf(stderr, "FATAL: SoakEngine::run() called twice\n");
    std::abort();
  }
  ran_ = true;

  const std::size_t main_intervals =
      config_.warmup_intervals + week_intervals_;
  std::vector<std::string> violations;
  for (std::size_t i = 0; i < main_intervals; ++i) {
    const bool record = i >= config_.warmup_intervals;
    for (auto& region : regions_) {
      run_interval(*region, i, record, violations);
      handle_violations(violations, region->index,
                        static_cast<double>(i + 1) * config_.interval_s);
    }
  }
  // Fault-free settle: recovery hysteresis unwinds, storm tenants
  // de-escalate, the retry queue and breaker finish converging.
  for (std::size_t s = 0; s < config_.settle_intervals; ++s) {
    const std::size_t i = main_intervals + s;
    for (auto& region : regions_) {
      run_interval(*region, i, false, violations);
      handle_violations(violations, region->index,
                        static_cast<double>(i + 1) * config_.interval_s);
    }
  }
  const double t_end =
      static_cast<double>(main_intervals + config_.settle_intervals) *
      config_.interval_s;
  for (auto& region : regions_) {
    const std::vector<std::string> leaks = region->timeline->final_audit(t_end);
    handle_violations(leaks, region->index, t_end);
  }

  Report report;
  report.seed = config_.seed;
  report.regions = config_.regions;
  report.interval_s = config_.interval_s;
  report.intervals = week_intervals_;
  report.warmup_intervals = config_.warmup_intervals;
  report.settle_intervals = config_.settle_intervals;
  report.sim_hours = config_.sim_hours;
  report.drop_budget = config_.drop_budget;

  for (auto& state : regions_) {
    RegionSummary summary;
    summary.region_index = state->index;
    const SloLedger& ledger = *state->ledger;
    summary.offered_pkts = ledger.offered_pkts();
    summary.dropped_pkts = ledger.dropped_pkts();
    summary.availability =
        summary.offered_pkts > 0
            ? 1.0 - summary.dropped_pkts / summary.offered_pkts
            : 1.0;
    summary.week_p99_latency_us = ledger.week_p99_latency_us();
    summary.week_p999_latency_us = ledger.week_p999_latency_us();
    summary.punt_occupancy_max = ledger.punt_occupancy_max();
    summary.punt_occupancy_mean = ledger.punt_occupancy_mean();
    summary.peak_drop_rate = ledger.peak_drop_rate();
    summary.chaos_events = state->timeline->event_counts();
    if (const guard::CircuitBreaker* breaker =
            state->region->controller().breaker()) {
      summary.breaker_present = true;
      summary.breaker = breaker->stats();
    }
    summary.snat_sessions = state->snat_attempts;
    for (std::size_t n = 0; n < state->region->x86_node_count(); ++n) {
      const x86::SnatEngine::Stats stats =
          state->region->x86_node(n).snat().stats();
      summary.snat_exhaustions += stats.port_block_exhaustions;
      summary.snat_expired += stats.expired_sessions;
      summary.snat_active_end += stats.active_sessions;
    }
    for (const auto& [vni, tenant] : ledger.tenants()) {
      summary.tenants.push_back(tenant);
      for (std::size_t tier = 0; tier < 3; ++tier) {
        summary.guard_tier_seconds[tier] += tenant.tier_seconds[tier];
      }
    }
    summary.audits_run = state->auditor->audits_run();
    summary.strict_audits_run = state->auditor->strict_audits_run();
    summary.budget_violations = ledger.budget_violations();
    summary.violations = state->all_violations;
    report.total_violations += summary.violations.size();
    report.total_budget_violations += summary.budget_violations.size();
    report.region_summaries.push_back(std::move(summary));
  }
  report.pass =
      report.total_violations == 0 && report.total_budget_violations == 0;
  return report;
}

std::string SoakEngine::Report::to_json() const {
  std::string out = "{\n";
  out += "  \"bench\": \"soak\",\n";
  out += format("  \"seed\": %llu,\n",
                static_cast<unsigned long long>(seed));
  out += format("  \"regions\": %zu,\n", regions);
  out += format("  \"interval_s\": %.3f,\n", interval_s);
  out += format("  \"intervals\": %zu,\n", intervals);
  out += format("  \"warmup_intervals\": %zu,\n", warmup_intervals);
  out += format("  \"settle_intervals\": %zu,\n", settle_intervals);
  out += format("  \"sim_hours\": %.3f,\n", sim_hours);
  out += format("  \"drop_budget\": %.3e,\n", drop_budget);
  out += format("  \"total_violations\": %zu,\n", total_violations);
  out += format("  \"total_budget_violations\": %zu,\n",
                total_budget_violations);
  out += format("  \"pass\": %s,\n", pass ? "true" : "false");
  out += "  \"region_reports\": [\n";
  for (std::size_t r = 0; r < region_summaries.size(); ++r) {
    const RegionSummary& s = region_summaries[r];
    out += "    {\n";
    out += format("      \"region\": %zu,\n", s.region_index);
    out += format("      \"offered_pkts\": %.6e,\n", s.offered_pkts);
    out += format("      \"dropped_pkts\": %.6e,\n", s.dropped_pkts);
    out += format("      \"availability\": %.9f,\n", s.availability);
    out += format("      \"week_p99_latency_us\": %.3f,\n",
                  s.week_p99_latency_us);
    out += format("      \"week_p999_latency_us\": %.3f,\n",
                  s.week_p999_latency_us);
    out += format("      \"punt_occupancy_max\": %.6f,\n",
                  s.punt_occupancy_max);
    out += format("      \"punt_occupancy_mean\": %.6f,\n",
                  s.punt_occupancy_mean);
    out += format("      \"peak_drop_rate\": %.9e,\n", s.peak_drop_rate);
    out += "      \"chaos_events\": {";
    std::size_t emitted = 0;
    for (const auto& [kind, count] : s.chaos_events) {
      out += format("%s\"%s\": %zu", emitted++ == 0 ? "" : ", ",
                    kind.c_str(), count);
    }
    out += "},\n";
    if (s.breaker_present) {
      out += format("      \"breaker\": {\"trips\": %llu, \"reopens\": "
                    "%llu, \"closes\": %llu, \"short_circuited\": %llu},\n",
                    static_cast<unsigned long long>(s.breaker.trips),
                    static_cast<unsigned long long>(s.breaker.reopens),
                    static_cast<unsigned long long>(s.breaker.closes),
                    static_cast<unsigned long long>(
                        s.breaker.short_circuited));
    }
    out += format("      \"snat\": {\"sessions\": %llu, \"exhaustions\": "
                  "%llu, \"expired\": %llu, \"active_end\": %llu},\n",
                  static_cast<unsigned long long>(s.snat_sessions),
                  static_cast<unsigned long long>(s.snat_exhaustions),
                  static_cast<unsigned long long>(s.snat_expired),
                  static_cast<unsigned long long>(s.snat_active_end));
    out += format("      \"guard_tier_seconds\": [%.0f, %.0f, %.0f],\n",
                  s.guard_tier_seconds[0], s.guard_tier_seconds[1],
                  s.guard_tier_seconds[2]);
    out += format("      \"audits\": {\"run\": %llu, \"strict\": %llu},\n",
                  static_cast<unsigned long long>(s.audits_run),
                  static_cast<unsigned long long>(s.strict_audits_run));
    out += "      \"violations\": [";
    for (std::size_t v = 0; v < s.violations.size(); ++v) {
      out += format("%s\"%s\"", v == 0 ? "" : ", ",
                    s.violations[v].c_str());
    }
    out += "],\n";
    out += "      \"budget_violations\": [";
    for (std::size_t v = 0; v < s.budget_violations.size(); ++v) {
      out += format("%s%u", v == 0 ? "" : ", ",
                    static_cast<unsigned>(s.budget_violations[v]));
    }
    out += "],\n";
    out += "      \"tenants\": [\n";
    for (std::size_t t = 0; t < s.tenants.size(); ++t) {
      const TenantSlo& tenant = s.tenants[t];
      out += format(
          "        {\"vni\": %u, \"offered_pkts\": %.6e, "
          "\"dropped_pkts\": %.6e, \"shed_pkts\": %.6e, "
          "\"availability\": %.9f, \"storm_intervals\": %zu, "
          "\"tier1_s\": %.0f, \"tier2_s\": %.0f, \"in_budget\": %s}",
          static_cast<unsigned>(tenant.vni), tenant.offered_pkts,
          tenant.dropped_pkts, tenant.shed_pkts, tenant.availability(),
          tenant.storm_intervals, tenant.tier_seconds[1],
          tenant.tier_seconds[2],
          tenant.in_budget(drop_budget) ? "true" : "false");
      out += t + 1 < s.tenants.size() ? ",\n" : "\n";
    }
    out += "      ]\n";
    out += r + 1 < region_summaries.size() ? "    },\n" : "    }\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace sf::soak
