// sf::soak — per-tenant availability SLO accounting (DESIGN.md §17).
//
// The soak engine steps a region through ~1000 simulated intervals; this
// ledger folds every IntervalReport into week-level numbers the report
// renders: per-tenant drop-budget ledgers (offered vs attributed drops),
// guard-tier time-in-state, and region-level p99/p999 latency and punt
// occupancy aggregates.
//
// Drop attribution: the guard's per-tenant rows carry each metered
// tenant's offered and shed rates exactly; everything else the region
// dropped that interval (device overload, loss floor, punt backpressure,
// unknown VNIs) is not tenant-tagged, so it is attributed uniformly — each
// tenant absorbs the interval's non-guard drop fraction on its own offered
// rate. That is conservative for victims (a storm tenant's overload drops
// land partly on its neighbors' ledgers), which is the right bias for a
// budget alarm.
//
// Latency: the week-level p99/p999 are weighted percentiles over the
// interval-level p99/p999 samples (weight = the interval's served
// packets). An interval simulator has no per-packet population to take a
// true week percentile over; "the p99 of the interval p99s" is the
// documented approximation, and it is byte-deterministic.

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "core/region.hpp"
#include "net/headers.hpp"

namespace sf::soak {

/// One tenant's week-long ledger.
struct TenantSlo {
  net::Vni vni = 0;
  double offered_pkts = 0;
  /// Attributed drops: own guard sheds + uniform share of unattributed
  /// region drops.
  double dropped_pkts = 0;
  /// Subset of dropped_pkts shed by the guard against this tenant.
  double shed_pkts = 0;
  /// Seconds spent at each guard ladder tier.
  std::array<double, 3> tier_seconds{};
  /// Intervals during which this tenant was the storm tenant.
  std::size_t storm_intervals = 0;
  std::size_t intervals = 0;

  bool stormed() const { return storm_intervals > 0; }
  double drop_fraction() const {
    return offered_pkts > 0 ? dropped_pkts / offered_pkts : 0;
  }
  double availability() const { return 1.0 - drop_fraction(); }
  /// Storm tenants are exempt: their guard sheds are the defense working.
  bool in_budget(double budget) const {
    return stormed() || drop_fraction() <= budget;
  }
};

class SloLedger {
 public:
  struct Config {
    /// Allowed dropped/offered fraction per (non-storm) tenant per week.
    double drop_budget = 2e-3;
  };

  explicit SloLedger(Config config) : config_(config) {}

  /// Folds one interval in. `storm_vnis` lists tenants whose traffic was
  /// deliberately inflated this interval (sorted or not — membership only).
  void record_interval(double interval_s,
                       const core::SailfishRegion::IntervalReport& interval,
                       const std::vector<net::Vni>& storm_vnis);

  /// Ascending-VNI tenant ledgers (deterministic iteration order).
  const std::map<net::Vni, TenantSlo>& tenants() const { return tenants_; }

  /// Weighted percentile of the interval-level pXX samples (see header
  /// comment). Zero when no interval produced a latency figure.
  double week_p99_latency_us() const;
  double week_p999_latency_us() const;

  double punt_occupancy_max() const { return punt_occ_max_; }
  double punt_occupancy_mean() const {
    return intervals_ > 0 ? punt_occ_sum_ / static_cast<double>(intervals_)
                          : 0;
  }
  double peak_drop_rate() const { return peak_drop_rate_; }
  std::size_t intervals() const { return intervals_; }
  double offered_pkts() const { return offered_pkts_; }
  double dropped_pkts() const { return dropped_pkts_; }

  /// Tenants (excluding storm tenants) outside Config::drop_budget.
  std::vector<net::Vni> budget_violations() const;
  double drop_budget() const { return config_.drop_budget; }

 private:
  static double weighted_percentile(
      const std::vector<std::pair<double, double>>& samples, double p);

  Config config_;
  std::map<net::Vni, TenantSlo> tenants_;
  std::size_t intervals_ = 0;
  double offered_pkts_ = 0;
  double dropped_pkts_ = 0;
  double punt_occ_max_ = 0;
  double punt_occ_sum_ = 0;
  double peak_drop_rate_ = 0;
  /// (latency_us, served-packet weight) per interval.
  std::vector<std::pair<double, double>> p99_samples_;
  std::vector<std::pair<double, double>> p999_samples_;
};

}  // namespace sf::soak
