#include "soak/slo.hpp"

#include <algorithm>

namespace sf::soak {

void SloLedger::record_interval(
    double interval_s, const core::SailfishRegion::IntervalReport& interval,
    const std::vector<net::Vni>& storm_vnis) {
  ++intervals_;
  offered_pkts_ += interval.offered_pps * interval_s;
  dropped_pkts_ += interval.dropped_pps * interval_s;
  peak_drop_rate_ = std::max(peak_drop_rate_, interval.drop_rate);
  punt_occ_max_ = std::max(punt_occ_max_, interval.punt_queue_occupancy);
  punt_occ_sum_ += interval.punt_queue_occupancy;

  const double served_pkts =
      std::max(0.0, interval.offered_pps - interval.dropped_pps) * interval_s;
  if (interval.p99_latency_us > 0) {
    p99_samples_.emplace_back(interval.p99_latency_us, served_pkts);
  }
  if (interval.p999_latency_us > 0) {
    p999_samples_.emplace_back(interval.p999_latency_us, served_pkts);
  }

  // Everything the region dropped beyond the guard's tenant-tagged sheds,
  // as a fraction of the interval's offered rate — attributed uniformly.
  const double unattributed_pps =
      std::max(0.0, interval.dropped_pps - interval.guard_shed_pps);
  const double unattributed_fraction =
      interval.offered_pps > 0 ? unattributed_pps / interval.offered_pps : 0;

  for (const auto& row : interval.guard_tenants) {
    TenantSlo& tenant = tenants_[row.vni];
    tenant.vni = row.vni;
    ++tenant.intervals;
    tenant.offered_pkts += row.offered_pps * interval_s;
    tenant.shed_pkts += row.shed_pps * interval_s;
    tenant.dropped_pkts +=
        (row.shed_pps + unattributed_fraction * row.offered_pps) * interval_s;
    tenant.tier_seconds[static_cast<std::size_t>(row.tier)] += interval_s;
    if (std::find(storm_vnis.begin(), storm_vnis.end(), row.vni) !=
        storm_vnis.end()) {
      ++tenant.storm_intervals;
    }
  }
}

double SloLedger::weighted_percentile(
    const std::vector<std::pair<double, double>>& samples, double p) {
  if (samples.empty()) return 0;
  std::vector<std::pair<double, double>> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  double total = 0;
  for (const auto& [latency, weight] : sorted) total += weight;
  if (total <= 0) return sorted.back().first;
  double cumulative = 0;
  for (const auto& [latency, weight] : sorted) {
    cumulative += weight;
    if (cumulative >= p * total) return latency;
  }
  return sorted.back().first;
}

double SloLedger::week_p99_latency_us() const {
  return weighted_percentile(p99_samples_, 0.99);
}

double SloLedger::week_p999_latency_us() const {
  return weighted_percentile(p999_samples_, 0.999);
}

std::vector<net::Vni> SloLedger::budget_violations() const {
  std::vector<net::Vni> out;
  for (const auto& [vni, tenant] : tenants_) {
    if (!tenant.in_budget(config_.drop_budget)) out.push_back(vni);
  }
  return out;
}

}  // namespace sf::soak
