#include "dpu/tier_placer.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/hash.hpp"

namespace sf::dpu {

TierPlacer::TierPlacer(Config config, std::size_t shards, std::size_t nodes)
    : config_(config), nodes_(nodes) {
  if (shards == 0) throw std::invalid_argument("placer needs >= 1 shard");
  if (nodes_ == 0) throw std::invalid_argument("placer needs >= 1 node");
  if (config_.demote_after_idle == 0) config_.demote_after_idle = 1;
  trackers_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    // Distinct seeds per shard: two shards must not share hash collisions,
    // or one tenant's noise would alias into another shard's estimates.
    auto tracker = config_.tracker;
    tracker.sketch.seed = net::hash_combine(tracker.sketch.seed, i + 1);
    trackers_.emplace_back(tracker);
  }
}

std::size_t TierPlacer::shard_of(net::Vni vni) const {
  return static_cast<std::size_t>(net::mix64(vni)) % trackers_.size();
}

void TierPlacer::begin_interval(std::size_t shard) {
  trackers_[shard].decay(config_.decay);
}

void TierPlacer::observe(std::size_t shard, const telemetry::FlowKey& key,
                         std::uint64_t pps) {
  trackers_[shard].add(key, pps);
}

TierPlacer::ApplyResult TierPlacer::apply(const InstallFn& install,
                                          const RemoveFn& remove) {
  ApplyResult result;

  // Demotion first: freed entries are available to this interval's
  // promotions. placements_ iterates in key order — deterministic.
  for (auto it = placements_.begin(); it != placements_.end();) {
    const telemetry::FlowKey key{it->first.first, it->first.second};
    const std::uint64_t estimate =
        trackers_[shard_of(key.vni)].estimate(key);
    if (estimate >= config_.promote_min_pps) {
      it->second.idle_intervals = 0;
      ++it;
      continue;
    }
    if (++it->second.idle_intervals < config_.demote_after_idle) {
      ++it;
      continue;
    }
    remove(key, it->second.node);
    it = placements_.erase(it);
    ++result.demoted;
  }

  // Gather every shard's candidates, heaviest first. Ties broken by key so
  // the order is a pure function of the tracker state.
  std::vector<telemetry::HeavyHitterTracker::Entry> candidates;
  for (const auto& tracker : trackers_) {
    const auto top = tracker.top(tracker.tracked());
    candidates.insert(candidates.end(), top.begin(), top.end());
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.estimate != b.estimate) return a.estimate > b.estimate;
              if (a.key.vni != b.key.vni) return a.key.vni < b.key.vni;
              return a.key.tuple < b.key.tuple;
            });

  for (const auto& candidate : candidates) {
    if (result.promoted >= config_.max_promote_per_interval) break;
    if (candidate.estimate < config_.promote_min_pps) break;  // sorted
    const FlowId id{candidate.key.vni, candidate.key.tuple};
    if (placements_.contains(id)) continue;
    const std::size_t node =
        static_cast<std::size_t>(net::mix64(candidate.key.vni)) % nodes_;
    if (!install(candidate.key, node)) {
      ++result.refused;
      continue;
    }
    placements_.emplace(id, Placement{node, 0});
    ++result.promoted;
  }
  return result;
}

std::optional<std::size_t> TierPlacer::placement(
    const telemetry::FlowKey& key) const {
  auto it = placements_.find({key.vni, key.tuple});
  if (it == placements_.end()) return std::nullopt;
  return it->second.node;
}

std::size_t TierPlacer::placed_on(std::size_t node) const {
  std::size_t count = 0;
  for (const auto& [id, placement] : placements_) {
    if (placement.node == node) ++count;
  }
  return count;
}

std::size_t TierPlacer::evict_node(std::size_t node) {
  return std::erase_if(placements_, [node](const auto& entry) {
    return entry.second.node == node;
  });
}

std::size_t TierPlacer::evict_vni(net::Vni vni) {
  return std::erase_if(placements_, [vni](const auto& entry) {
    return entry.first.first == vni;
  });
}

}  // namespace sf::dpu
