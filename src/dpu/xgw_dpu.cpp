#include "dpu/xgw_dpu.hpp"

#include "core/runtime_config.hpp"

namespace sf::dpu {

bool dpu_enabled() {
  // Delegates to the consolidated runtime gates; semantics unchanged
  // (SF_DPU, latched once per process).
  return core::RuntimeConfig::process().dpu_enabled;
}

XgwDpu::XgwDpu(Config config)
    : config_(config), registry_(std::make_unique<telemetry::Registry>()) {
  if (config_.flow_table_entries == 0) config_.flow_table_entries = 1;
  ctr_packets_in_ = &registry_->counter("dpu.packets_in");
  ctr_bytes_in_ = &registry_->counter("dpu.bytes_in");
  ctr_forwarded_ = &registry_->counter("dpu.packets_forwarded");
  ctr_misses_ = &registry_->counter("dpu.misses");
  ctr_flow_installs_ = &registry_->counter("dpu.flow_installs");
  ctr_flow_removes_ = &registry_->counter("dpu.flow_removes");
  ctr_invalidations_ = &registry_->counter("dpu.invalidations");
  hist_latency_ = &registry_->histogram(
      "dpu.latency_us", telemetry::Histogram::Config{
                            /*min_value=*/1.0, /*growth=*/2.0,
                            /*buckets=*/16, /*reservoir=*/256});
}

dataplane::Verdict XgwDpu::process(const net::OverlayPacket& packet,
                                   double /*now*/) {
  ctr_packets_in_->add();
  ctr_bytes_in_->add(packet.wire_size());
  if (!failed_) {
    auto it = flows_.find({packet.vni, packet.inner});
    if (it != flows_.end()) {
      dataplane::Verdict verdict;
      verdict.action = it->second.action;
      verdict.packet = packet;
      verdict.packet.outer_src_ip = net::IpAddr(config_.device_ip);
      verdict.packet.outer_dst_ip = it->second.outer_dst;
      verdict.latency_us = config_.base_latency_us;
      ctr_forwarded_->add();
      hist_latency_->record(verdict.latency_us);
      return verdict;
    }
  }
  // Miss (or dead box): hand the packet back to the region, which
  // continues down the punt path as if this tier did not exist.
  ctr_misses_->add();
  dataplane::Verdict verdict;
  verdict.action = dataplane::Action::kFallbackToX86;
  verdict.packet = packet;
  return verdict;
}

dataplane::TableOpStatus XgwDpu::install_flow(net::Vni vni,
                                              const net::FiveTuple& tuple,
                                              FlowEntry entry) {
  if (failed_) return dataplane::TableOpStatus::kRateLimited;
  auto it = flows_.find({vni, tuple});
  if (it != flows_.end()) {
    it->second = entry;  // refresh in place
    return dataplane::TableOpStatus::kDuplicate;
  }
  if (flows_.size() >= config_.flow_table_entries) {
    return dataplane::TableOpStatus::kCapacityExceeded;
  }
  flows_.emplace(FlowId{vni, tuple}, entry);
  ctr_flow_installs_->add();
  return dataplane::TableOpStatus::kOk;
}

dataplane::TableOpStatus XgwDpu::remove_flow(net::Vni vni,
                                             const net::FiveTuple& tuple) {
  if (flows_.erase({vni, tuple}) == 0) {
    return dataplane::TableOpStatus::kNotFound;
  }
  ctr_flow_removes_->add();
  return dataplane::TableOpStatus::kOk;
}

bool XgwDpu::has_flow(net::Vni vni, const net::FiveTuple& tuple) const {
  return !failed_ && flows_.contains({vni, tuple});
}

double XgwDpu::occupancy() const {
  return static_cast<double>(flows_.size()) /
         static_cast<double>(config_.flow_table_entries);
}

std::size_t XgwDpu::evict_vni(net::Vni vni) {
  std::size_t evicted = 0;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->first.first == vni) {
      it = flows_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  if (evicted > 0) ctr_invalidations_->add(evicted);
  return evicted;
}

dataplane::BatchResult XgwDpu::apply(const dataplane::TableOpBatch& batch) {
  dataplane::BatchResult result;
  for (const dataplane::TableOp& op : batch.ops) {
    evict_vni(op.kind == dataplane::TableOp::Kind::kAddMapping ||
                      op.kind == dataplane::TableOp::Kind::kDelMapping
                  ? op.mapping_key.vni
                  : op.vni);
    result.record(dataplane::TableOpStatus::kOk);
  }
  return result;
}

void XgwDpu::set_failed(bool failed) {
  if (failed && !failed_) flows_.clear();  // SRAM state is gone
  failed_ = failed;
}

}  // namespace sf::dpu
