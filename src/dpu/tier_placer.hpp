// sf::dpu::TierPlacer — sketch-driven elephant promotion into the DPU tier
// (DESIGN.md §11).
//
// The three-tier placement question is "which flows deserve a DPU table
// entry?". The answer the paper's telemetry machinery already computes:
// elephants. Each interval the region feeds every software-tier flow's
// packet rate into a per-shard HeavyHitterTracker (count-min sketch +
// bounded top-K), the sketch decays so estimates track *recent* rate, and
// a single sequential pass promotes the heaviest unplaced candidates into
// the DPU flow tables and demotes placed flows that have gone quiet.
//
// Determinism contract (the same one the interval engine lives by):
//   * observe()/begin_interval() are shard-private — the region partitions
//     flows by mix64(vni) % shards, the same owner function used here, so
//     no two threads ever touch one tracker;
//   * apply() runs once, sequentially, in the reduce phase: placements_
//     is an ordered map, candidates are sorted by (estimate desc, vni asc,
//     tuple asc), and node choice is a pure hash of the VNI — so the
//     placement state after any interval is byte-identical at any thread
//     count.
//
// The placer decides; the region executes. apply() takes install/remove
// callbacks so the policy is testable without any XgwDpu behind it, and so
// a refused install (kCapacityExceeded on a full table) simply leaves the
// flow in the x86 tier until an entry frees up.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "net/headers.hpp"
#include "telemetry/sketch.hpp"

namespace sf::dpu {

class TierPlacer {
 public:
  struct Config {
    /// Per-shard elephant tracker shape.
    telemetry::HeavyHitterTracker::Config tracker;
    /// Interval decay factor for the sketches (see CountMinSketch::decay).
    double decay = 0.5;
    /// Minimum decayed rate estimate (pps) for promotion into the DPU.
    std::uint64_t promote_min_pps = 1000;
    /// Promotion budget per interval — models the DPU's bounded update
    /// channel (a real NIC programs tens of entries per ms, not millions).
    std::size_t max_promote_per_interval = 64;
    /// Demote a placed flow after this many consecutive intervals below
    /// promote_min_pps.
    unsigned demote_after_idle = 2;
  };

  struct ApplyResult {
    std::size_t promoted = 0;
    std::size_t demoted = 0;
    /// Promotions refused by the install callback (table full).
    std::size_t refused = 0;
  };

  /// True when `key` should be installed on `node` (the callback did the
  /// install and it succeeded); false leaves the flow unplaced.
  using InstallFn =
      std::function<bool(const telemetry::FlowKey& key, std::size_t node)>;
  using RemoveFn =
      std::function<void(const telemetry::FlowKey& key, std::size_t node)>;

  TierPlacer(Config config, std::size_t shards, std::size_t nodes);

  std::size_t shards() const { return trackers_.size(); }
  std::size_t nodes() const { return nodes_; }
  /// Owner shard of a tenant — must match the region's partition function.
  std::size_t shard_of(net::Vni vni) const;

  /// Interval start, per shard: decay the shard's sketch so estimates
  /// track recent rate. Safe to call concurrently across distinct shards.
  void begin_interval(std::size_t shard);

  /// Feeds one software-tier flow's interval packet rate into its shard's
  /// tracker. `shard` must be shard_of(key.vni).
  void observe(std::size_t shard, const telemetry::FlowKey& key,
               std::uint64_t pps);

  /// Sequential reduce-phase pass: demote idle placed flows, then promote
  /// the heaviest unplaced candidates (up to the per-interval budget).
  ApplyResult apply(const InstallFn& install, const RemoveFn& remove);

  /// DPU node a flow is currently placed on, if any (functional-path
  /// classification asks this per packet).
  std::optional<std::size_t> placement(const telemetry::FlowKey& key) const;

  std::size_t placed_count() const { return placements_.size(); }
  std::size_t placed_on(std::size_t node) const;

  /// Drops every placement on `node` (DPU failure: the table is gone, so
  /// the placer must forget too or it would never re-promote). Returns
  /// how many placements were dropped.
  std::size_t evict_node(std::size_t node);

  /// Drops one tenant's placements (controller mutation mirrored to the
  /// DPU evicted its flows). Returns how many were dropped.
  std::size_t evict_vni(net::Vni vni);

  const Config& config() const { return config_; }

 private:
  using FlowId = std::pair<net::Vni, net::FiveTuple>;

  struct Placement {
    std::size_t node = 0;
    /// Consecutive intervals with estimate < promote_min_pps.
    unsigned idle_intervals = 0;
  };

  Config config_;
  std::size_t nodes_;
  std::vector<telemetry::HeavyHitterTracker> trackers_;  // one per shard
  std::map<FlowId, Placement> placements_;  // ordered: deterministic apply
};

}  // namespace sf::dpu
