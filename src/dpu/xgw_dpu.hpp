// sf::dpu::XgwDpu — the DPU middle tier between XGW-H and XGW-x86
// (DESIGN.md §11).
//
// Gryphon-style gateways insert a rack of SmartNIC/DPU boxes between the
// Tofino and the software fleet: a DPU holds a few tens of thousands of
// exact-match flow entries in NIC SRAM (far more than the ASIC can spare
// for spillover, far fewer than x86 DRAM), and forwards a placed flow at
// single-digit-microsecond latency — roughly 4x the ASIC's pipeline delay
// and a fifth of an x86 core's per-packet cost. This class models one such
// box: a bounded exact-match flow table keyed (VNI, inner 5-tuple), where
// every entry carries a *pre-resolved* verdict (the action and rewritten
// outer destination the full lookup chain would have produced). A hit
// replays that verdict; a miss returns kFallbackToX86 and the region
// continues down the punt path exactly as if the DPU tier did not exist.
//
// The DPU never resolves flows itself — placement is the TierPlacer's job
// (elephants promoted from the sketch, mice demoted back out). That keeps
// the model honest about what a flow-offload NIC actually does: replay
// decisions made elsewhere.
//
// TableProgrammer is implemented as an *invalidation* surface: the
// controller mirrors every route/mapping mutation to the DPU nodes, and a
// mutation for a VNI evicts that VNI's placed flows — their cached verdict
// may now be stale, so the next packet walks the full chain again (and the
// placer re-promotes against fresh state). Same epoch discipline as the
// FlowCache, expressed as eager per-tenant eviction because the table is
// small and mutations are rare.
//
// Like sf::guard, the whole tier is double-gated: Region::Config::enable_dpu
// must be set AND the SF_DPU environment variable must not disable it.
// With either gate closed nothing is constructed, no counters register,
// and every artifact is byte-identical to a DPU-less build.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include "dataplane/gateway.hpp"
#include "dataplane/table_programmer.hpp"
#include "telemetry/registry.hpp"

namespace sf::dpu {

/// Process-wide kill switch: SF_DPU=0/off disables the DPU tier even when
/// a region config enables it (same latch discipline as SF_GUARD). Read
/// once per process.
bool dpu_enabled();

class XgwDpu : public dataplane::Gateway, public dataplane::TableProgrammer {
 public:
  struct Config {
    /// Bounded flow-table capacity (NIC SRAM exact-match entries).
    std::size_t flow_table_entries = 65536;
    /// Per-packet forwarding latency for a placed flow. Between the
    /// ASIC's ~2µs pipeline and the x86's ~40µs per-core cost.
    double base_latency_us = 8.0;
    /// Capacity ceilings, enforced fluidly by the region's interval
    /// reduce (like the XGW-H ceilings).
    double max_packet_rate_pps = 300e6;
    double max_throughput_bps = 800e9;
    /// Relative cost of one DPU node (ASIC-normalized; the bench's
    /// cost/latency frontier uses it).
    double cost_units = 4.0;
    /// Outer source IP stamped on forwarded packets.
    net::Ipv4Addr device_ip = net::Ipv4Addr(10, 0, 2, 1);
  };

  /// A placed flow's pre-resolved verdict.
  struct FlowEntry {
    dataplane::Action action = dataplane::Action::kForwardToNc;
    net::IpAddr outer_dst;
  };

  XgwDpu() : XgwDpu(Config{}) {}
  explicit XgwDpu(Config config);

  /// Gateway: replay the placed verdict, or kFallbackToX86 on a miss
  /// (and always while failed — a dead DPU is a transparent wire to x86).
  dataplane::Verdict process(const net::OverlayPacket& packet,
                             double now) override;

  // ---- placement surface (driven by the TierPlacer) ----------------------
  dataplane::TableOpStatus install_flow(net::Vni vni,
                                        const net::FiveTuple& tuple,
                                        FlowEntry entry);
  dataplane::TableOpStatus remove_flow(net::Vni vni,
                                       const net::FiveTuple& tuple);
  bool has_flow(net::Vni vni, const net::FiveTuple& tuple) const;
  std::size_t flow_count() const { return flows_.size(); }
  /// Flow-table fill fraction in [0, 1].
  double occupancy() const;

  // ---- TableProgrammer: controller-mirror invalidation hooks -------------
  // Every mirrored op evicts the mutated VNI's placed flows: the DPU holds
  // per-flow verdicts, so any table change under a tenant invalidates them.
  dataplane::BatchResult apply(const dataplane::TableOpBatch& batch) override;

  /// Evicts every placed flow of one tenant (controller mutation, tenant
  /// teardown). Returns how many entries were removed.
  std::size_t evict_vni(net::Vni vni);

  /// Chaos hook: a failed DPU loses its SRAM state — the table clears and
  /// every packet falls back until the placer re-promotes after recovery.
  void set_failed(bool failed);
  bool failed() const { return failed_; }

  telemetry::Registry& registry() { return *registry_; }
  const Config& config() const { return config_; }

 private:
  using FlowId = std::pair<net::Vni, net::FiveTuple>;

  Config config_;
  bool failed_ = false;
  std::map<FlowId, FlowEntry> flows_;  // ordered: deterministic iteration
  std::unique_ptr<telemetry::Registry> registry_;

  telemetry::Counter* ctr_packets_in_ = nullptr;
  telemetry::Counter* ctr_bytes_in_ = nullptr;
  telemetry::Counter* ctr_forwarded_ = nullptr;
  telemetry::Counter* ctr_misses_ = nullptr;
  telemetry::Counter* ctr_flow_installs_ = nullptr;
  telemetry::Counter* ctr_flow_removes_ = nullptr;
  telemetry::Counter* ctr_invalidations_ = nullptr;
  telemetry::Histogram* hist_latency_ = nullptr;
};

}  // namespace sf::dpu
