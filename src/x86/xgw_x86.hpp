// XGW-x86: the DPDK-style software gateway node (§2.2).
//
// Functionally it is the superset gateway: full VXLAN routing + VM-NC
// tables in DRAM (tables/route_table.hpp), the stateful SNAT engine, and
// the tunnel rewrite — everything XGW-H offloads lands here. Its weakness
// is the performance model: run-to-completion cores fed by RSS flow
// hashing, so heavy-hitter flows overload single cores (Figs. 4-7), which
// simulate_interval() reproduces.

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include <memory>

#include "dataplane/flow_cache.hpp"
#include "dataplane/gateway.hpp"
#include "dataplane/table_programmer.hpp"
#include "net/packet.hpp"
#include "rcu/epoch.hpp"
#include "rcu/rcu_exact_table.hpp"
#include "rcu/rcu_lpm.hpp"
#include "tables/entry.hpp"
#include "telemetry/registry.hpp"
#include "x86/cost_model.hpp"
#include "x86/rss.hpp"
#include "x86/snat.hpp"

namespace sf::x86 {

/// The software gateway's verdict: the unified dataplane fields plus the
/// SNAT binding when one was created.
struct X86Result : dataplane::Verdict {
  std::optional<SnatBinding> snat;
};

/// Offered load of one flow during a simulation interval.
struct FlowRate {
  net::FiveTuple tuple;
  double pps = 0;
  double bps = 0;
};

/// One CPU core's load during an interval.
struct CoreLoad {
  double offered_pps = 0;
  double processed_pps = 0;
  double dropped_pps = 0;
  double utilization = 0;  // offered / core capacity (can exceed 1)
  std::size_t flows = 0;
  double top1_pps = 0;  // heaviest flow on this core
  double top2_pps = 0;  // second heaviest
};

struct IntervalReport {
  std::vector<CoreLoad> cores;
  double offered_pps = 0;
  double offered_bps = 0;
  double dropped_pps = 0;
  double drop_rate = 0;  // dropped / offered (packets)
  double max_core_utilization = 0;
};

class XgwX86 : public dataplane::Gateway, public dataplane::TableProgrammer {
 public:
  struct Config {
    X86CostModel model;
    net::Ipv4Addr device_ip = net::Ipv4Addr(10, 0, 1, 1);
    SnatEngine::Config snat{
        {net::Ipv4Addr(203, 0, 113, 1)}, 1024, 65535, 300};
    std::uint32_t rss_seed = 0;
    /// Flow-cache slots in front of the route/mapping lookup chain
    /// (0 disables; default honors the SF_FLOW_CACHE gate). SNAT verdicts
    /// are never cached — the session table is stateful.
    std::size_t flow_cache_entries = dataplane::default_flow_cache_entries();
  };

  explicit XgwX86(Config config);

  // ---- controller-facing table API (dataplane::TableProgrammer) ----------

  /// Applies a batch transactionally at one new table version: every op
  /// of the batch becomes visible to forwarding at the same publish
  /// epoch, mid-interval, from any mutator thread (tables are RCU —
  /// rcu/rcu_lpm.hpp, DESIGN.md §13).
  dataplane::BatchResult apply(const dataplane::TableOpBatch& batch) override;

  /// Invalidates every cached verdict (cluster health/DR transitions call
  /// this on reroutes). Internally a versioned bump of the global cache
  /// generation; table ops instead bump only the mutated VNI's generation.
  void invalidate_fast_path();
  /// Monotone table version; grows with every mutation.
  std::uint64_t fast_path_generation() const { return seq_; }
  const dataplane::FlowCacheStats& flow_cache_stats() const {
    return flow_cache_.stats();
  }

  /// Latest published table version (the publish epoch of the last batch).
  std::uint64_t table_version() const { return seq_; }

  /// Forwarding reads the tables at this version; nullopt (default) reads
  /// the latest published version. The deterministic mid-interval replay
  /// sets it per packet to the packet's required version; values must be
  /// nondecreasing. Callable from the forwarding thread while the mutator
  /// thread applies batches.
  void set_lookup_seq(std::optional<std::uint64_t> seq) {
    lookup_seq_.store(seq.value_or(kLookupLatest),
                      std::memory_order_release);
  }

  /// Reclaims table versions below `keep_from`: promises that no future
  /// lookup will be pinned under it. Mutator-thread only; also runs
  /// automatically every few hundred mutations.
  void collect_garbage(std::uint64_t keep_from);

  /// Dead-but-unreclaimed nodes across the route/mapping tables (tests).
  std::size_t limbo_nodes() const {
    return routes_.limbo_size() + mappings_.limbo_size() +
           vni_gens_.limbo_size();
  }

  std::size_t route_count() const { return routes_.live_size(); }
  std::size_t mapping_count() const { return mappings_.live_size(); }

  /// Seconds the controller needs to install this node's current tables
  /// from scratch — the ">10 minutes" pain of §2.3.
  double full_install_seconds() const;

  // ---- functional data path (dataplane::Gateway) --------------------------

  /// Processes one packet with the SNAT-binding extra.
  X86Result forward(const net::OverlayPacket& packet, double now = 0);

  /// Punt-path entry: identical to forward() except the verdict is never
  /// admitted to this node's flow cache. Meter-degraded punts are
  /// transient overload spillover, not steady-state flows — caching them
  /// would let a shed tenant's packets evict legitimate fast-path entries
  /// (and the guard tests assert they never land in any cache).
  X86Result forward_punted(const net::OverlayPacket& packet, double now = 0);

  /// Gateway interface: forward() sliced to the unified verdict.
  dataplane::Verdict process(const net::OverlayPacket& packet,
                             double now) override {
    return forward(packet, now);
  }

  /// Hash-threaded batch form: derives each packet's flow-cache key from
  /// the precomputed RSS hash (`flow_hashes[i] == packets[i].inner.hash()`)
  /// and prefetches cache slots a few packets ahead. Byte-identical to
  /// looping process().
  void process_batch(std::span<const net::OverlayPacket> packets,
                     std::span<const std::uint64_t> flow_hashes, double now,
                     std::span<dataplane::Verdict> out) override;

  /// Index-list form the sharded engine feeds: same per-packet loop,
  /// striding the shared index list with packet/verdict/cache-slot
  /// lookahead. `flow_hashes` may be empty (tuples are then rehashed).
  void process_batch_indexed(std::span<const net::OverlayPacket> packets,
                             std::span<const std::uint64_t> flow_hashes,
                             std::span<const std::uint32_t> indices,
                             double now,
                             std::span<dataplane::Verdict> out) override;

  using dataplane::Gateway::process_batch;  // 3-arg + allocating forms

  /// Internet response path: a packet addressed to a SNAT binding is
  /// translated back and re-encapsulated toward the VM's NC.
  std::optional<net::OverlayPacket> process_response(
      const SnatBinding& binding, const net::IpAddr& peer_ip,
      std::uint16_t peer_port, std::uint16_t payload_size, double now);

  SnatEngine& snat() { return snat_; }
  const SnatEngine& snat() const { return snat_; }

  // ---- performance model ---------------------------------------------------

  /// Distributes the offered flows over cores via RSS and reports per-core
  /// load and drops for one interval.
  IntervalReport simulate_interval(std::span<const FlowRate> flows) const;

  const Config& config() const { return config_; }

  struct Telemetry {
    std::uint64_t packets_in = 0;
    std::uint64_t packets_forwarded = 0;
    std::uint64_t packets_snat = 0;
    std::uint64_t packets_dropped = 0;
  };
  const Telemetry& telemetry() const { return telemetry_; }

  /// This node's counter registry: packet/byte outcomes, table ops, SNAT
  /// session events and a latency histogram ("x86.*" names).
  telemetry::Registry& registry() { return *registry_; }
  const telemetry::Registry& registry() const { return *registry_; }

 private:
  struct VmNcKeyHasher {
    std::uint64_t operator()(const tables::VmNcKey& key) const {
      return net::hash_combine(net::mix64(key.vni),
                               net::hash_ip(key.vm_ip));
    }
  };

  /// Cached non-SNAT verdict: the action, the drop reason, and the outer
  /// rewrite target (outer_src is always this device's IP).
  struct CachedVerdict {
    dataplane::Action action = dataplane::Action::kDrop;
    dataplane::DropReason reason = dataplane::DropReason::kNone;
    net::IpAddr outer_dst;
  };

  /// `flow_hash`, when non-null, is the packet's precomputed tuple hash —
  /// the cache key derives from it instead of rehashing the 5-tuple
  /// (dataplane::make_flow_key guarantees both derivations agree).
  X86Result forward_impl(const net::OverlayPacket& packet, double now,
                         bool allow_cache,
                         const std::uint64_t* flow_hash = nullptr);

  // Mutator-side helpers (see apply()).
  dataplane::TableOpStatus apply_one(const dataplane::TableOp& op);
  void note_mutation(const dataplane::TableOp& op);
  void bump_generation(std::uint32_t gen_key);
  /// Composite flow-cache generation of `vni` as of table version `seq`
  /// (caller holds the reader pin).
  std::uint64_t effective_generation(net::Vni vni, std::uint64_t seq) const;

  /// Reserved vni_gens_ key holding the global (all-VNI) generation; VNIs
  /// are 24-bit, so it can never collide with a real one.
  static constexpr std::uint32_t kGlobalGenKey = 0xFFFFFFFFu;
  static constexpr std::uint64_t kLookupLatest =
      std::numeric_limits<std::uint64_t>::max();

  struct GenKeyHasher {
    std::uint64_t operator()(std::uint32_t key) const {
      return net::mix64(key);
    }
  };

  Config config_;
  rcu::EpochManager epoch_;
  rcu::RcuLpm<tables::VxlanRouteAction> routes_;
  rcu::RcuExactTable<tables::VmNcKey, tables::VmNcAction, VmNcKeyHasher>
      mappings_;
  /// Per-VNI flow-cache generations, versioned like the tables so a
  /// replayed packet reads the generation as of its pinned version.
  rcu::RcuExactTable<std::uint32_t, std::uint64_t, GenKeyHasher> vni_gens_;
  /// VNIs ever reached through a peer route (either side). Mutations on a
  /// peered VNI bump the global generation: a cached verdict may have
  /// walked across the peer hop, so per-VNI invalidation is not enough.
  std::unordered_set<net::Vni> peered_vnis_;
  mutable rcu::EpochManager::Reader reader_{epoch_};
  std::uint64_t seq_ = 0;             // mutator-owned table version
  std::uint64_t last_collect_seq_ = 0;
  std::atomic<std::uint64_t> lookup_seq_{kLookupLatest};
  SnatEngine snat_;
  RssIndirection rss_;
  Telemetry telemetry_;

  dataplane::FlowCache<CachedVerdict> flow_cache_;

  std::unique_ptr<telemetry::Registry> registry_;
  telemetry::Counter* ctr_packets_in_ = nullptr;
  telemetry::Counter* ctr_bytes_in_ = nullptr;
  telemetry::Counter* ctr_forwarded_ = nullptr;
  telemetry::Counter* ctr_snat_ = nullptr;
  telemetry::Counter* ctr_snat_failures_ = nullptr;
  telemetry::Counter* ctr_dropped_ = nullptr;
  telemetry::Counter* ctr_table_ops_ = nullptr;
  telemetry::Histogram* hist_latency_ = nullptr;
};

}  // namespace sf::x86
