#include "x86/rss.hpp"

#include <stdexcept>

#include "net/hash.hpp"

namespace sf::x86 {

RssIndirection::RssIndirection(unsigned queues, unsigned table_size,
                               std::uint32_t hash_seed)
    : queues_(queues), seed_(hash_seed) {
  if (queues == 0 || table_size == 0) {
    throw std::invalid_argument("RSS needs queues and table entries");
  }
  table_.resize(table_size);
  for (unsigned i = 0; i < table_size; ++i) table_[i] = i % queues;
}

unsigned RssIndirection::queue_for(const net::FiveTuple& tuple) const {
  // CRC is affine in its seed (reseeding XORs a constant), which would
  // make key rotation ineffective; mix the seed in non-linearly, as a
  // Toeplitz-keyed engine would.
  const std::uint64_t hash =
      net::mix64(tuple.rss_hash() ^ (std::uint64_t{seed_} << 32 | seed_));
  return table_[hash % table_.size()];
}

}  // namespace sf::x86
