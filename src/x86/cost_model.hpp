// XGW-x86 cost model: DPDK run-to-completion forwarding on Xeon cores.
//
// Calibrated to the paper's measurements: ~1 Mpps per core (§2.2), 25 Mpps
// per box with 100GbE (Fig. 18: line rate only above 512B packets), ~40 µs
// forwarding latency, and >10 minutes to install a full table set (§2.3).

#pragma once

#include <cstddef>

namespace sf::x86 {

struct X86CostModel {
  double cpu_ghz = 2.5;
  unsigned cores = 32;
  /// Amortized cycles to forward one packet (parse, VXLAN route, VM-NC,
  /// rewrite, TX) — run-to-completion.
  double cycles_per_packet = 3200;
  /// NIC line rate (bits per second).
  double nic_bps = 100e9;
  /// Light-load forwarding latency (kernel-bypass, but host RTT-scale).
  double base_latency_us = 38;
  /// Queueing latency added per 10% utilization above 50%.
  double queueing_latency_us = 4;
  /// Controller table-install throughput (entries per second per node).
  double table_install_entries_per_s = 3000;

  /// Packets per second one core sustains.
  double core_pps() const { return cpu_ghz * 1e9 / cycles_per_packet; }

  /// Box-level pps ceiling (all cores busy, perfect balance).
  double max_pps() const { return core_pps() * cores; }

  /// Throughput achievable at a given packet size: min(NIC, pps-bound).
  double throughput_bps(std::size_t packet_bytes) const {
    const double pps_bound =
        max_pps() * 8.0 * static_cast<double>(packet_bytes);
    return pps_bound < nic_bps ? pps_bound : nic_bps;
  }

  /// Latency at a given box utilization in [0, 1).
  double latency_us(double utilization) const {
    const double queued =
        utilization > 0.5 ? (utilization - 0.5) * 10.0 * queueing_latency_us
                          : 0.0;
    return base_latency_us + queued;
  }

  /// Seconds to install `entries` table entries from the controller.
  double table_install_seconds(std::size_t entries) const {
    return static_cast<double>(entries) / table_install_entries_per_s;
  }
};

}  // namespace sf::x86
