// Stateful SNAT engine (Fig. 11): maps an inner 5-tuple session to a
// (public IP, source port) pair so VMs without public addresses can reach
// the Internet. Session counts reach O(100M) in production — far beyond
// on-chip memory — which is why the SNAT table lives in XGW-x86's DRAM.
//
// The engine owns a pool of public IPs, allocates ports per IP, keeps the
// forward and reverse mappings (the response path arrives keyed by public
// IP/port), and expires idle sessions.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/hash.hpp"
#include "net/headers.hpp"

namespace sf::x86 {

struct SnatBinding {
  net::Ipv4Addr public_ip;
  std::uint16_t public_port = 0;

  friend bool operator==(const SnatBinding&, const SnatBinding&) = default;
};

class SnatEngine {
 public:
  struct Config {
    std::vector<net::Ipv4Addr> public_ips;
    std::uint16_t port_min = 1024;
    std::uint16_t port_max = 65535;
    /// Idle timeout before a session's binding is reclaimed.
    double session_timeout_s = 300;
  };

  struct Stats {
    std::size_t active_sessions = 0;
    std::size_t allocation_failures = 0;
    std::size_t expired_sessions = 0;
  };

  explicit SnatEngine(Config config);

  /// Translates an outbound session: returns the binding (existing or
  /// newly allocated), or nullopt when the pool is exhausted.
  std::optional<SnatBinding> translate(const net::FiveTuple& session,
                                       double now);

  /// Reverse path: finds the inner session for a response addressed to
  /// (public ip, public port, peer ip, peer port).
  std::optional<net::FiveTuple> reverse(const SnatBinding& binding,
                                        const net::IpAddr& peer_ip,
                                        std::uint16_t peer_port,
                                        double now);

  /// Reclaims sessions idle since before `now - timeout`.
  std::size_t expire(double now);

  Stats stats() const;

  /// Total bindings the pool can hold.
  std::size_t capacity() const;

 private:
  struct TupleHasher {
    std::uint64_t operator()(const net::FiveTuple& t) const {
      return t.hash();
    }
  };
  struct BindingKey {
    SnatBinding binding;
    friend bool operator==(const BindingKey&, const BindingKey&) = default;
  };
  struct BindingHasher {
    std::uint64_t operator()(const BindingKey& k) const {
      return net::hash_combine(net::mix64(k.binding.public_ip.value()),
                               net::mix64(k.binding.public_port));
    }
  };

  struct Session {
    SnatBinding binding;
    net::FiveTuple tuple;
    double last_used = 0;
  };

  std::optional<SnatBinding> allocate();
  void release(const SnatBinding& binding);

  Config config_;
  std::deque<SnatBinding> free_pool_;
  std::unordered_map<net::FiveTuple, std::size_t, TupleHasher> by_tuple_;
  std::unordered_map<BindingKey, std::size_t, BindingHasher> by_binding_;
  std::vector<Session> sessions_;
  std::vector<std::size_t> free_slots_;
  std::size_t allocation_failures_ = 0;
  std::size_t expired_ = 0;
};

}  // namespace sf::x86
