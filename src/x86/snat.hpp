// Stateful SNAT engine (Fig. 11): maps an inner 5-tuple session to a
// (public IP, source port) pair so VMs without public addresses can reach
// the Internet. Session counts reach O(100M) in production — far beyond
// on-chip memory — which is why the SNAT table lives in XGW-x86's DRAM.
//
// The engine owns a pool of public IPs and a *per-IP port block*: a
// session is hash-pinned to one external IP (so the fleet can shard
// reverse-path routes per IP) and allocates a port from that IP's block
// only. There is no cross-IP spill — when the pinned IP's block is empty
// the allocation fails with AllocFailure::kPortBlockExhausted even if
// other IPs still have free ports, exactly the failure mode a /32 SNAT
// pool shows in production. The engine keeps the forward and reverse
// mappings (the response path arrives keyed by public IP/port) and
// expires idle sessions, returning their ports to the owning block.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/hash.hpp"
#include "net/headers.hpp"

namespace sf::x86 {

struct SnatBinding {
  net::Ipv4Addr public_ip;
  std::uint16_t public_port = 0;

  friend bool operator==(const SnatBinding&, const SnatBinding&) = default;
};

/// Why translate() returned no binding.
enum class AllocFailure : std::uint8_t {
  kNone = 0,
  /// The session's hash-pinned external IP has no free port (the typed
  /// exhaustion the region surfaces as kSnatPortBlockExhausted).
  kPortBlockExhausted,
};

class SnatEngine {
 public:
  struct Config {
    std::vector<net::Ipv4Addr> public_ips;
    std::uint16_t port_min = 1024;
    std::uint16_t port_max = 65535;
    /// Idle timeout before a session's binding is reclaimed.
    double session_timeout_s = 300;
  };

  struct Stats {
    std::size_t active_sessions = 0;
    std::size_t allocation_failures = 0;
    std::size_t expired_sessions = 0;
    /// Subset of allocation_failures where the pinned IP's block was dry.
    /// (Currently the only failure mode, split out so operators can alarm
    /// on the per-IP exhaustion specifically.)
    std::size_t port_block_exhaustions = 0;
  };

  explicit SnatEngine(Config config);

  /// Translates an outbound session: returns the binding (existing or
  /// newly allocated), or nullopt when the session's port block is
  /// exhausted. When `failure` is non-null it receives the typed reason
  /// (kNone on success).
  std::optional<SnatBinding> translate(const net::FiveTuple& session,
                                       double now,
                                       AllocFailure* failure = nullptr);

  /// Reverse path: finds the inner session for a response addressed to
  /// (public ip, public port, peer ip, peer port).
  std::optional<net::FiveTuple> reverse(const SnatBinding& binding,
                                        const net::IpAddr& peer_ip,
                                        std::uint16_t peer_port,
                                        double now);

  /// Reclaims sessions idle since before `now - timeout`.
  std::size_t expire(double now);

  Stats stats() const;

  /// Total bindings the pool can hold.
  std::size_t capacity() const;

  /// The external IP this session is pinned to (pure hash; stable).
  net::Ipv4Addr ip_for(const net::FiveTuple& session) const;

  /// Free ports remaining in one external IP's block.
  std::size_t free_ports(net::Ipv4Addr public_ip) const;

 private:
  struct TupleHasher {
    std::uint64_t operator()(const net::FiveTuple& t) const {
      return t.hash();
    }
  };
  struct BindingKey {
    SnatBinding binding;
    friend bool operator==(const BindingKey&, const BindingKey&) = default;
  };
  struct BindingHasher {
    std::uint64_t operator()(const BindingKey& k) const {
      return net::hash_combine(net::mix64(k.binding.public_ip.value()),
                               net::mix64(k.binding.public_port));
    }
  };

  struct Session {
    SnatBinding binding;
    net::FiveTuple tuple;
    double last_used = 0;
  };

  std::size_t ip_index_for(const net::FiveTuple& session) const;
  std::optional<SnatBinding> allocate(const net::FiveTuple& session);
  void release(const SnatBinding& binding);

  Config config_;
  /// Per-IP free-port blocks, parallel to config_.public_ips. Ports start
  /// ascending and recycle FIFO (pop front, released ports push back) —
  /// with a single public IP this is byte-identical to the pre-block
  /// global pool.
  std::vector<std::deque<std::uint16_t>> free_ports_;
  std::unordered_map<std::uint32_t, std::size_t> ip_index_;  // value() -> idx
  std::unordered_map<net::FiveTuple, std::size_t, TupleHasher> by_tuple_;
  std::unordered_map<BindingKey, std::size_t, BindingHasher> by_binding_;
  std::vector<Session> sessions_;
  std::vector<std::size_t> free_slots_;
  std::size_t allocation_failures_ = 0;
  std::size_t port_block_exhaustions_ = 0;
  std::size_t expired_ = 0;
};

}  // namespace sf::x86
