// X86CostModel is header-only (x86/cost_model.hpp).

#include "x86/cost_model.hpp"

namespace sf::x86 {

static_assert(X86CostModel{}.cores == 32);

}  // namespace sf::x86
