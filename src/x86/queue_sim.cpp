#include "x86/queue_sim.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "workload/rng.hpp"

namespace sf::x86 {

CoreQueueSim::Result CoreQueueSim::run(double offered_pps,
                                       double duration_s,
                                       std::uint64_t seed) const {
  if (offered_pps <= 0 || duration_s <= 0) {
    throw std::invalid_argument("CoreQueueSim: bad load parameters");
  }
  workload::Rng rng(seed);
  const double service_time = 1.0 / config_.service_pps;

  Result result;
  std::vector<double> sojourns;
  std::deque<double> queue;  // arrival timestamps of queued packets
  double clock = 0;
  double server_free_at = 0;

  while (clock < duration_s) {
    clock += rng.exponential(1.0 / offered_pps);  // Poisson arrivals
    ++result.packets_offered;

    // Drain every packet whose service completes before this arrival.
    while (!queue.empty()) {
      const double start = std::max(server_free_at, queue.front());
      if (start + service_time > clock) break;
      sojourns.push_back(start + service_time - queue.front());
      server_free_at = start + service_time;
      queue.pop_front();
    }

    if (queue.size() >= config_.ring_slots) {
      ++result.packets_dropped;  // RX ring overflow: drop-tail
      continue;
    }
    queue.push_back(clock);
  }
  // Flush the queue at the end of the run.
  while (!queue.empty()) {
    const double start = std::max(server_free_at, queue.front());
    sojourns.push_back(start + service_time - queue.front());
    server_free_at = start + service_time;
    queue.pop_front();
  }

  if (!sojourns.empty()) {
    std::sort(sojourns.begin(), sojourns.end());
    double sum = 0;
    for (double s : sojourns) sum += s;
    const auto at = [&](double q) {
      return sojourns[std::min(
          sojourns.size() - 1,
          static_cast<std::size_t>(q * static_cast<double>(
                                           sojourns.size())))];
    };
    result.mean_latency_us =
        config_.base_latency_us + sum / static_cast<double>(sojourns.size()) * 1e6;
    result.p50_latency_us = config_.base_latency_us + at(0.50) * 1e6;
    result.p99_latency_us = config_.base_latency_us + at(0.99) * 1e6;
  }
  result.drop_rate =
      result.packets_offered > 0
          ? static_cast<double>(result.packets_dropped) /
                static_cast<double>(result.packets_offered)
          : 0;
  return result;
}

}  // namespace sf::x86
