#include "x86/xgw_x86.hpp"

#include <algorithm>
#include <stdexcept>

namespace sf::x86 {

XgwX86::XgwX86(Config config)
    : config_(config),
      routes_(/*bucket_hint=*/4096),
      mappings_(/*bucket_hint=*/4096),
      vni_gens_(/*bucket_hint=*/256),
      snat_(config.snat),
      rss_(config.model.cores, 128, config.rss_seed),
      flow_cache_(dataplane::FlowCache<CachedVerdict>::Config{
          config.flow_cache_entries}),
      registry_(std::make_unique<telemetry::Registry>()) {
  ctr_packets_in_ = &registry_->counter("x86.packets_in");
  ctr_bytes_in_ = &registry_->counter("x86.bytes_in");
  ctr_forwarded_ = &registry_->counter("x86.packets_forwarded");
  ctr_snat_ = &registry_->counter("x86.packets_snat");
  ctr_snat_failures_ = &registry_->counter("x86.snat_failures");
  ctr_dropped_ = &registry_->counter("x86.packets_dropped");
  ctr_table_ops_ = &registry_->counter("x86.table_ops");
  hist_latency_ = &registry_->histogram(
      "x86.latency_us", telemetry::Histogram::Config{
                            /*min_value=*/1.0, /*growth=*/2.0,
                            /*buckets=*/16, /*reservoir=*/256});
}

dataplane::BatchResult XgwX86::apply(const dataplane::TableOpBatch& batch) {
  dataplane::BatchResult result;
  if (batch.empty()) {
    result.publish_epoch = seq_;
    return result;
  }
  // The whole batch lands at one new version: forwarding observes either
  // none of it or all of it, never a partial transaction.
  ++seq_;
  for (const dataplane::TableOp& op : batch.ops) {
    result.record(apply_one(op), seq_);
  }
  epoch_.publish(seq_);
  // Steady-state reclamation: versions below the forwarding floor are
  // unreachable; sweep every few hundred mutations.
  if (seq_ - last_collect_seq_ >= 512) {
    const std::uint64_t floor =
        lookup_seq_.load(std::memory_order_acquire);
    collect_garbage(floor == kLookupLatest ? seq_ : floor);
  }
  return result;
}

dataplane::TableOpStatus XgwX86::apply_one(const dataplane::TableOp& op) {
  ctr_table_ops_->add();
  note_mutation(op);
  switch (op.kind) {
    case dataplane::TableOp::Kind::kAddRoute:
      return routes_.insert(op.vni, op.prefix, op.route_action, seq_)
                 ? dataplane::TableOpStatus::kOk
                 : dataplane::TableOpStatus::kDuplicate;
    case dataplane::TableOp::Kind::kDelRoute:
      return routes_.erase(op.vni, op.prefix, seq_)
                 ? dataplane::TableOpStatus::kOk
                 : dataplane::TableOpStatus::kNotFound;
    case dataplane::TableOp::Kind::kAddMapping:
      return mappings_.insert(op.mapping_key, op.mapping_action, seq_)
                 ? dataplane::TableOpStatus::kOk
                 : dataplane::TableOpStatus::kDuplicate;
    case dataplane::TableOp::Kind::kDelMapping:
      return mappings_.erase(op.mapping_key, seq_)
                 ? dataplane::TableOpStatus::kOk
                 : dataplane::TableOpStatus::kNotFound;
  }
  return dataplane::TableOpStatus::kNotFound;
}

void XgwX86::note_mutation(const dataplane::TableOp& op) {
  if (op.kind == dataplane::TableOp::Kind::kAddRoute &&
      op.route_action.scope == tables::RouteScope::kPeer) {
    // Verdicts in either VNI may now cross the peer hop; both escalate to
    // the global generation, permanently (a later non-peer mutation can
    // still sit under a cached cross-VNI verdict).
    peered_vnis_.insert(op.vni);
    peered_vnis_.insert(op.route_action.next_hop_vni);
    bump_generation(kGlobalGenKey);
    return;
  }
  if (peered_vnis_.count(op.vni) > 0) {
    bump_generation(kGlobalGenKey);
  } else {
    bump_generation(static_cast<std::uint32_t>(op.vni));
  }
}

void XgwX86::bump_generation(std::uint32_t gen_key) {
  const std::uint64_t* current = vni_gens_.find_latest(gen_key);
  vni_gens_.insert(gen_key, (current != nullptr ? *current : 0) + 1, seq_);
}

std::uint64_t XgwX86::effective_generation(net::Vni vni,
                                           std::uint64_t seq) const {
  const std::uint64_t* global = vni_gens_.lookup(kGlobalGenKey, seq);
  const std::uint64_t* local =
      vni_gens_.lookup(static_cast<std::uint32_t>(vni), seq);
  return ((global != nullptr ? *global : 0) << 32) |
         ((local != nullptr ? *local : 0) & 0xFFFFFFFFu);
}

void XgwX86::invalidate_fast_path() {
  ++seq_;
  bump_generation(kGlobalGenKey);
  epoch_.publish(seq_);
}

void XgwX86::collect_garbage(std::uint64_t keep_from) {
  routes_.collect(keep_from, epoch_);
  mappings_.collect(keep_from, epoch_);
  vni_gens_.collect(keep_from, epoch_);
  last_collect_seq_ = seq_;
}

double XgwX86::full_install_seconds() const {
  return config_.model.table_install_seconds(route_count() +
                                             mapping_count());
}

X86Result XgwX86::forward(const net::OverlayPacket& packet, double now) {
  return forward_impl(packet, now, /*allow_cache=*/true);
}

X86Result XgwX86::forward_punted(const net::OverlayPacket& packet,
                                 double now) {
  return forward_impl(packet, now, /*allow_cache=*/false);
}

void XgwX86::process_batch(std::span<const net::OverlayPacket> packets,
                           std::span<const std::uint64_t> flow_hashes,
                           double now, std::span<dataplane::Verdict> out) {
  if (flow_hashes.size() != packets.size()) {
    throw std::invalid_argument(
        "process_batch: flow_hashes.size() must equal packets.size()");
  }
  if (out.size() < packets.size()) {
    throw std::invalid_argument(
        "process_batch: output span smaller than the batch");
  }
  // Run-to-completion per packet (the SNAT engine and the RCU pin are
  // inherently sequential), but with the batch's lookahead: each packet's
  // cache slot is prefetched a few packets before its turn.
  constexpr std::size_t kAhead = 8;
  const bool cached = flow_cache_.enabled();
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (cached && i + kAhead < packets.size()) {
      flow_cache_.prefetch(dataplane::make_flow_key(
          packets[i + kAhead].vni, flow_hashes[i + kAhead]));
    }
    out[i] = forward_impl(packets[i], now, /*allow_cache=*/true,
                          &flow_hashes[i]);
  }
}

void XgwX86::process_batch_indexed(std::span<const net::OverlayPacket> packets,
                                   std::span<const std::uint64_t> flow_hashes,
                                   std::span<const std::uint32_t> indices,
                                   double now,
                                   std::span<dataplane::Verdict> out) {
  if (out.size() < packets.size()) {
    throw std::invalid_argument(
        "process_batch_indexed: output span smaller than the packet array");
  }
  // Same run-to-completion loop as the contiguous form, striding the
  // shared index list: packet, verdict slot and cache slot of index
  // indices[k + kAhead] are all requested while packet indices[k] runs.
  constexpr std::size_t kAhead = 8;
  const bool cached = flow_cache_.enabled();
  const bool hashed = !flow_hashes.empty();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    if (k + kAhead < indices.size()) {
      const std::uint32_t ahead = indices[k + kAhead];
      __builtin_prefetch(&packets[ahead]);
      __builtin_prefetch(&out[ahead], 1);
      if (cached && hashed) {
        flow_cache_.prefetch(
            dataplane::make_flow_key(packets[ahead].vni, flow_hashes[ahead]));
      }
    }
    const std::uint32_t i = indices[k];
    out[i] = forward_impl(packets[i], now, /*allow_cache=*/true,
                          hashed ? &flow_hashes[i] : nullptr);
  }
}

X86Result XgwX86::forward_impl(const net::OverlayPacket& packet, double now,
                               bool allow_cache,
                               const std::uint64_t* flow_hash) {
  ++telemetry_.packets_in;
  ctr_packets_in_->add();
  ctr_bytes_in_->add(packet.wire_size());
  X86Result result;
  result.packet = packet;
  result.software_path = true;
  result.latency_us = config_.model.latency_us(0.0);
  hist_latency_->record(result.latency_us);

  // Shared epilogues — the slow path lands here after the lookup chain,
  // and a cache hit replays the same bumps without walking the chain.
  auto drop = [&](dataplane::DropReason reason) -> X86Result& {
    ++telemetry_.packets_dropped;
    ctr_dropped_->add();
    result.drop_reason = reason;
    return result;
  };
  auto forward_to = [&](dataplane::Action action,
                        const net::IpAddr& outer_dst) -> X86Result& {
    result.packet.outer_src_ip = net::IpAddr(config_.device_ip);
    result.packet.outer_dst_ip = outer_dst;
    result.action = action;
    ++telemetry_.packets_forwarded;
    ctr_forwarded_->add();
    return result;
  };

  // Pin the table version this packet reads: either the replay-required
  // version (deterministic mid-interval interleave) or whatever the
  // mutator last published. Everything below — cache generation, route
  // walk, mapping probe — observes exactly that version.
  const std::uint64_t want = lookup_seq_.load(std::memory_order_acquire);
  std::uint64_t pin_seq;
  if (want == kLookupLatest) {
    pin_seq = reader_.pin_latest();
  } else {
    reader_.pin(want);
    pin_seq = want;
  }
  struct Unpin {
    rcu::EpochManager::Reader& reader;
    ~Unpin() { reader.unpin(); }
  } unpin_guard{reader_};

  // Fast path: the stateless outcomes (routes + mappings are pure table
  // functions of the flow) replay from the cache. SNAT never caches, and
  // punted packets (allow_cache == false) neither probe nor fill — a shed
  // tenant's spillover must not touch the fast path at all.
  const bool cacheable = allow_cache && flow_cache_.enabled();
  dataplane::FlowKey key;
  std::uint64_t generation = 0;
  if (cacheable) {
    key = flow_hash != nullptr
              ? dataplane::make_flow_key(packet.vni, *flow_hash)
              : dataplane::make_flow_key(packet.vni, packet.inner);
    generation = effective_generation(packet.vni, pin_seq);
    if (const CachedVerdict* hit = flow_cache_.find(key, generation)) {
      return hit->action == dataplane::Action::kDrop
                 ? drop(hit->reason)
                 : forward_to(hit->action, hit->outer_dst);
    }
  }
  // Second-miss admission: see FlowCache::note_miss.
  const bool capture = cacheable && flow_cache_.note_miss(key);
  auto remember = [&](X86Result& r) -> X86Result& {
    if (capture) {
      flow_cache_.insert(
          key, generation,
          CachedVerdict{r.action, r.drop_reason, r.packet.outer_dst_ip});
    }
    return r;
  };

  net::Vni vni = packet.vni;
  const tables::VxlanRouteAction* route = nullptr;
  for (int hop = 0; hop < 4; ++hop) {
    route = routes_.lookup(vni, packet.inner.dst, pin_seq);
    if (route == nullptr || route->scope != tables::RouteScope::kPeer) break;
    vni = route->next_hop_vni;
  }
  if (route == nullptr) {
    return remember(drop(dataplane::DropReason::kNoRoute));
  }

  switch (route->scope) {
    case tables::RouteScope::kLocal: {
      const tables::VmNcAction* mapping =
          mappings_.lookup(tables::VmNcKey{vni, packet.inner.dst}, pin_seq);
      if (mapping == nullptr) {
        return remember(drop(dataplane::DropReason::kNoVmNcMapping));
      }
      return remember(forward_to(dataplane::Action::kForwardToNc,
                                 net::IpAddr(mapping->nc_ip)));
    }
    case tables::RouteScope::kIdc:
    case tables::RouteScope::kCrossRegion:
      return remember(forward_to(dataplane::Action::kForwardTunnel,
                                 net::IpAddr(route->remote_endpoint)));
    case tables::RouteScope::kInternet: {
      AllocFailure failure = AllocFailure::kNone;
      auto binding = snat_.translate(packet.inner, now, &failure);
      if (!binding) {
        ++telemetry_.packets_dropped;
        ctr_dropped_->add();
        ctr_snat_failures_->add();
        if (failure == AllocFailure::kPortBlockExhausted) {
          // Lazily registered: a node that never exhausts a block keeps
          // its telemetry snapshot byte-identical to before this counter
          // existed.
          registry_->counter("x86.snat_port_block_exhausted").add();
          result.drop_reason =
              dataplane::DropReason::kSnatPortBlockExhausted;
        } else {
          result.drop_reason = dataplane::DropReason::kSnatPoolExhausted;
        }
        return result;
      }
      // Decap: the packet leaves as plain IP with the public source.
      result.packet.vni = 0;
      result.packet.inner.src = net::IpAddr(binding->public_ip);
      result.packet.inner.src_port = binding->public_port;
      result.packet.outer_src_ip = net::IpAddr(config_.device_ip);
      result.packet.outer_dst_ip = packet.inner.dst;
      result.snat = binding;
      result.action = dataplane::Action::kSnatToInternet;
      ++telemetry_.packets_snat;
      ctr_snat_->add();
      return result;
    }
    case tables::RouteScope::kPeer:
      return remember(drop(dataplane::DropReason::kPeerResolutionLoop));
  }
  return remember(drop(dataplane::DropReason::kUnhandledScope));
}

std::optional<net::OverlayPacket> XgwX86::process_response(
    const SnatBinding& binding, const net::IpAddr& peer_ip,
    std::uint16_t peer_port, std::uint16_t payload_size, double now) {
  auto session = snat_.reverse(binding, peer_ip, peer_port, now);
  if (!session) return std::nullopt;

  // The original outbound session tells us the VM; find its NC. The SNAT
  // session was created from a packet whose resolved VNI we do not store,
  // so scan by the session's source VM across installed mappings — the
  // production system keeps the VNI in the session; we keep it simple by
  // storing sessions per (vni) in the tuple's src, which is unique within
  // the gateway's mapping table for this model.
  std::optional<net::OverlayPacket> reply;
  mappings_.for_each_live([&](const tables::VmNcKey& key,
                              const tables::VmNcAction& action) {
    if (reply.has_value() || key.vm_ip != session->src) return;
    net::OverlayPacket packet;
    packet.vni = key.vni;
    packet.inner.src = peer_ip;
    packet.inner.src_port = peer_port;
    packet.inner.dst = session->src;
    packet.inner.dst_port = session->src_port;
    packet.inner.proto = session->proto;
    packet.payload_size = payload_size;
    packet.outer_src_ip = net::IpAddr(config_.device_ip);
    packet.outer_dst_ip = net::IpAddr(action.nc_ip);
    reply = packet;
  });
  return reply;
}

IntervalReport XgwX86::simulate_interval(
    std::span<const FlowRate> flows) const {
  IntervalReport report;
  report.cores.resize(config_.model.cores);

  for (const FlowRate& flow : flows) {
    CoreLoad& core = report.cores[rss_.queue_for(flow.tuple)];
    core.offered_pps += flow.pps;
    ++core.flows;
    if (flow.pps > core.top1_pps) {
      core.top2_pps = core.top1_pps;
      core.top1_pps = flow.pps;
    } else if (flow.pps > core.top2_pps) {
      core.top2_pps = flow.pps;
    }
    report.offered_pps += flow.pps;
    report.offered_bps += flow.bps;
  }

  const double capacity = config_.model.core_pps();
  for (CoreLoad& core : report.cores) {
    core.processed_pps = std::min(core.offered_pps, capacity);
    core.dropped_pps = core.offered_pps - core.processed_pps;
    core.utilization = core.offered_pps / capacity;
    report.dropped_pps += core.dropped_pps;
    report.max_core_utilization =
        std::max(report.max_core_utilization, core.utilization);
  }
  report.drop_rate =
      report.offered_pps > 0 ? report.dropped_pps / report.offered_pps : 0;
  return report;
}

}  // namespace sf::x86
