#include "x86/xgw_x86.hpp"

#include <algorithm>

namespace sf::x86 {

XgwX86::XgwX86(Config config)
    : config_(config),
      snat_(config.snat),
      rss_(config.model.cores, 128, config.rss_seed),
      flow_cache_(dataplane::FlowCache<CachedVerdict>::Config{
          config.flow_cache_entries}),
      registry_(std::make_unique<telemetry::Registry>()) {
  ctr_packets_in_ = &registry_->counter("x86.packets_in");
  ctr_bytes_in_ = &registry_->counter("x86.bytes_in");
  ctr_forwarded_ = &registry_->counter("x86.packets_forwarded");
  ctr_snat_ = &registry_->counter("x86.packets_snat");
  ctr_snat_failures_ = &registry_->counter("x86.snat_failures");
  ctr_dropped_ = &registry_->counter("x86.packets_dropped");
  ctr_table_ops_ = &registry_->counter("x86.table_ops");
  hist_latency_ = &registry_->histogram(
      "x86.latency_us", telemetry::Histogram::Config{
                            /*min_value=*/1.0, /*growth=*/2.0,
                            /*buckets=*/16, /*reservoir=*/256});
}

dataplane::TableOpStatus XgwX86::install_route(
    net::Vni vni, const net::IpPrefix& prefix,
    tables::VxlanRouteAction action) {
  ctr_table_ops_->add();
  invalidate_fast_path();
  return routes_.insert(vni, prefix, action)
             ? dataplane::TableOpStatus::kOk
             : dataplane::TableOpStatus::kDuplicate;
}

dataplane::TableOpStatus XgwX86::remove_route(net::Vni vni,
                                              const net::IpPrefix& prefix) {
  ctr_table_ops_->add();
  invalidate_fast_path();
  return routes_.erase(vni, prefix) ? dataplane::TableOpStatus::kOk
                                    : dataplane::TableOpStatus::kNotFound;
}

dataplane::TableOpStatus XgwX86::install_mapping(const tables::VmNcKey& key,
                                                 tables::VmNcAction action) {
  ctr_table_ops_->add();
  invalidate_fast_path();
  return mappings_.insert_or_assign(key, action).second
             ? dataplane::TableOpStatus::kOk
             : dataplane::TableOpStatus::kDuplicate;
}

dataplane::TableOpStatus XgwX86::remove_mapping(const tables::VmNcKey& key) {
  ctr_table_ops_->add();
  invalidate_fast_path();
  return mappings_.erase(key) > 0 ? dataplane::TableOpStatus::kOk
                                  : dataplane::TableOpStatus::kNotFound;
}

double XgwX86::full_install_seconds() const {
  return config_.model.table_install_seconds(route_count() +
                                             mapping_count());
}

X86Result XgwX86::forward(const net::OverlayPacket& packet, double now) {
  return forward_impl(packet, now, /*allow_cache=*/true);
}

X86Result XgwX86::forward_punted(const net::OverlayPacket& packet,
                                 double now) {
  return forward_impl(packet, now, /*allow_cache=*/false);
}

X86Result XgwX86::forward_impl(const net::OverlayPacket& packet, double now,
                               bool allow_cache) {
  ++telemetry_.packets_in;
  ctr_packets_in_->add();
  ctr_bytes_in_->add(packet.wire_size());
  X86Result result;
  result.packet = packet;
  result.software_path = true;
  result.latency_us = config_.model.latency_us(0.0);
  hist_latency_->record(result.latency_us);

  // Shared epilogues — the slow path lands here after the lookup chain,
  // and a cache hit replays the same bumps without walking the chain.
  auto drop = [&](dataplane::DropReason reason) -> X86Result& {
    ++telemetry_.packets_dropped;
    ctr_dropped_->add();
    result.drop_reason = reason;
    return result;
  };
  auto forward_to = [&](dataplane::Action action,
                        const net::IpAddr& outer_dst) -> X86Result& {
    result.packet.outer_src_ip = net::IpAddr(config_.device_ip);
    result.packet.outer_dst_ip = outer_dst;
    result.action = action;
    ++telemetry_.packets_forwarded;
    ctr_forwarded_->add();
    return result;
  };

  // Fast path: the stateless outcomes (routes + mappings are pure table
  // functions of the flow) replay from the cache. SNAT never caches, and
  // punted packets (allow_cache == false) neither probe nor fill — a shed
  // tenant's spillover must not touch the fast path at all.
  const bool cacheable = allow_cache && flow_cache_.enabled();
  dataplane::FlowKey key;
  if (cacheable) {
    key = dataplane::make_flow_key(packet.vni, packet.inner);
    if (const CachedVerdict* hit = flow_cache_.find(key, table_generation_)) {
      return hit->action == dataplane::Action::kDrop
                 ? drop(hit->reason)
                 : forward_to(hit->action, hit->outer_dst);
    }
  }
  // Second-miss admission: see FlowCache::note_miss.
  const bool capture = cacheable && flow_cache_.note_miss(key);
  auto remember = [&](X86Result& r) -> X86Result& {
    if (capture) {
      flow_cache_.insert(
          key, table_generation_,
          CachedVerdict{r.action, r.drop_reason, r.packet.outer_dst_ip});
    }
    return r;
  };

  net::Vni vni = packet.vni;
  std::optional<tables::VxlanRouteAction> route;
  for (int hop = 0; hop < 4; ++hop) {
    route = routes_.lookup(vni, packet.inner.dst);
    if (!route || route->scope != tables::RouteScope::kPeer) break;
    vni = route->next_hop_vni;
  }
  if (!route) {
    return remember(drop(dataplane::DropReason::kNoRoute));
  }

  switch (route->scope) {
    case tables::RouteScope::kLocal: {
      auto it = mappings_.find(tables::VmNcKey{vni, packet.inner.dst});
      if (it == mappings_.end()) {
        return remember(drop(dataplane::DropReason::kNoVmNcMapping));
      }
      return remember(forward_to(dataplane::Action::kForwardToNc,
                                 net::IpAddr(it->second.nc_ip)));
    }
    case tables::RouteScope::kIdc:
    case tables::RouteScope::kCrossRegion:
      return remember(forward_to(dataplane::Action::kForwardTunnel,
                                 net::IpAddr(route->remote_endpoint)));
    case tables::RouteScope::kInternet: {
      AllocFailure failure = AllocFailure::kNone;
      auto binding = snat_.translate(packet.inner, now, &failure);
      if (!binding) {
        ++telemetry_.packets_dropped;
        ctr_dropped_->add();
        ctr_snat_failures_->add();
        if (failure == AllocFailure::kPortBlockExhausted) {
          // Lazily registered: a node that never exhausts a block keeps
          // its telemetry snapshot byte-identical to before this counter
          // existed.
          registry_->counter("x86.snat_port_block_exhausted").add();
          result.drop_reason =
              dataplane::DropReason::kSnatPortBlockExhausted;
        } else {
          result.drop_reason = dataplane::DropReason::kSnatPoolExhausted;
        }
        return result;
      }
      // Decap: the packet leaves as plain IP with the public source.
      result.packet.vni = 0;
      result.packet.inner.src = net::IpAddr(binding->public_ip);
      result.packet.inner.src_port = binding->public_port;
      result.packet.outer_src_ip = net::IpAddr(config_.device_ip);
      result.packet.outer_dst_ip = packet.inner.dst;
      result.snat = binding;
      result.action = dataplane::Action::kSnatToInternet;
      ++telemetry_.packets_snat;
      ctr_snat_->add();
      return result;
    }
    case tables::RouteScope::kPeer:
      return remember(drop(dataplane::DropReason::kPeerResolutionLoop));
  }
  return remember(drop(dataplane::DropReason::kUnhandledScope));
}

std::optional<net::OverlayPacket> XgwX86::process_response(
    const SnatBinding& binding, const net::IpAddr& peer_ip,
    std::uint16_t peer_port, std::uint16_t payload_size, double now) {
  auto session = snat_.reverse(binding, peer_ip, peer_port, now);
  if (!session) return std::nullopt;

  // The original outbound session tells us the VM; find its NC. The SNAT
  // session was created from a packet whose resolved VNI we do not store,
  // so scan by the session's source VM across installed mappings — the
  // production system keeps the VNI in the session; we keep it simple by
  // storing sessions per (vni) in the tuple's src, which is unique within
  // the gateway's mapping table for this model.
  for (const auto& [key, action] : mappings_) {
    if (key.vm_ip == session->src) {
      net::OverlayPacket packet;
      packet.vni = key.vni;
      packet.inner.src = peer_ip;
      packet.inner.src_port = peer_port;
      packet.inner.dst = session->src;
      packet.inner.dst_port = session->src_port;
      packet.inner.proto = session->proto;
      packet.payload_size = payload_size;
      packet.outer_src_ip = net::IpAddr(config_.device_ip);
      packet.outer_dst_ip = net::IpAddr(action.nc_ip);
      return packet;
    }
  }
  return std::nullopt;
}

IntervalReport XgwX86::simulate_interval(
    std::span<const FlowRate> flows) const {
  IntervalReport report;
  report.cores.resize(config_.model.cores);

  for (const FlowRate& flow : flows) {
    CoreLoad& core = report.cores[rss_.queue_for(flow.tuple)];
    core.offered_pps += flow.pps;
    ++core.flows;
    if (flow.pps > core.top1_pps) {
      core.top2_pps = core.top1_pps;
      core.top1_pps = flow.pps;
    } else if (flow.pps > core.top2_pps) {
      core.top2_pps = flow.pps;
    }
    report.offered_pps += flow.pps;
    report.offered_bps += flow.bps;
  }

  const double capacity = config_.model.core_pps();
  for (CoreLoad& core : report.cores) {
    core.processed_pps = std::min(core.offered_pps, capacity);
    core.dropped_pps = core.offered_pps - core.processed_pps;
    core.utilization = core.offered_pps / capacity;
    report.dropped_pps += core.dropped_pps;
    report.max_core_utilization =
        std::max(report.max_core_utilization, core.utilization);
  }
  report.drop_rate =
      report.offered_pps > 0 ? report.dropped_pps / report.offered_pps : 0;
  return report;
}

}  // namespace sf::x86
