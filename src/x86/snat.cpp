#include "x86/snat.hpp"

#include <stdexcept>

namespace sf::x86 {

SnatEngine::SnatEngine(Config config) : config_(std::move(config)) {
  if (config_.public_ips.empty()) {
    throw std::invalid_argument("SNAT needs at least one public IP");
  }
  if (config_.port_min > config_.port_max) {
    throw std::invalid_argument("SNAT port range is inverted");
  }
  for (net::Ipv4Addr ip : config_.public_ips) {
    for (std::uint32_t port = config_.port_min; port <= config_.port_max;
         ++port) {
      free_pool_.push_back(
          SnatBinding{ip, static_cast<std::uint16_t>(port)});
    }
  }
}

std::optional<SnatBinding> SnatEngine::allocate() {
  if (free_pool_.empty()) return std::nullopt;
  SnatBinding binding = free_pool_.front();
  free_pool_.pop_front();
  return binding;
}

void SnatEngine::release(const SnatBinding& binding) {
  free_pool_.push_back(binding);
}

std::optional<SnatBinding> SnatEngine::translate(
    const net::FiveTuple& session, double now) {
  if (auto it = by_tuple_.find(session); it != by_tuple_.end()) {
    Session& s = sessions_[it->second];
    s.last_used = now;
    return s.binding;
  }
  auto binding = allocate();
  if (!binding) {
    ++allocation_failures_;
    return std::nullopt;
  }
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    sessions_[slot] = Session{*binding, session, now};
  } else {
    slot = sessions_.size();
    sessions_.push_back(Session{*binding, session, now});
  }
  by_tuple_.emplace(session, slot);
  by_binding_.emplace(BindingKey{*binding}, slot);
  return binding;
}

std::optional<net::FiveTuple> SnatEngine::reverse(const SnatBinding& binding,
                                                  const net::IpAddr& peer_ip,
                                                  std::uint16_t peer_port,
                                                  double now) {
  auto it = by_binding_.find(BindingKey{binding});
  if (it == by_binding_.end()) return std::nullopt;
  Session& s = sessions_[it->second];
  // The response must come from the session's remote endpoint.
  if (s.tuple.dst != peer_ip || s.tuple.dst_port != peer_port) {
    return std::nullopt;
  }
  s.last_used = now;
  return s.tuple;
}

std::size_t SnatEngine::expire(double now) {
  std::size_t reclaimed = 0;
  for (auto it = by_tuple_.begin(); it != by_tuple_.end();) {
    const std::size_t slot = it->second;
    if (now - sessions_[slot].last_used > config_.session_timeout_s) {
      by_binding_.erase(BindingKey{sessions_[slot].binding});
      release(sessions_[slot].binding);
      free_slots_.push_back(slot);
      it = by_tuple_.erase(it);
      ++reclaimed;
    } else {
      ++it;
    }
  }
  expired_ += reclaimed;
  return reclaimed;
}

SnatEngine::Stats SnatEngine::stats() const {
  return Stats{by_tuple_.size(), allocation_failures_, expired_};
}

std::size_t SnatEngine::capacity() const {
  return config_.public_ips.size() *
         (static_cast<std::size_t>(config_.port_max) - config_.port_min + 1);
}

}  // namespace sf::x86
