#include "x86/snat.hpp"

#include <algorithm>
#include <stdexcept>

namespace sf::x86 {

SnatEngine::SnatEngine(Config config) : config_(std::move(config)) {
  if (config_.public_ips.empty()) {
    throw std::invalid_argument("SNAT needs at least one public IP");
  }
  if (config_.port_min > config_.port_max) {
    throw std::invalid_argument("SNAT port range is inverted");
  }
  free_ports_.resize(config_.public_ips.size());
  for (std::size_t i = 0; i < config_.public_ips.size(); ++i) {
    if (!ip_index_.emplace(config_.public_ips[i].value(), i).second) {
      throw std::invalid_argument("SNAT public IPs must be distinct");
    }
    for (std::uint32_t port = config_.port_min; port <= config_.port_max;
         ++port) {
      free_ports_[i].push_back(static_cast<std::uint16_t>(port));
    }
  }
}

std::size_t SnatEngine::ip_index_for(const net::FiveTuple& session) const {
  return static_cast<std::size_t>(session.hash()) % config_.public_ips.size();
}

net::Ipv4Addr SnatEngine::ip_for(const net::FiveTuple& session) const {
  return config_.public_ips[ip_index_for(session)];
}

std::size_t SnatEngine::free_ports(net::Ipv4Addr public_ip) const {
  auto it = ip_index_.find(public_ip.value());
  return it == ip_index_.end() ? 0 : free_ports_[it->second].size();
}

std::optional<SnatBinding> SnatEngine::allocate(
    const net::FiveTuple& session) {
  std::deque<std::uint16_t>& block = free_ports_[ip_index_for(session)];
  if (block.empty()) return std::nullopt;  // no cross-IP spill by design
  const std::uint16_t port = block.front();
  block.pop_front();
  return SnatBinding{ip_for(session), port};
}

void SnatEngine::release(const SnatBinding& binding) {
  free_ports_[ip_index_.at(binding.public_ip.value())].push_back(
      binding.public_port);
}

std::optional<SnatBinding> SnatEngine::translate(const net::FiveTuple& session,
                                                 double now,
                                                 AllocFailure* failure) {
  if (failure != nullptr) *failure = AllocFailure::kNone;
  if (auto it = by_tuple_.find(session); it != by_tuple_.end()) {
    Session& s = sessions_[it->second];
    // A replayed/backward timestamp must not rewind the idle stamp, or a
    // later expire() pass would reclaim a session that was just touched.
    s.last_used = std::max(s.last_used, now);
    return s.binding;
  }
  auto binding = allocate(session);
  if (!binding) {
    ++allocation_failures_;
    ++port_block_exhaustions_;
    if (failure != nullptr) *failure = AllocFailure::kPortBlockExhausted;
    return std::nullopt;
  }
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    sessions_[slot] = Session{*binding, session, now};
  } else {
    slot = sessions_.size();
    sessions_.push_back(Session{*binding, session, now});
  }
  by_tuple_.emplace(session, slot);
  by_binding_.emplace(BindingKey{*binding}, slot);
  return binding;
}

std::optional<net::FiveTuple> SnatEngine::reverse(const SnatBinding& binding,
                                                  const net::IpAddr& peer_ip,
                                                  std::uint16_t peer_port,
                                                  double now) {
  auto it = by_binding_.find(BindingKey{binding});
  if (it == by_binding_.end()) return std::nullopt;
  Session& s = sessions_[it->second];
  // The response must come from the session's remote endpoint.
  if (s.tuple.dst != peer_ip || s.tuple.dst_port != peer_port) {
    return std::nullopt;
  }
  s.last_used = std::max(s.last_used, now);
  return s.tuple;
}

std::size_t SnatEngine::expire(double now) {
  std::size_t reclaimed = 0;
  for (auto it = by_tuple_.begin(); it != by_tuple_.end();) {
    const std::size_t slot = it->second;
    if (now - sessions_[slot].last_used > config_.session_timeout_s) {
      by_binding_.erase(BindingKey{sessions_[slot].binding});
      release(sessions_[slot].binding);
      free_slots_.push_back(slot);
      it = by_tuple_.erase(it);
      ++reclaimed;
    } else {
      ++it;
    }
  }
  expired_ += reclaimed;
  return reclaimed;
}

SnatEngine::Stats SnatEngine::stats() const {
  return Stats{by_tuple_.size(), allocation_failures_, expired_,
               port_block_exhaustions_};
}

std::size_t SnatEngine::capacity() const {
  return config_.public_ips.size() *
         (static_cast<std::size_t>(config_.port_max) - config_.port_min + 1);
}

}  // namespace sf::x86
