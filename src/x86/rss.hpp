// Receive-side scaling: the NIC hashes each flow's 5-tuple (CRC32-C) into
// an indirection table that picks the RX queue / CPU core. Flow-based
// hashing keeps packets of one flow in order on one core — and is exactly
// why a heavy-hitter flow can pin a single core at 100% while its 31
// neighbors idle (§2.3).

#pragma once

#include <cstdint>
#include <vector>

#include "net/headers.hpp"

namespace sf::x86 {

class RssIndirection {
 public:
  /// `queues` RX queues served round-robin by a 128-entry table (the
  /// common NIC default).
  explicit RssIndirection(unsigned queues, unsigned table_size = 128,
                          std::uint32_t hash_seed = 0);

  unsigned queue_for(const net::FiveTuple& tuple) const;

  unsigned queues() const { return queues_; }
  const std::vector<unsigned>& table() const { return table_; }

  /// Re-seeds the hash (operators sometimes rotate RSS keys to re-shuffle
  /// unlucky flow placements).
  void reseed(std::uint32_t hash_seed) { seed_ = hash_seed; }

 private:
  unsigned queues_;
  std::uint32_t seed_;
  std::vector<unsigned> table_;
};

}  // namespace sf::x86
