// Per-core queueing simulator: Poisson arrivals into a bounded RX ring,
// deterministic run-to-completion service. This is the discrete-event
// ground truth behind the closed-form latency/drop approximations in
// x86/cost_model.hpp — at low load latency sits at the base cost, near
// saturation it blows up M/D/1-style, and past saturation the ring
// drop-tails: the §2.3 "packet loss when CPU core utilization reaches
// 100% even in a very short moment".

#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace sf::x86 {

class CoreQueueSim {
 public:
  struct Config {
    /// Core service rate (packets/s), e.g. X86CostModel::core_pps().
    double service_pps = 781'250;
    /// RX ring slots for this core's queue.
    std::size_t ring_slots = 1024;
    /// Fixed per-packet cost outside queueing (PCIe, parse, TX), in µs.
    double base_latency_us = 30;
  };

  struct Result {
    std::size_t packets_offered = 0;
    std::size_t packets_dropped = 0;
    double drop_rate = 0;
    double mean_latency_us = 0;
    double p50_latency_us = 0;
    double p99_latency_us = 0;
  };

  CoreQueueSim() : CoreQueueSim(Config{}) {}
  explicit CoreQueueSim(Config config) : config_(config) {
    if (config_.service_pps <= 0 || config_.ring_slots == 0) {
      throw std::invalid_argument("CoreQueueSim: bad config");
    }
  }

  /// Simulates `duration_s` of Poisson arrivals at `offered_pps`.
  Result run(double offered_pps, double duration_s,
             std::uint64_t seed = 1) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace sf::x86
