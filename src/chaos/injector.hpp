// sf::chaos — the fault injector and recovery verifier.
//
// The injector replays a ChaosSchedule against a full SailfishRegion: it
// owns the HealthMonitor, delivers heartbeat and port-error probes on a
// fixed tick, translates schedule events into the observations the
// monitor would see (missed heartbeats, error bursts, channel outages,
// provisioning storms, aborted upgrades), and watches the recovery
// machinery converge. For every fault it measures time-to-detect,
// time-to-reroute and time-to-recover, counts the probe packets lost
// inside the convergence window (blackholed at a dead-but-not-yet-failed
// device, or dropped with a verdict reason), and samples the interval
// simulator for the drop-rate-under-failure series (the Fig. 19 band with
// faults in it).
//
// Determinism contract: the whole run is a pure function of (region
// construction inputs, schedule, config). The event log and the report's
// JSON rendering are byte-identical across runs and across interval-engine
// thread counts; a regression test asserts exactly that.

#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "chaos/schedule.hpp"
#include "cluster/health.hpp"
#include "core/region.hpp"
#include "sim/event_log.hpp"
#include "workload/flowgen.hpp"

namespace sf::chaos {

/// Per-fault convergence record.
struct FaultRecord {
  ChaosEvent event;
  double detected_at = -1;   // health monitoring confirmed the fault
  double rerouted_at = -1;   // serving set / capacity reflects it
  double recovered_at = -1;  // back to full health
  /// Probe packets ECMP-steered into a dead device before re-steering.
  std::uint64_t blackholed = 0;
  /// The slot was replaced by a cold standby mid-fault.
  bool replaced = false;
  /// A port fault escalated to node level (all ports isolated).
  bool escalated = false;

  double time_to_detect() const {
    return detected_at < 0 ? -1 : detected_at - event.time;
  }
  double time_to_reroute() const {
    return rerouted_at < 0 ? -1 : rerouted_at - event.time;
  }
};

/// Everything a chaos run measured, plus the convergence verdict.
struct ChaosReport {
  std::uint64_t schedule_seed = 0;
  std::size_t events_applied = 0;
  std::vector<FaultRecord> faults;

  // Aggregates over faults that were detected / rerouted.
  double mean_time_to_detect = 0;
  double max_time_to_detect = 0;
  double mean_time_to_reroute = 0;
  double max_time_to_reroute = 0;

  std::uint64_t probes_sent = 0;
  std::uint64_t probe_drops = 0;  // blackholed + verdict drops
  double peak_drop_rate = 0;      // max over interval-sim samples
  /// (time, drop rate) samples from the interval simulator.
  std::vector<std::pair<double, double>> drop_rate_series;

  /// One row per interval sample taken while a tenant storm was active:
  /// the guard's ladder tier for the storm tenant and the collateral
  /// damage on everyone else. Empty (and absent from the JSON) for
  /// schedules without kTenantStorm events.
  struct StormSample {
    double time = 0;
    net::Vni vni = 0;
    int tier = 0;                  // guard::Tier at the end of the interval
    double storm_offered_pps = 0;
    double storm_shed_pps = 0;
    /// Drop rate over the non-storm population only — the isolation
    /// number the storm is meant to leave unharmed.
    double victim_drop_rate = 0;
  };
  std::vector<StormSample> storm_samples;
  /// Worst victim drop rate seen across storm samples.
  double peak_victim_drop_rate = 0;

  /// One row per interval sample taken while the schedule carries DPU
  /// faults: how the three-tier placement rode out the node loss. Empty
  /// (and absent from the JSON) for schedules without kDpuFailure events.
  struct DpuSample {
    double time = 0;
    double dpu_pps = 0;            // traffic the DPU tier still served
    double overflow_x86_pps = 0;   // overflow riding the punt lanes
    double punt_queue_occupancy = 0;
    double p99_latency_us = 0;
    std::uint64_t dpu_flow_entries = 0;
  };
  std::vector<DpuSample> dpu_samples;

  /// Circuit-breaker activity while the schedule carries controller
  /// brownouts. Tracked (and rendered in the JSON) only when the schedule
  /// has kControllerBrownout events and the controller has a breaker, so
  /// every pre-brownout report renders byte-identically.
  bool breaker_tracked = false;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_reopens = 0;
  std::uint64_t breaker_closes = 0;
  std::uint64_t breaker_short_circuited = 0;
  /// (time, transition) pairs in tick order: "open" (breaker tripped),
  /// "reopen" (half-open probe refused), "close" (probe succeeded).
  std::vector<std::pair<double, std::string>> breaker_transitions;

  /// Post-run invariant violations (stale DR state, unconverged queue,
  /// devices still out). Empty means the region fully recovered.
  std::vector<std::string> leaks;
  bool converged() const { return leaks.empty(); }

  /// Stable JSON rendering — the convergence-metrics artifact the bench
  /// writes and the determinism tests compare byte for byte.
  std::string to_json() const;
};

class ChaosInjector {
 public:
  struct Config {
    /// Probe tick (heartbeat + port scrape cadence, seconds). Schedule
    /// times should be multiples of this.
    double probe_interval_s = 0.5;
    /// Health thresholds driving detection latency.
    cluster::HealthMonitor::Config health;
    /// Hardware-scope flows probed through the functional path per tick.
    std::size_t probe_flows = 24;
    /// When > 0, run the interval simulator at this offered rate every
    /// `interval_every` ticks and record the drop-rate series.
    double interval_bps = 0;
    std::size_t interval_every = 4;
    /// Extra time after the last scheduled fault for recovery to finish.
    double settle_s = 30.0;
    /// Base VNI for storm-provisioned tenants (outside topology VNIs).
    net::Vni storm_vni_base = 0xC0DE00;
    /// Tenant-storm shape (kTenantStorm). The storm tenant's byte-rate
    /// limit is armed on the region's guard as this fraction of
    /// `interval_bps`; the flood itself is Zipf-skewed over the event's
    /// `count` flows with this exponent.
    double storm_limit_fraction = 0.05;
    double storm_zipf_exponent = 1.2;
  };

  ChaosInjector(core::SailfishRegion& region,
                std::span<const workload::Flow> flows, Config config);

  /// Replays the schedule to quiescence (or the settle deadline) and
  /// returns the measured report. Repeatable: each run() constructs fresh
  /// monitoring state, but the region keeps any tables the run installed —
  /// drive one schedule per region for clean-room results.
  ChaosReport run(const ChaosSchedule& schedule);

  /// The replay log of the last run() — byte-identical for equal inputs.
  const sim::EventLog& log() const { return log_; }

  const Config& config() const { return config_; }

 private:
  struct ActiveFault;

  core::SailfishRegion& region_;
  std::span<const workload::Flow> flows_;
  Config config_;
  sim::EventLog log_;
  net::Vni storm_vni_next_ = 0;
};

}  // namespace sf::chaos
