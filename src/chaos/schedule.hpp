// sf::chaos — deterministic fault-injection schedules.
//
// A ChaosSchedule is a time-ordered list of failure events — device
// crashes and flaps, port error bursts, link loss, controller
// update-channel outages and rate-limit storms, mid-upgrade failures —
// that the ChaosInjector replays against a full region. Schedules are
// either scripted (add one event per line of a regression test) or drawn
// from a 64-bit seed: the same seed always yields the same events, so any
// bug a randomized run finds becomes a one-line reproducible test case.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sf::chaos {

enum class FaultKind : std::uint8_t {
  kDeviceCrash,       // heartbeats missed for `duration` seconds
  kDeviceFlap,        // `count` crash/recover cycles, `duration` s apart
  kPortErrorBurst,    // `count` bad error-rate reports on one port
  kLinkLoss,          // error bursts across the first `count` ports
  kChannelOutage,     // controller update channel down for `duration`
  kUpdateStorm,       // `count` VPC provisionings pushed in one tick
  kMidUpgradeFailure, // rolling upgrade whose action fails at `device`
  kTenantStorm,       // one tenant floods `error_rate` x region capacity
                      // over `count` Zipf-skewed flows for `duration` s
  kDpuFailure,        // DPU node `device` dark for `duration` seconds;
                      // placed elephants must fail over to x86 and
                      // re-promote once the node returns
  kChurnStorm,        // `count` tenant onboardings plus a VM-migration
                      // wave pushed through the update channel in one
                      // tick — mid-interval table churn exercising the
                      // RCU publish path
  kControllerBrownout,// controller update channel degraded (not down)
                      // for `duration` s: every op attempt is refused,
                      // so the circuit breaker must trip, short-circuit
                      // new ops into the retry queue, probe half-open,
                      // and close once the brownout lifts
};

std::string to_string(FaultKind kind);

struct ChaosEvent {
  double time = 0;
  FaultKind kind = FaultKind::kDeviceCrash;
  std::size_t cluster = 0;
  std::size_t device = 0;
  unsigned port = 0;
  /// Flap cycles / bad reports / affected ports / stormed VPCs.
  unsigned count = 0;
  /// Crash & outage length; flap half-period (seconds).
  double duration = 0;
  /// Port error rate reported during bursts.
  double error_rate = 1e-3;

  /// Stable one-line rendering (the schedule's replay identity).
  std::string to_string() const;
};

class ChaosSchedule {
 public:
  /// Shape of randomized schedules. The device/port bounds must match the
  /// region the schedule will run against.
  struct RandomConfig {
    double horizon_s = 60.0;
    std::size_t events = 10;
    std::size_t clusters = 1;
    std::size_t devices_per_cluster = 4;
    unsigned ports_per_device = 32;
    /// Include update-channel outages and provisioning storms.
    bool control_plane_faults = true;
    /// Include mid-upgrade failures.
    bool upgrade_faults = true;
    /// Include single-tenant overload storms (needs a region with a
    /// tenant guard to be meaningful). Off by default so pre-existing
    /// seeds keep drawing byte-identical schedules.
    bool tenant_storms = false;
    /// Include DPU node failures (needs a region with the DPU tier to be
    /// meaningful). Appended after the storm face and off by default, so
    /// every pre-existing (seed, config) pair keeps drawing byte-identical
    /// schedules.
    bool dpu_faults = false;
    /// Include table-churn storms (tenant-onboarding waves plus VM
    /// migrations pushed in one tick). Appended after the DPU face and
    /// off by default, so every pre-existing (seed, config) pair keeps
    /// drawing byte-identical schedules.
    bool churn_storms = false;
    /// Include controller brownouts (update-channel refusal windows that
    /// drive the circuit breaker; needs a controller configured with a
    /// breaker to be meaningful). Appended after the churn face and off
    /// by default, so every pre-existing (seed, config) pair keeps
    /// drawing byte-identical schedules.
    bool controller_brownouts = false;
  };

  ChaosSchedule() = default;

  /// Draws a schedule from a seed — byte-identical for equal
  /// (seed, config) pairs.
  static ChaosSchedule random(std::uint64_t seed,
                              const RandomConfig& config);

  /// Appends one scripted event (kept sorted by time, stable for ties).
  ChaosSchedule& add(ChaosEvent event);

  const std::vector<ChaosEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  std::uint64_t seed() const { return seed_; }

  /// Last instant any event is still active (event end, not start).
  double horizon() const;

  /// One line per event — equal schedules render equal bytes.
  std::string to_string() const;

 private:
  std::vector<ChaosEvent> events_;
  std::uint64_t seed_ = 0;
};

}  // namespace sf::chaos
