#include "chaos/injector.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>

#include "cluster/upgrade.hpp"
#include "guard/guard.hpp"
#include "net/packet.hpp"
#include "tables/entry.hpp"
#include "workload/topology.hpp"

namespace sf::chaos {
namespace {

// Stable printf-style formatting — every number the injector renders goes
// through here so logs and reports are byte-identical across runs.
std::string format(const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  return buffer;
}

std::uint64_t slot_key(std::size_t cluster, std::size_t device) {
  return (static_cast<std::uint64_t>(cluster) << 32) | device;
}

/// A down-window on one device slot: heartbeats are missed while it is
/// active. Crashes produce one, flaps a train of them.
struct DownWindow {
  double start = 0;
  double end = 0;
  std::size_t fault = 0;  // owning FaultRecord index
};

/// A port with outstanding injected error reports. While `bad_remaining`
/// is positive the probe tick reports `error_rate`; afterwards it reports
/// clean until the monitor lets the port back in and the track retires.
struct PortTrack {
  std::size_t cluster = 0;
  std::size_t device = 0;
  unsigned port = 0;
  unsigned bad_remaining = 0;
  double error_rate = 0;
  std::vector<std::size_t> faults;
};

/// Sits between DisasterRecovery and the HealthMonitor so the injector
/// observes every device-level transition — including the ones recovery
/// decides on its own (escalation, cold-standby replacement) — at the
/// exact instant they happen, then forwards them to the monitor.
struct RecoveryTap : cluster::RecoveryListener {
  struct Transition {
    std::size_t cluster = 0;
    std::size_t device = 0;
    bool failed = false;
    double time = 0;
  };

  cluster::RecoveryListener* next = nullptr;
  std::vector<Transition> transitions;

  void on_device_marked_failed(std::size_t cluster, std::size_t device,
                               double now) override {
    transitions.push_back({cluster, device, true, now});
    if (next != nullptr) next->on_device_marked_failed(cluster, device, now);
  }
  void on_device_marked_recovered(std::size_t cluster, std::size_t device,
                                  double now) override {
    transitions.push_back({cluster, device, false, now});
    if (next != nullptr) {
      next->on_device_marked_recovered(cluster, device, now);
    }
  }
};

bool is_port_fault(FaultKind kind) {
  return kind == FaultKind::kPortErrorBurst || kind == FaultKind::kLinkLoss;
}

bool is_device_fault(FaultKind kind) {
  return kind == FaultKind::kDeviceCrash || kind == FaultKind::kDeviceFlap;
}

/// A synthetic tenant for update storms: one subnet route and two VM
/// mappings, addressed out of 10/8 so it never collides with generated
/// topologies (which allocate under distinct per-VPC blocks).
workload::VpcRecord storm_vpc(net::Vni vni, unsigned ordinal) {
  workload::VpcRecord vpc;
  vpc.vni = vni;
  const std::uint32_t base =
      0x0a000000u | ((static_cast<std::uint32_t>(ordinal) & 0xffffu) << 8);
  workload::RouteRecord route;
  route.prefix = net::Ipv4Prefix(net::Ipv4Addr(base), 24);
  route.action =
      tables::VxlanRouteAction{tables::RouteScope::kLocal, 0, net::Ipv4Addr()};
  vpc.routes.push_back(route);
  for (std::uint32_t vm_index = 0; vm_index < 2; ++vm_index) {
    workload::VmRecord vm;
    vm.ip = net::IpAddr(net::Ipv4Addr(base + 1 + vm_index));
    vm.nc_ip = net::Ipv4Addr(0xac100000u + ordinal);
    vpc.vms.push_back(vm);
  }
  return vpc;
}

/// Appends a storm tenant's flood to a flow population: `flow_count`
/// Zipf-skewed flows whose weights sum to `weight_total`, addressed
/// between the storm VPC's two VMs so every packet resolves through the
/// tables storm provisioning installed.
void append_storm_flows(std::vector<workload::Flow>& out, net::Vni vni,
                        unsigned ordinal, unsigned flow_count,
                        double weight_total, double zipf_exponent) {
  const std::uint32_t base =
      0x0a000000u | ((static_cast<std::uint32_t>(ordinal) & 0xffffu) << 8);
  double norm = 0;
  for (unsigned k = 0; k < flow_count; ++k) {
    norm += 1.0 / std::pow(static_cast<double>(k + 1), zipf_exponent);
  }
  for (unsigned k = 0; k < flow_count; ++k) {
    workload::Flow flow;
    flow.vni = vni;
    flow.scope = tables::RouteScope::kLocal;
    flow.dst_nc = net::Ipv4Addr(0xac100000u + ordinal);
    flow.tuple.src = net::IpAddr(net::Ipv4Addr(base + 1));
    flow.tuple.dst = net::IpAddr(net::Ipv4Addr(base + 2));
    flow.tuple.proto = 17;
    flow.tuple.src_port = static_cast<std::uint16_t>(0x4000 + k);
    flow.tuple.dst_port = 4789;
    flow.weight = weight_total / norm /
                  std::pow(static_cast<double>(k + 1), zipf_exponent);
    out.push_back(flow);
  }
}

}  // namespace

struct ChaosInjector::ActiveFault {
  ChaosEvent event;
  bool done = false;
  /// Injection keeps running until this instant (down windows, report
  /// bursts); recovery is then verified against the live machinery.
  double end = 0;
};

ChaosInjector::ChaosInjector(core::SailfishRegion& region,
                             std::span<const workload::Flow> flows,
                             Config config)
    : region_(region), flows_(flows), config_(config) {}

ChaosReport ChaosInjector::run(const ChaosSchedule& schedule) {
  log_.clear();
  ChaosReport report;
  report.schedule_seed = schedule.seed();

  cluster::Controller& controller = region_.controller();
  cluster::DisasterRecovery& recovery = region_.disaster_recovery();

  // The monitor registers itself as DR's listener; the tap then takes the
  // slot and forwards, so both the monitor and the injector see every
  // recovery-initiated transition.
  cluster::HealthMonitor monitor(&recovery, config_.health);
  RecoveryTap tap;
  tap.next = &monitor;
  recovery.set_listener(&tap);

  const double dt = config_.probe_interval_s;
  const auto& events = schedule.events();
  std::vector<ActiveFault> faults;
  faults.reserve(events.size());
  report.faults.reserve(events.size());
  for (const ChaosEvent& event : events) {
    report.faults.push_back(FaultRecord{event});
    faults.push_back(ActiveFault{event, false, 0});
  }

  // slot -> down windows (std::map for deterministic iteration).
  std::map<std::uint64_t, std::vector<DownWindow>> windows;
  // port key -> outstanding error-report track.
  std::map<std::uint64_t, PortTrack> tracks;
  double channel_down_until = -1;
  std::size_t channel_fault = 0;
  bool channel_down = false;
  // Controller brownouts: the channel stays nominally up but refuses every
  // attempt, so a configured breaker trips / probes / closes. Transitions
  // are observed by diffing the breaker's stats tick over tick.
  double brownout_until = -1;
  bool browned_out = false;
  bool has_brownout_events = false;
  for (const ChaosEvent& event : events) {
    has_brownout_events =
        has_brownout_events || event.kind == FaultKind::kControllerBrownout;
  }
  const guard::CircuitBreaker* breaker = controller.breaker();
  report.breaker_tracked = has_brownout_events && breaker != nullptr;
  guard::CircuitBreaker::Stats breaker_base{};
  if (breaker != nullptr) breaker_base = breaker->stats();
  guard::CircuitBreaker::Stats breaker_prev = breaker_base;

  // Tenant storms armed this run (the flood blends into interval samples
  // while [start, end) covers the tick).
  struct Storm {
    std::size_t fault = 0;  // owning FaultRecord index
    net::Vni vni = 0;
    unsigned ordinal = 0;
    unsigned flow_count = 0;
    double magnitude = 0;  // offered rate as a multiple of interval_bps
    double start = 0;
    double end = 0;
  };
  std::vector<Storm> storms;
  const auto storm_active = [](const Storm& storm, double now) {
    return storm.start <= now + 1e-9 && now < storm.end - 1e-9;
  };

  // DPU node failures armed this run. The node is held dark until `end`,
  // then restored; recovery is verified by watching the interval samples
  // for the placer re-promoting elephants onto the returned node.
  struct DpuFault {
    std::size_t fault = 0;  // owning FaultRecord index
    std::size_t node = 0;
    double end = 0;
    bool restored = false;
  };
  std::vector<DpuFault> dpu_faults;
  bool has_dpu_events = false;
  for (const ChaosEvent& event : events) {
    has_dpu_events = has_dpu_events || event.kind == FaultKind::kDpuFailure;
  }
  // Last interval sample's DPU-served rate and its timestamp, for the
  // re-promotion check after a node restore.
  double last_dpu_pps = 0;
  double last_dpu_sample_at = -1;

  const auto slot_down = [&](std::uint64_t key, double now,
                             std::size_t* fault_out = nullptr) {
    auto it = windows.find(key);
    if (it == windows.end()) return false;
    for (const DownWindow& w : it->second) {
      if (w.start <= now + 1e-9 && now < w.end - 1e-9) {
        if (fault_out != nullptr) *fault_out = w.fault;
        return true;
      }
    }
    return false;
  };

  const double horizon = schedule.horizon();
  const double deadline = horizon + config_.settle_s;
  std::size_t next_event = 0;
  std::size_t probe_count = std::min(config_.probe_flows, flows_.size());

  for (std::uint64_t tick = 0;; ++tick) {
    const double now = static_cast<double>(tick) * dt;

    // ---- 1. fire schedule events due at this tick -------------------------
    while (next_event < events.size() &&
           events[next_event].time <= now + 1e-9) {
      const std::size_t index = next_event++;
      const ChaosEvent& event = events[index];
      ActiveFault& fault = faults[index];
      log_.append(now, "inject", event.to_string());
      switch (event.kind) {
        case FaultKind::kDeviceCrash: {
          fault.end = event.time + event.duration;
          windows[slot_key(event.cluster, event.device)].push_back(
              DownWindow{event.time, fault.end, index});
          break;
        }
        case FaultKind::kDeviceFlap: {
          auto& slot = windows[slot_key(event.cluster, event.device)];
          for (unsigned cycle = 0; cycle < event.count; ++cycle) {
            const double start =
                event.time + 2.0 * cycle * event.duration;
            slot.push_back(
                DownWindow{start, start + event.duration, index});
          }
          fault.end = event.time + 2.0 * event.count * event.duration;
          break;
        }
        case FaultKind::kPortErrorBurst:
        case FaultKind::kLinkLoss: {
          // A burst hits one named port; link loss takes out the first
          // `count` ports together (a cut trunk) with enough bad reports
          // to cross the isolation threshold.
          const unsigned burst =
              event.kind == FaultKind::kPortErrorBurst
                  ? event.count
                  : config_.health.isolate_port_after + 1;
          const unsigned first =
              event.kind == FaultKind::kPortErrorBurst ? event.port : 0;
          const unsigned span =
              event.kind == FaultKind::kPortErrorBurst ? 1 : event.count;
          for (unsigned p = first; p < first + span; ++p) {
            const std::uint64_t key =
                (slot_key(event.cluster, event.device) << 12) | p;
            PortTrack& track = tracks[key];
            track.cluster = event.cluster;
            track.device = event.device;
            track.port = p;
            track.bad_remaining += burst;
            track.error_rate = event.error_rate;
            track.faults.push_back(index);
          }
          fault.end = event.time + burst * dt;
          break;
        }
        case FaultKind::kChannelOutage: {
          fault.end = event.time + event.duration;
          if (!channel_down) {
            controller.set_update_channel_up(false);
            channel_down = true;
            log_.append(now, "channel", "update channel down");
          }
          channel_down_until = std::max(channel_down_until, fault.end);
          channel_fault = index;
          report.faults[index].detected_at = now;
          break;
        }
        case FaultKind::kUpdateStorm: {
          std::size_t admitted = 0;
          for (unsigned v = 0; v < event.count; ++v) {
            const unsigned ordinal = storm_vni_next_++;
            if (controller.add_vpc(storm_vpc(
                    config_.storm_vni_base + ordinal, ordinal))) {
              ++admitted;
            }
          }
          report.faults[index].detected_at = now;
          fault.end = event.time;
          log_.append(now, "storm",
                      format("%zu vpcs admitted, %zu table ops deferred",
                             admitted, controller.deferred_op_count()));
          break;
        }
        case FaultKind::kMidUpgradeFailure: {
          cluster::XgwHCluster& c = controller.cluster(event.cluster);
          const std::size_t fail_at =
              event.device % c.config().primary_devices;
          std::size_t invocation = 0;
          cluster::RollingUpgrade roll;
          const cluster::RollingUpgrade::Result result = roll.run(
              c,
              [&](xgwh::XgwH&) { return invocation++ != fail_at; },
              [&](const cluster::XgwHCluster& cc) {
                return !cc.failed_over();
              });
          report.faults[index].detected_at = now;
          report.faults[index].rerouted_at = now;
          report.faults[index].recovered_at = now;
          fault.done = true;
          fault.end = event.time;
          log_.append(now, "upgrade",
                      result.completed
                          ? "roll completed"
                          : "roll aborted: " + result.abort_reason);
          break;
        }
        case FaultKind::kTenantStorm: {
          const unsigned ordinal = storm_vni_next_++;
          const net::Vni vni =
              config_.storm_vni_base + static_cast<net::Vni>(ordinal);
          controller.add_vpc(storm_vpc(vni, ordinal));
          guard::TenantGuard* guard = region_.tenant_guard();
          if (guard == nullptr || config_.interval_bps <= 0 ||
              config_.interval_every == 0) {
            // Without a guard (or interval sampling to meter against)
            // there is nothing to degrade or verify — retire immediately.
            report.faults[index].detected_at = now;
            report.faults[index].recovered_at = now;
            fault.done = true;
            fault.end = event.time;
            log_.append(now, "tenant-storm",
                        "skipped: region has no guard or interval sampling");
            break;
          }
          const double limit_bps =
              config_.storm_limit_fraction * config_.interval_bps;
          guard->set_limit(guard::TenantLimit{vni, limit_bps, 0.0});
          fault.end = event.time + event.duration;
          storms.push_back(Storm{index, vni, ordinal, event.count,
                                 event.error_rate, event.time, fault.end});
          report.faults[index].detected_at = now;
          log_.append(now, "tenant-storm",
                      format("vni %u armed: limit %.3e bps, flood %.1fx "
                             "region rate over %u flows for %.1fs",
                             static_cast<unsigned>(vni), limit_bps,
                             event.error_rate, event.count, event.duration));
          break;
        }
        case FaultKind::kChurnStorm: {
          // Tenant-onboarding wave: a burst of new VPCs through the
          // update channel (each is several route/mapping table ops)...
          std::size_t admitted = 0;
          const unsigned first_ordinal = storm_vni_next_;
          for (unsigned v = 0; v < event.count; ++v) {
            const unsigned ordinal = storm_vni_next_++;
            if (controller.add_vpc(storm_vpc(
                    config_.storm_vni_base + ordinal, ordinal))) {
              ++admitted;
            }
          }
          // ...then a VM-migration wave: the freshly onboarded tenants
          // immediately re-place onto other clusters, churning both the
          // source and target cluster tables mid-run.
          std::size_t migrated = 0;
          if (controller.cluster_count() > 1) {
            for (unsigned v = 0; v < event.count; ++v) {
              const net::Vni vni = config_.storm_vni_base +
                                   static_cast<net::Vni>(first_ordinal + v);
              const std::uint32_t target = static_cast<std::uint32_t>(
                  (event.cluster + 1 + v) % controller.cluster_count());
              if (controller.migrate_vpc(vni, target)) ++migrated;
            }
          }
          report.faults[index].detected_at = now;
          fault.end = event.time;
          log_.append(now, "churn-storm",
                      format("%zu vpcs onboarded, %zu migrated, %zu table "
                             "ops deferred",
                             admitted, migrated,
                             controller.deferred_op_count()));
          break;
        }
        case FaultKind::kDpuFailure: {
          if (region_.dpu_node_count() == 0) {
            // No DPU tier in this region — nothing to fail or verify.
            report.faults[index].detected_at = now;
            report.faults[index].recovered_at = now;
            fault.done = true;
            fault.end = event.time;
            log_.append(now, "dpu-failure",
                        "skipped: region has no DPU tier");
            break;
          }
          const std::size_t node = event.device % region_.dpu_node_count();
          const std::uint64_t placed_before =
              region_.dpu_node(node).flow_count();
          region_.set_dpu_failed(node, true);
          fault.end = event.time + event.duration;
          dpu_faults.push_back(DpuFault{index, node, fault.end, false});
          // The failure is injected below the health plane: the region
          // fails the node over synchronously (placement misses fall back
          // to x86), so detect and reroute coincide with injection.
          report.faults[index].detected_at = now;
          report.faults[index].rerouted_at = now;
          log_.append(now, "dpu-failure",
                      format("node %zu dark for %.1fs, %llu placed flows "
                             "failing over to x86",
                             node, event.duration,
                             static_cast<unsigned long long>(placed_before)));
          break;
        }
        case FaultKind::kControllerBrownout: {
          fault.end = event.time + event.duration;
          if (!browned_out) {
            controller.set_update_channel_degraded(true);
            browned_out = true;
            log_.append(now, "brownout", "update channel browned out");
          }
          brownout_until = std::max(brownout_until, fault.end);
          // Provisioning keeps arriving during the brownout: a small wave
          // of onboardings whose pushes get refused, feeding the breaker
          // (or piling onto the retry queue when none is configured).
          const unsigned wave = std::max(4u, event.count);
          std::size_t admitted = 0;
          for (unsigned v = 0; v < wave; ++v) {
            const unsigned ordinal = storm_vni_next_++;
            if (controller.add_vpc(storm_vpc(
                    config_.storm_vni_base + ordinal, ordinal))) {
              ++admitted;
            }
          }
          report.faults[index].detected_at = now;
          // The control plane rides the retry queue until the brownout
          // lifts — the deferral itself is the reroute.
          report.faults[index].rerouted_at = now;
          log_.append(now, "brownout",
                      format("%zu vpcs admitted into the brownout, %zu "
                             "table ops deferred",
                             admitted, controller.deferred_op_count()));
          break;
        }
      }
    }

    // ---- 2. heartbeat probes (fixed cluster-major order) ------------------
    tap.transitions.clear();
    for (std::size_t c = 0; c < controller.cluster_count(); ++c) {
      const std::size_t devices = controller.cluster(c).device_count();
      for (std::size_t d = 0; d < devices; ++d) {
        const bool ok = !slot_down(slot_key(c, d), now);
        monitor.report_heartbeat(c, d, ok, now);
      }
    }

    // ---- 3. port error probes (sorted port-key order) ---------------------
    for (auto it = tracks.begin(); it != tracks.end();) {
      PortTrack& track = it->second;
      if (track.bad_remaining > 0) {
        --track.bad_remaining;
        monitor.report_port_errors(track.cluster, track.device, track.port,
                                   track.error_rate, now);
        ++it;
        continue;
      }
      monitor.report_port_errors(track.cluster, track.device, track.port,
                                 0.0, now);
      if (!monitor.port_considered_isolated(track.cluster, track.device,
                                            track.port)) {
        it = tracks.erase(it);
      } else {
        ++it;
      }
    }

    // ---- 4. recovery transitions observed this tick -----------------------
    for (const RecoveryTap::Transition& tr : tap.transitions) {
      const std::uint64_t key = slot_key(tr.cluster, tr.device);
      log_.append(now, "recovery",
                  format("cluster %zu device %zu marked %s", tr.cluster,
                         tr.device, tr.failed ? "failed" : "recovered"));
      for (std::size_t i = 0; i < faults.size(); ++i) {
        ActiveFault& fault = faults[i];
        FaultRecord& record = report.faults[i];
        if (fault.done || fault.event.time > now + 1e-9) continue;
        if (slot_key(fault.event.cluster, fault.event.device) != key) {
          continue;
        }
        if (tr.failed) {
          if (record.detected_at < 0) record.detected_at = tr.time;
          if (record.rerouted_at < 0) record.rerouted_at = tr.time;
          if (is_port_fault(fault.event.kind)) record.escalated = true;
        } else if (is_device_fault(fault.event.kind) && now < fault.end) {
          // The slot came back while the schedule still holds the device
          // down: a cold standby took over. Fresh hardware — truncate the
          // remaining down windows so its heartbeats arrive clean.
          record.replaced = true;
          record.recovered_at = tr.time;
          fault.done = true;
          auto wit = windows.find(key);
          if (wit != windows.end()) {
            for (DownWindow& w : wit->second) {
              if (w.fault == i) w.end = std::min(w.end, now);
            }
          }
        }
      }
    }

    // ---- 5. control-plane clock: drain deferred pushes --------------------
    if (channel_down && now + 1e-9 >= channel_down_until) {
      controller.set_update_channel_up(true);
      channel_down = false;
      log_.append(now, "channel", "update channel restored");
    }
    if (browned_out && now + 1e-9 >= brownout_until) {
      controller.set_update_channel_degraded(false);
      browned_out = false;
      log_.append(now, "brownout", "update channel brownout cleared");
    }
    const std::size_t replayed = controller.advance_clock(now);
    if (replayed > 0) {
      log_.append(now, "retry",
                  format("replayed %zu deferred table ops, %zu pending",
                         replayed, controller.deferred_op_count()));
    }
    if (report.breaker_tracked) {
      const guard::CircuitBreaker::Stats& bs = breaker->stats();
      for (auto n = breaker_prev.trips; n < bs.trips; ++n) {
        report.breaker_transitions.emplace_back(now, "open");
        log_.append(now, "breaker", "tripped open");
      }
      for (auto n = breaker_prev.reopens; n < bs.reopens; ++n) {
        report.breaker_transitions.emplace_back(now, "reopen");
        log_.append(now, "breaker", "half-open probe refused; re-opened");
      }
      for (auto n = breaker_prev.closes; n < bs.closes; ++n) {
        report.breaker_transitions.emplace_back(now, "close");
        log_.append(now, "breaker", "half-open probe succeeded; closed");
      }
      breaker_prev = bs;
    }

    // ---- 6. fault lifecycle updates (level-triggered) ---------------------
    for (std::size_t i = 0; i < faults.size(); ++i) {
      ActiveFault& fault = faults[i];
      FaultRecord& record = report.faults[i];
      if (fault.done || fault.event.time > now + 1e-9) continue;
      const std::size_t ec = fault.event.cluster;
      const std::size_t ed = fault.event.device;
      switch (fault.event.kind) {
        case FaultKind::kDeviceCrash:
        case FaultKind::kDeviceFlap: {
          if (now + 1e-9 >= fault.end &&
              !monitor.device_considered_failed(ec, ed) &&
              controller.cluster(ec).device_health(ed) ==
                  cluster::DeviceHealth::kHealthy) {
            // Either fully recovered, or so brief the debounce never
            // acted — both count as converged.
            record.recovered_at =
                record.detected_at < 0 ? fault.end : now;
            fault.done = true;
            log_.append(now, "recover",
                        format("cluster %zu device %zu converged", ec, ed));
          }
          break;
        }
        case FaultKind::kPortErrorBurst:
        case FaultKind::kLinkLoss: {
          bool any_isolated = false;
          bool any_tracked = false;
          for (const auto& [key, track] : tracks) {
            if (track.cluster != ec || track.device != ed) continue;
            if (std::find(track.faults.begin(), track.faults.end(), i) ==
                track.faults.end()) {
              continue;
            }
            any_tracked = true;
            if (monitor.port_considered_isolated(ec, ed, track.port)) {
              any_isolated = true;
            }
          }
          if (record.detected_at < 0 && any_isolated) {
            record.detected_at = now;
          }
          if (record.rerouted_at < 0 &&
              (recovery.device_capacity_fraction(ec, ed) < 1.0 ||
               monitor.device_considered_failed(ec, ed))) {
            record.rerouted_at = now;
          }
          if (!any_tracked && !monitor.device_considered_failed(ec, ed) &&
              recovery.isolated_port_count(ec, ed) == 0) {
            record.recovered_at = now;
            fault.done = true;
            log_.append(now, "recover",
                        format("cluster %zu device %zu ports clean", ec, ed));
          }
          break;
        }
        case FaultKind::kChannelOutage:
        case FaultKind::kUpdateStorm:
        case FaultKind::kChurnStorm: {
          const bool outage_over =
              fault.event.kind != FaultKind::kChannelOutage || !channel_down;
          if (outage_over && controller.deferred_op_count() == 0) {
            record.recovered_at = now;
            fault.done = true;
            log_.append(now, "recover", "control plane drained");
          }
          break;
        }
        case FaultKind::kControllerBrownout: {
          // Recovered once the brownout window has lifted, the breaker (if
          // any) has closed again, and the parked wave has drained.
          const bool closed =
              breaker == nullptr ||
              breaker->state(now) == guard::CircuitBreaker::State::kClosed;
          if (!browned_out && now + 1e-9 >= fault.end && closed &&
              controller.deferred_op_count() == 0) {
            record.recovered_at = now;
            fault.done = true;
            log_.append(now, "recover",
                        "brownout cleared; breaker closed and queue drained");
          }
          break;
        }
        case FaultKind::kMidUpgradeFailure:
          break;
        case FaultKind::kTenantStorm: {
          // Done when the flood is over AND the guard has walked the
          // tenant back down the ladder to full service.
          if (now + 1e-9 < fault.end) break;
          const guard::TenantGuard* guard = region_.tenant_guard();
          net::Vni vni = 0;
          for (const Storm& storm : storms) {
            if (storm.fault == i) vni = storm.vni;
          }
          if (guard == nullptr ||
              guard->tier_of(vni) == guard::Tier::kFull) {
            record.recovered_at = now;
            fault.done = true;
            log_.append(now, "recover",
                        format("storm tenant %u back to full service",
                               static_cast<unsigned>(vni)));
          }
          break;
        }
        case FaultKind::kDpuFailure: {
          DpuFault* armed = nullptr;
          for (DpuFault& df : dpu_faults) {
            if (df.fault == i) armed = &df;
          }
          if (armed == nullptr) break;  // skipped at injection
          if (!armed->restored && now + 1e-9 >= armed->end) {
            region_.set_dpu_failed(armed->node, false);
            armed->restored = true;
            log_.append(now, "dpu-failure",
                        format("node %zu restored", armed->node));
          }
          if (!armed->restored) break;
          // Recovered once the placer has re-promoted elephants after the
          // restore — the interval samples show the tier serving again.
          // Without interval sampling there is nothing to watch; the
          // restore itself is the recovery.
          const bool sampling =
              config_.interval_bps > 0 && config_.interval_every > 0;
          if (!sampling || (last_dpu_sample_at > armed->end - 1e-9 &&
                            last_dpu_pps > 0)) {
            record.recovered_at = now;
            fault.done = true;
            log_.append(now, "recover",
                        format("dpu node %zu serving again", armed->node));
          }
          break;
        }
      }
    }

    // ---- 7. probe traffic through the functional path ---------------------
    for (std::size_t f = 0; f < probe_count; ++f) {
      const workload::Flow& flow = flows_[f];
      ++report.probes_sent;
      const auto cluster_id = controller.cluster_for(flow.vni);
      if (cluster_id.has_value()) {
        const cluster::XgwHCluster& c = controller.cluster(*cluster_id);
        const auto device = c.pick_device(flow.tuple);
        std::size_t owner = 0;
        if (device.has_value() &&
            c.device_health(*device) == cluster::DeviceHealth::kHealthy &&
            slot_down(slot_key(*cluster_id, *device), now, &owner)) {
          // ECMP still steers into a device the schedule has killed but
          // the monitor has not yet failed: the packet blackholes.
          ++report.faults[owner].blackholed;
          ++report.probe_drops;
          continue;
        }
      }
      net::OverlayPacket pkt;
      pkt.vni = flow.vni;
      pkt.inner = flow.tuple;
      pkt.payload_size = 96;
      const dataplane::Verdict verdict = region_.process(pkt, now);
      if (verdict.dropped()) ++report.probe_drops;
    }

    // ---- 8. interval-simulator sample (the fig19-under-failure series) ----
    if (config_.interval_bps > 0 && config_.interval_every > 0 &&
        tick % config_.interval_every == 0) {
      // While a tenant storm rages, the flood rides on top of the base
      // population: the base keeps its absolute offered rate and each
      // storm adds `magnitude` x interval_bps of Zipf-skewed flows.
      double storm_total = 0;
      for (const Storm& storm : storms) {
        if (storm_active(storm, now)) storm_total += storm.magnitude;
      }
      core::SailfishRegion::IntervalReport interval;
      if (storm_total > 0) {
        std::vector<workload::Flow> blended(flows_.begin(), flows_.end());
        const double scale = 1.0 / (1.0 + storm_total);
        for (workload::Flow& flow : blended) flow.weight *= scale;
        for (const Storm& storm : storms) {
          if (!storm_active(storm, now)) continue;
          append_storm_flows(blended, storm.vni, storm.ordinal,
                             storm.flow_count, storm.magnitude * scale,
                             config_.storm_zipf_exponent);
        }
        interval = region_.simulate_interval(
            blended, config_.interval_bps * (1.0 + storm_total), tick);
      } else {
        interval =
            region_.simulate_interval(flows_, config_.interval_bps, tick);
      }
      report.drop_rate_series.emplace_back(now, interval.drop_rate);
      report.peak_drop_rate =
          std::max(report.peak_drop_rate, interval.drop_rate);
      last_dpu_pps = interval.dpu_pps;
      last_dpu_sample_at = now;
      if (has_dpu_events && region_.dpu_node_count() > 0) {
        ChaosReport::DpuSample sample;
        sample.time = now;
        sample.dpu_pps = interval.dpu_pps;
        sample.overflow_x86_pps = interval.overflow_x86_pps;
        sample.punt_queue_occupancy = interval.punt_queue_occupancy;
        sample.p99_latency_us = interval.p99_latency_us;
        sample.dpu_flow_entries = interval.dpu_flow_entries;
        report.dpu_samples.push_back(sample);
      }

      // Storm isolation samples: the storm tenant's ladder tier and the
      // drop rate over everyone else (guard sheds excluded — they hit
      // only the storm tenant).
      double all_storm_offered_pps = 0;
      for (const auto& tenant : interval.guard_tenants) {
        all_storm_offered_pps += tenant.offered_pps;
      }
      for (const Storm& storm : storms) {
        if (!storm_active(storm, now)) continue;
        ChaosReport::StormSample sample;
        sample.time = now;
        sample.vni = storm.vni;
        for (const auto& tenant : interval.guard_tenants) {
          if (tenant.vni != storm.vni) continue;
          sample.tier = static_cast<int>(tenant.tier);
          sample.storm_offered_pps = tenant.offered_pps;
          sample.storm_shed_pps = tenant.shed_pps;
        }
        const double victim_pps =
            interval.offered_pps - all_storm_offered_pps;
        const double victim_dropped =
            interval.dropped_pps - interval.guard_shed_pps;
        sample.victim_drop_rate =
            victim_pps > 0 ? std::max(victim_dropped, 0.0) / victim_pps : 0;
        if (report.faults[storm.fault].rerouted_at < 0 && sample.tier > 0) {
          // "Rerouted" for a storm: the guard moved the tenant off full
          // service.
          report.faults[storm.fault].rerouted_at = now;
        }
        report.peak_victim_drop_rate =
            std::max(report.peak_victim_drop_rate, sample.victim_drop_rate);
        report.storm_samples.push_back(sample);
      }
    }

    // ---- 9. termination ---------------------------------------------------
    bool all_done = next_event == events.size();
    for (const ActiveFault& fault : faults) {
      all_done = all_done && fault.done;
    }
    if (all_done && !channel_down && controller.deferred_op_count() == 0) {
      log_.append(now, "converged", "all faults recovered");
      break;
    }
    if (now + 1e-9 >= deadline) {
      log_.append(now, "deadline", "settle window exhausted");
      break;
    }
  }

  report.events_applied = next_event;

  // ---- leak audit: nothing may survive a fully recovered schedule --------
  for (std::size_t c = 0; c < controller.cluster_count(); ++c) {
    const cluster::XgwHCluster& cl = controller.cluster(c);
    if (cl.failed_over()) {
      report.leaks.push_back(
          format("cluster %zu still failed over to backups", c));
    }
    for (std::size_t d = 0; d < cl.device_count(); ++d) {
      if (cl.device_health(d) != cluster::DeviceHealth::kHealthy) {
        report.leaks.push_back(
            format("cluster %zu device %zu still out of ECMP", c, d));
      }
      if (monitor.device_considered_failed(c, d)) {
        report.leaks.push_back(
            format("cluster %zu device %zu still failed in monitor", c, d));
      }
      if (recovery.isolated_port_count(c, d) != 0) {
        report.leaks.push_back(
            format("cluster %zu device %zu has %u ports still isolated", c,
                   d, recovery.isolated_port_count(c, d)));
      }
    }
    const cluster::Controller::ConsistencyReport audit =
        controller.check_consistency(c);
    if (audit.missing_on_device != 0) {
      report.leaks.push_back(
          format("cluster %zu missing %zu entries on device", c,
                 audit.missing_on_device));
    }
  }
  if (!recovery.quiescent()) {
    report.leaks.push_back("disaster recovery holds stale isolated-port state");
  }
  if (const guard::TenantGuard* guard = region_.tenant_guard()) {
    for (const Storm& storm : storms) {
      if (guard->tier_of(storm.vni) != guard::Tier::kFull) {
        report.leaks.push_back(
            format("storm tenant %u still degraded to %s",
                   static_cast<unsigned>(storm.vni),
                   guard::name(guard->tier_of(storm.vni))));
      }
    }
  }
  for (std::size_t n = 0; n < region_.dpu_node_count(); ++n) {
    if (region_.dpu_node(n).failed()) {
      report.leaks.push_back(format("dpu node %zu left failed", n));
    }
  }
  if (controller.deferred_op_count() != 0) {
    report.leaks.push_back(format("%zu table ops still deferred",
                                  controller.deferred_op_count()));
  }
  if (!controller.update_channel_up()) {
    report.leaks.push_back("update channel left down");
  }
  if (controller.update_channel_degraded()) {
    report.leaks.push_back("update channel left degraded");
  }
  if (report.breaker_tracked &&
      breaker->state(deadline) != guard::CircuitBreaker::State::kClosed) {
    report.leaks.push_back("update-channel breaker left open");
  }
  if (report.breaker_tracked) {
    const guard::CircuitBreaker::Stats& bs = breaker->stats();
    report.breaker_trips = bs.trips - breaker_base.trips;
    report.breaker_reopens = bs.reopens - breaker_base.reopens;
    report.breaker_closes = bs.closes - breaker_base.closes;
    report.breaker_short_circuited =
        bs.short_circuited - breaker_base.short_circuited;
  }
  for (const std::string& leak : report.leaks) {
    log_.append(deadline, "leak", leak);
  }

  // ---- aggregates --------------------------------------------------------
  std::size_t detected = 0;
  std::size_t rerouted = 0;
  for (const FaultRecord& record : report.faults) {
    if (record.time_to_detect() >= 0) {
      ++detected;
      report.mean_time_to_detect += record.time_to_detect();
      report.max_time_to_detect =
          std::max(report.max_time_to_detect, record.time_to_detect());
    }
    if (record.time_to_reroute() >= 0) {
      ++rerouted;
      report.mean_time_to_reroute += record.time_to_reroute();
      report.max_time_to_reroute =
          std::max(report.max_time_to_reroute, record.time_to_reroute());
    }
  }
  if (detected > 0) {
    report.mean_time_to_detect /= static_cast<double>(detected);
  }
  if (rerouted > 0) {
    report.mean_time_to_reroute /= static_cast<double>(rerouted);
  }

  // Detach the tap before it goes out of scope; the monitor dies with it.
  recovery.set_listener(nullptr);
  return report;
}

std::string ChaosReport::to_json() const {
  std::string out = "{\n";
  out += format("  \"schedule_seed\": %llu,\n",
                static_cast<unsigned long long>(schedule_seed));
  out += format("  \"events_applied\": %zu,\n", events_applied);
  out += format("  \"converged\": %s,\n", leaks.empty() ? "true" : "false");
  out += format("  \"mean_time_to_detect_s\": %.3f,\n", mean_time_to_detect);
  out += format("  \"max_time_to_detect_s\": %.3f,\n", max_time_to_detect);
  out += format("  \"mean_time_to_reroute_s\": %.3f,\n", mean_time_to_reroute);
  out += format("  \"max_time_to_reroute_s\": %.3f,\n", max_time_to_reroute);
  out += format("  \"probes_sent\": %llu,\n",
                static_cast<unsigned long long>(probes_sent));
  out += format("  \"probe_drops\": %llu,\n",
                static_cast<unsigned long long>(probe_drops));
  out += format("  \"peak_drop_rate\": %.9e,\n", peak_drop_rate);
  out += "  \"faults\": [\n";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultRecord& record = faults[i];
    out += "    {\"event\": \"" + record.event.to_string() + "\", ";
    out += format("\"detect_s\": %.3f, ", record.time_to_detect());
    out += format("\"reroute_s\": %.3f, ", record.time_to_reroute());
    out += format("\"recovered_at\": %.3f, ", record.recovered_at);
    out += format("\"blackholed\": %llu, ",
                  static_cast<unsigned long long>(record.blackholed));
    out += format("\"replaced\": %s, ", record.replaced ? "true" : "false");
    out += format("\"escalated\": %s}", record.escalated ? "true" : "false");
    out += i + 1 < faults.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"drop_rate_series\": [\n";
  for (std::size_t i = 0; i < drop_rate_series.size(); ++i) {
    out += format("    [%.3f, %.9e]", drop_rate_series[i].first,
                  drop_rate_series[i].second);
    out += i + 1 < drop_rate_series.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  // Present only for schedules with tenant storms, so every pre-storm
  // report renders byte-identically.
  if (!storm_samples.empty()) {
    out += format("  \"peak_victim_drop_rate\": %.9e,\n",
                  peak_victim_drop_rate);
    out += "  \"tenant_storms\": [\n";
    for (std::size_t i = 0; i < storm_samples.size(); ++i) {
      const StormSample& sample = storm_samples[i];
      out += format("    {\"t\": %.3f, \"vni\": %u, \"tier\": %d, "
                    "\"offered_pps\": %.3e, \"shed_pps\": %.3e, "
                    "\"victim_drop_rate\": %.9e}",
                    sample.time, static_cast<unsigned>(sample.vni),
                    sample.tier, sample.storm_offered_pps,
                    sample.storm_shed_pps, sample.victim_drop_rate);
      out += i + 1 < storm_samples.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
  }
  // Present only when a brownout schedule ran against a breaker-equipped
  // controller, so every pre-brownout report renders byte-identically.
  if (breaker_tracked) {
    out += format("  \"breaker\": {\"trips\": %llu, \"reopens\": %llu, "
                  "\"closes\": %llu, \"short_circuited\": %llu},\n",
                  static_cast<unsigned long long>(breaker_trips),
                  static_cast<unsigned long long>(breaker_reopens),
                  static_cast<unsigned long long>(breaker_closes),
                  static_cast<unsigned long long>(breaker_short_circuited));
    out += "  \"breaker_transitions\": [\n";
    for (std::size_t i = 0; i < breaker_transitions.size(); ++i) {
      out += format("    [%.3f, \"%s\"]", breaker_transitions[i].first,
                    breaker_transitions[i].second.c_str());
      out += i + 1 < breaker_transitions.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
  }
  // Present only for schedules with DPU faults, so every DPU-less report
  // renders byte-identically.
  if (!dpu_samples.empty()) {
    out += "  \"dpu_samples\": [\n";
    for (std::size_t i = 0; i < dpu_samples.size(); ++i) {
      const DpuSample& sample = dpu_samples[i];
      out += format("    {\"t\": %.3f, \"dpu_pps\": %.3e, "
                    "\"overflow_x86_pps\": %.3e, "
                    "\"punt_queue_occupancy\": %.6f, "
                    "\"p99_latency_us\": %.3f, \"dpu_flow_entries\": %llu}",
                    sample.time, sample.dpu_pps, sample.overflow_x86_pps,
                    sample.punt_queue_occupancy, sample.p99_latency_us,
                    static_cast<unsigned long long>(sample.dpu_flow_entries));
      out += i + 1 < dpu_samples.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
  }
  out += "  \"leaks\": [";
  for (std::size_t i = 0; i < leaks.size(); ++i) {
    out += "\"" + leaks[i] + "\"";
    if (i + 1 < leaks.size()) out += ", ";
  }
  out += "]\n}\n";
  return out;
}

}  // namespace sf::chaos
