#include "chaos/schedule.hpp"

#include <algorithm>
#include <cstdio>

#include "workload/rng.hpp"

namespace sf::chaos {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceCrash:
      return "device-crash";
    case FaultKind::kDeviceFlap:
      return "device-flap";
    case FaultKind::kPortErrorBurst:
      return "port-error-burst";
    case FaultKind::kLinkLoss:
      return "link-loss";
    case FaultKind::kChannelOutage:
      return "channel-outage";
    case FaultKind::kUpdateStorm:
      return "update-storm";
    case FaultKind::kMidUpgradeFailure:
      return "mid-upgrade-failure";
    case FaultKind::kTenantStorm:
      return "tenant-storm";
    case FaultKind::kDpuFailure:
      return "dpu-failure";
    case FaultKind::kChurnStorm:
      return "churn-storm";
    case FaultKind::kControllerBrownout:
      return "controller-brownout";
  }
  return "?";
}

std::string ChaosEvent::to_string() const {
  char line[160];
  std::snprintf(line, sizeof(line),
                "t=%.3f %s cluster=%zu device=%zu port=%u count=%u "
                "duration=%.3f error_rate=%.3e",
                time, chaos::to_string(kind).c_str(), cluster, device, port,
                count, duration, error_rate);
  return line;
}

ChaosSchedule& ChaosSchedule::add(ChaosEvent event) {
  // Insertion keeps the vector time-sorted with stable tie order, so a
  // scripted schedule replays identically however its lines were written.
  auto it = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const ChaosEvent& a, const ChaosEvent& b) { return a.time < b.time; });
  events_.insert(it, event);
  return *this;
}

double ChaosSchedule::horizon() const {
  double horizon = 0;
  for (const ChaosEvent& event : events_) {
    double end = event.time;
    switch (event.kind) {
      case FaultKind::kDeviceCrash:
      case FaultKind::kChannelOutage:
      case FaultKind::kTenantStorm:
      case FaultKind::kDpuFailure:
      case FaultKind::kControllerBrownout:
        end += event.duration;
        break;
      case FaultKind::kDeviceFlap:
        end += 2.0 * event.duration * event.count;
        break;
      case FaultKind::kPortErrorBurst:
      case FaultKind::kLinkLoss:
        end += static_cast<double>(event.count);
        break;
      case FaultKind::kUpdateStorm:
      case FaultKind::kMidUpgradeFailure:
      case FaultKind::kChurnStorm:
        break;
    }
    horizon = std::max(horizon, end);
  }
  return horizon;
}

std::string ChaosSchedule::to_string() const {
  std::string out;
  for (const ChaosEvent& event : events_) {
    out += event.to_string();
    out += '\n';
  }
  return out;
}

ChaosSchedule ChaosSchedule::random(std::uint64_t seed,
                                    const RandomConfig& config) {
  ChaosSchedule schedule;
  schedule.seed_ = seed;
  workload::Rng rng(seed ^ 0xc4a05f00d5eedULL);

  for (std::size_t i = 0; i < config.events; ++i) {
    ChaosEvent event;
    // Quantize start times to 0.5 s so the injector's probe ticks always
    // observe the fault fronts in the same order.
    event.time =
        0.5 * static_cast<double>(
                  rng.uniform(static_cast<std::uint64_t>(
                                  config.horizon_s / 0.5) +
                              1));
    event.cluster = rng.uniform(config.clusters);
    event.device = rng.uniform(config.devices_per_cluster);
    event.port = static_cast<unsigned>(rng.uniform(config.ports_per_device));

    // Data-plane faults always; control-plane/upgrade/tenant/DPU/churn/
    // brownout faults when enabled. New faces are appended after all
    // existing ones (order: tenant, dpu, churn, brownout) so configs
    // without them draw byte-identical schedules from the same seed.
    constexpr std::uint64_t kNoFace = ~std::uint64_t{0};
    const std::uint64_t base_faces = 4 +
                                     (config.control_plane_faults ? 2 : 0) +
                                     (config.upgrade_faults ? 1 : 0);
    std::uint64_t next_face = base_faces;
    const std::uint64_t tenant_face =
        config.tenant_storms ? next_face++ : kNoFace;
    const std::uint64_t dpu_face = config.dpu_faults ? next_face++ : kNoFace;
    const std::uint64_t churn_face =
        config.churn_storms ? next_face++ : kNoFace;
    const std::uint64_t brownout_face =
        config.controller_brownouts ? next_face++ : kNoFace;
    const std::uint64_t face = rng.uniform(next_face);
    if (face == brownout_face) {
      event.kind = FaultKind::kControllerBrownout;
      event.duration = 3.0 + static_cast<double>(rng.uniform(6));
      schedule.add(event);
      continue;
    }
    if (face == churn_face) {
      event.kind = FaultKind::kChurnStorm;
      event.count = 8 + static_cast<unsigned>(rng.uniform(24));
      schedule.add(event);
      continue;
    }
    if (face == dpu_face) {
      event.kind = FaultKind::kDpuFailure;
      event.duration = 3.0 + static_cast<double>(rng.uniform(6));
      schedule.add(event);
      continue;
    }
    if (face == tenant_face) {
      event.kind = FaultKind::kTenantStorm;
      event.count = 16 + static_cast<unsigned>(rng.uniform(16));
      event.duration = 3.0 + static_cast<double>(rng.uniform(5));
      // error_rate doubles as the storm magnitude: the tenant offers this
      // multiple of the region's nominal interval rate.
      event.error_rate = 2.0 + static_cast<double>(rng.uniform(4));
      schedule.add(event);
      continue;
    }
    switch (face) {
      case 0:
        event.kind = FaultKind::kDeviceCrash;
        event.duration = 2.0 + static_cast<double>(rng.uniform(8));
        break;
      case 1:
        event.kind = FaultKind::kDeviceFlap;
        event.count = 2 + static_cast<unsigned>(rng.uniform(4));
        event.duration = 1.0;  // half-period: one probe tick
        break;
      case 2:
        event.kind = FaultKind::kPortErrorBurst;
        event.count = 2 + static_cast<unsigned>(rng.uniform(6));
        event.error_rate = 1e-4;
        break;
      case 3:
        event.kind = FaultKind::kLinkLoss;
        // A few ports go dark together (a cut trunk), occasionally the
        // whole device — which must escalate to node-level failure.
        event.count = rng.chance(0.2)
                          ? config.ports_per_device
                          : 2 + static_cast<unsigned>(rng.uniform(
                                    config.ports_per_device / 2));
        event.error_rate = 1e-3;
        break;
      case 4:
        event.kind = FaultKind::kChannelOutage;
        event.duration = 2.0 + static_cast<double>(rng.uniform(6));
        break;
      case 5:
        event.kind = FaultKind::kUpdateStorm;
        event.count = 8 + static_cast<unsigned>(rng.uniform(24));
        break;
      default:
        event.kind = FaultKind::kMidUpgradeFailure;
        break;
    }
    schedule.add(event);
  }
  return schedule;
}

}  // namespace sf::chaos
