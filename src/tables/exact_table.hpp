// N-way set-associative exact-match table.
//
// This models how switch SRAM hash tables behave: a fixed array of buckets,
// each with a small number of ways. Insertion fails when every way of the
// target bucket is occupied — real hardware tables overflow on hash
// collisions well before 100% fill, which is why provisioning headroom
// (and the paper's careful occupancy accounting) matters.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "net/hash.hpp"

namespace sf::tables {

template <typename Key, typename Value, typename Hasher = std::hash<Key>>
class ExactTable {
 public:
  struct Config {
    /// Number of buckets; rounded up to a power of two.
    std::size_t buckets = 1024;
    /// Ways (slots) per bucket.
    unsigned ways = 4;
  };

  struct Stats {
    std::size_t entries = 0;
    std::size_t capacity = 0;
    std::size_t insert_failures = 0;
  };

  explicit ExactTable(Config config = {}, Hasher hasher = {})
      : hasher_(std::move(hasher)) {
    if (config.buckets == 0 || config.ways == 0) {
      throw std::invalid_argument("ExactTable needs buckets and ways > 0");
    }
    std::size_t buckets = 1;
    while (buckets < config.buckets) buckets <<= 1;
    bucket_mask_ = buckets - 1;
    ways_ = config.ways;
    const std::size_t total = buckets * ways_;
    slots_.reserve(total);
#if defined(__linux__)
    // Large tables are probed at random bucket offsets, so with 4 KiB pages
    // nearly every lookup eats a dTLB miss on top of the cache miss. Ask the
    // kernel to back the slot array with huge pages before resize() faults
    // the pages in (a no-op where THP is unavailable); the interior-aligned
    // range keeps madvise happy with the vector's arbitrary base address.
    constexpr std::size_t kHugePage = 2u << 20;
    const std::size_t bytes = total * sizeof(Slot);
    if (bytes >= 2 * kHugePage) {
      auto base = reinterpret_cast<std::uintptr_t>(slots_.data());
      const std::uintptr_t lo = (base + kHugePage - 1) & ~(kHugePage - 1);
      const std::uintptr_t hi = (base + bytes) & ~(kHugePage - 1);
      if (hi > lo) {
        ::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
      }
    }
#endif
    slots_.resize(total);
  }

  /// Inserts or replaces. Returns false (and counts a failure) when the
  /// target bucket has no free way.
  bool insert(const Key& key, Value value) {
    Slot* free_slot = nullptr;
    for (Slot& slot : bucket(key)) {
      if (slot.occupied && slot.key == key) {
        slot.value = std::move(value);
        return true;
      }
      if (!slot.occupied && free_slot == nullptr) free_slot = &slot;
    }
    if (free_slot == nullptr) {
      ++insert_failures_;
      return false;
    }
    free_slot->occupied = true;
    free_slot->key = key;
    free_slot->value = std::move(value);
    ++size_;
    return true;
  }

  std::optional<Value> lookup(const Key& key) const {
    for (const Slot& slot : bucket(key)) {
      if (slot.occupied && slot.key == key) return slot.value;
    }
    return std::nullopt;
  }

  /// Hints the bucket `key` hashes to into cache. Batch callers prefetch N
  /// buckets, then resolve N lookups, hiding the SRAM/DRAM miss of each
  /// bucket behind the hashing of the others.
  void prefetch(const Key& key) const {
    __builtin_prefetch(slots_.data() + (hasher_(key) & bucket_mask_) * ways_);
  }

  bool contains(const Key& key) const { return lookup(key).has_value(); }

  bool erase(const Key& key) {
    for (Slot& slot : bucket(key)) {
      if (slot.occupied && slot.key == key) {
        slot.occupied = false;
        slot.value = Value{};
        --size_;
        return true;
      }
    }
    return false;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }
  double load_factor() const {
    return static_cast<double>(size_) / static_cast<double>(slots_.size());
  }

  Stats stats() const { return Stats{size_, slots_.size(), insert_failures_}; }

  /// Visits all occupied slots.
  void for_each(const std::function<void(const Key&, const Value&)>& visit)
      const {
    for (const Slot& slot : slots_) {
      if (slot.occupied) visit(slot.key, slot.value);
    }
  }

  void clear() {
    for (Slot& slot : slots_) slot = Slot{};
    size_ = 0;
  }

 private:
  struct Slot {
    bool occupied = false;
    Key key{};
    Value value{};
  };

  std::span<Slot> bucket(const Key& key) {
    std::size_t index = (hasher_(key) & bucket_mask_) * ways_;
    return {slots_.data() + index, ways_};
  }
  std::span<const Slot> bucket(const Key& key) const {
    std::size_t index = (hasher_(key) & bucket_mask_) * ways_;
    return {slots_.data() + index, ways_};
  }

  Hasher hasher_;
  std::size_t bucket_mask_ = 0;
  unsigned ways_ = 0;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t insert_failures_ = 0;
};

}  // namespace sf::tables
