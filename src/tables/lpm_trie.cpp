// LpmTrie is a header-only class template (tables/lpm_trie.hpp). This
// translation unit pins an explicit instantiation so template errors
// surface when the library builds, not first in client code.

#include "tables/lpm_trie.hpp"

#include "tables/entry.hpp"

namespace sf::tables {

template class LpmTrie<VxlanRouteAction>;
template class LpmTrie<std::uint32_t>;

}  // namespace sf::tables
