#include "tables/entry.hpp"

namespace sf::tables {

std::string to_string(RouteScope scope) {
  switch (scope) {
    case RouteScope::kLocal:
      return "Local";
    case RouteScope::kPeer:
      return "Peer";
    case RouteScope::kIdc:
      return "IDC";
    case RouteScope::kCrossRegion:
      return "Cross-region";
    case RouteScope::kInternet:
      return "Internet";
  }
  return "?";
}

std::string to_string(MatchKind kind) {
  switch (kind) {
    case MatchKind::kExact:
      return "EXACT";
    case MatchKind::kLpm:
      return "LPM";
    case MatchKind::kTernary:
      return "TERNARY";
  }
  return "?";
}

}  // namespace sf::tables
