// DIR-24-8 longest-prefix match — the structure behind DPDK's rte_lpm,
// i.e. what a production XGW-x86 actually uses for IPv4 (§2.2 credits
// DPDK for the software gateway's ~1 Mpps/core):
//
//   * a 2^24-entry direct-indexed table keyed by the address's top 24
//     bits: one memory access resolves every route with length <= 24;
//   * routes longer than /24 allocate a 256-entry second-level group for
//     their /24; the first-level entry then points at the group and the
//     low 8 bits index it (two memory accesses).
//
// One instance serves one VPC's IPv4 table (64 MB of first-level entries
// at 4 bytes each would be the production layout; this model keeps the
// same structure with 32-bit slots). Cross-validated against LpmTrie in
// tests/tables/test_dir24_8.cpp.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ip.hpp"

namespace sf::tables {

class Dir24_8 {
 public:
  /// Values are 24-bit payloads (next-hop ids); the top bits of a slot
  /// hold valid/extended flags and the stored prefix length.
  static constexpr std::uint32_t kMaxValue = 0xffffff;

  Dir24_8();

  /// Inserts or replaces a route. Returns false when value exceeds
  /// kMaxValue.
  bool insert(const net::Ipv4Prefix& prefix, std::uint32_t value);

  /// Removes a route. Returns false when absent.
  bool remove(const net::Ipv4Prefix& prefix);

  /// Longest-prefix match: one or two array reads.
  std::optional<std::uint32_t> lookup(net::Ipv4Addr addr) const;

  std::size_t route_count() const { return routes_; }
  /// Second-level groups currently allocated (memory telemetry).
  std::size_t group_count() const { return allocated_groups_; }

 private:
  // Slot layout: [31] valid, [30] extended (first level only),
  // [29..24] stored prefix length, [23..0] value or group index.
  static constexpr std::uint32_t kValid = 1u << 31;
  static constexpr std::uint32_t kExtended = 1u << 30;

  static std::uint32_t make_slot(std::uint32_t value, unsigned length) {
    return kValid | (static_cast<std::uint32_t>(length) << 24) |
           (value & 0xffffff);
  }
  static unsigned slot_length(std::uint32_t slot) {
    return (slot >> 24) & 0x3f;
  }

  std::uint32_t allocate_group(std::uint32_t fill_slot);
  void free_group(std::uint32_t index);

  /// Re-derives a /24's first-level slot (and second level, if present)
  /// from the stored route set after a removal.
  void rebuild_covering(std::uint32_t top24);

  std::vector<std::uint32_t> level1_;  // 2^24 slots
  std::vector<std::array<std::uint32_t, 256>> groups_;
  std::vector<std::uint32_t> free_groups_;
  std::size_t allocated_groups_ = 0;

  /// Authoritative route set: (prefix bits | length) -> value. Needed to
  /// restore shorter covering routes on removal.
  struct Route {
    std::uint32_t bits;
    unsigned length;
    std::uint32_t value;
  };
  std::vector<Route> route_list_;
  std::size_t routes_ = 0;

  const Route* find_route(std::uint32_t bits, unsigned length) const;
  /// Longest route covering `addr` with length <= max_length.
  const Route* best_cover(std::uint32_t addr, unsigned max_length) const;
};

}  // namespace sf::tables
