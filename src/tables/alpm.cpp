// Alpm is header-only (tables/alpm.hpp); this TU pins instantiations.

#include "tables/alpm.hpp"

namespace sf::tables {

template class Alpm<VxlanRouteAction>;
template class Alpm<std::uint32_t>;

}  // namespace sf::tables
