// Alpm is header-only (tables/alpm.hpp); this TU pins instantiations and
// hosts the calibrated analytic shape model.

#include "tables/alpm.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace sf::tables {

template class Alpm<VxlanRouteAction>;
template class Alpm<std::uint32_t>;

double expected_alpm_fill(std::size_t max_bucket_entries) {
  // Measured average fill by bucket bound on the paper's workload
  // (bench_table3's ablation at 1M routes; 1M/5M/10M probes at bound 32
  // agree within ±1%: 0.574 / 0.567 / 0.561). Small buckets split eagerly
  // and stay half full; large buckets amortize splits better. Interpolated
  // in log2(bound), clamped at the measured ends.
  struct Point {
    double log2_bound;
    double fill;
  };
  static constexpr Point kCurve[] = {
      {3.0, 0.53}, {4.0, 0.53}, {5.0, 0.567}, {6.0, 0.61}, {7.0, 0.63},
  };
  const double x = std::log2(
      static_cast<double>(std::max<std::size_t>(1, max_bucket_entries)));
  if (x <= kCurve[0].log2_bound) return kCurve[0].fill;
  for (std::size_t i = 1; i < std::size(kCurve); ++i) {
    if (x <= kCurve[i].log2_bound) {
      const double t = (x - kCurve[i - 1].log2_bound) /
                       (kCurve[i].log2_bound - kCurve[i - 1].log2_bound);
      return kCurve[i - 1].fill + t * (kCurve[i].fill - kCurve[i - 1].fill);
    }
  }
  return kCurve[std::size(kCurve) - 1].fill;
}

AlpmShapeEstimate estimate_alpm_shape(std::size_t routes,
                                      std::size_t max_bucket_entries,
                                      unsigned slices_per_directory_entry,
                                      unsigned words_per_route) {
  const double fill = expected_alpm_fill(max_bucket_entries);
  AlpmShapeEstimate estimate;
  estimate.partitions = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(
             static_cast<double>(routes) /
             (fill * static_cast<double>(max_bucket_entries)))));
  estimate.directory_slices = estimate.partitions * slices_per_directory_entry;
  estimate.bucket_words =
      estimate.partitions * max_bucket_entries * words_per_route;
  return estimate;
}

}  // namespace sf::tables
