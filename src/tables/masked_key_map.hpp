// Hash-probe longest-prefix-match directory over 192-bit masked keys.
//
// Stores (key, depth) -> Value where depth is a prefix length in the
// combined key space (see tables/tcam.hpp for the pooled layout). A
// longest-match probes the distinct depths present, longest first, with one
// hash lookup each — the classic DRAM LPM of a software router, and the
// structure both the XGW-x86 route table and the ALPM pivot directory are
// built on. Distinct depths are few in practice (tenant route plans reuse a
// handful of prefix lengths), so lookups cost a handful of hash probes.
//
// The store is a flat open-addressing table (linear probing, tombstone
// deletes) rather than a node-based map: every probe is one predictable
// array access, which lets longest_match_batch() software-pipeline a whole
// burst — hash and prefetch every key's slot for one depth, then resolve
// them all — instead of chasing two dependent cache misses per probe per
// packet. The serial longest_match() walks the same layout.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/hash.hpp"
#include "tables/tcam.hpp"

namespace sf::tables {

template <typename Value>
class MaskedKeyMap {
 public:
  MaskedKeyMap() { rehash(kMinSlots); }

  /// Inserts or replaces. Returns true when new.
  bool insert(const TcamKey& key, unsigned depth, Value value) {
    const TcamKey canon = key.masked(tcam_mask(depth));
    const std::uint64_t h = hash_of(canon, depth);
    std::size_t tomb = kNoSlot;
    for (std::size_t i = h & mask_;; i = (i + 1) & mask_) {
      Slot& slot = slots_[i];
      if (slot.state == kEmpty) {
        Slot& target = tomb != kNoSlot ? slots_[tomb] : slot;
        if (tomb != kNoSlot) --tombstones_;
        target.state = kFull;
        target.hash = h;
        target.key = canon;
        target.depth = depth;
        target.value = std::move(value);
        ++size_;
        add_depth(depth);
        maybe_grow();
        return true;
      }
      if (slot.state == kTombstone) {
        if (tomb == kNoSlot) tomb = i;
        continue;
      }
      if (slot.hash == h && slot.depth == depth && slot.key == canon) {
        slot.value = std::move(value);
        return false;
      }
    }
  }

  bool erase(const TcamKey& key, unsigned depth) {
    const TcamKey canon = key.masked(tcam_mask(depth));
    const std::uint64_t h = hash_of(canon, depth);
    for (std::size_t i = h & mask_;; i = (i + 1) & mask_) {
      Slot& slot = slots_[i];
      if (slot.state == kEmpty) return false;
      if (slot.state == kFull && slot.hash == h && slot.depth == depth &&
          slot.key == canon) {
        slot.state = kTombstone;
        slot.value = Value{};
        --size_;
        ++tombstones_;
        remove_depth(depth);
        return true;
      }
    }
  }

  const Value* find(const TcamKey& key, unsigned depth) const {
    const TcamKey canon = key.masked(tcam_mask(depth));
    return probe(canon, depth, hash_of(canon, depth));
  }

  /// Longest match with depth < below (exclusive). Pass below > max key
  /// width (e.g. 256) for an unrestricted longest match.
  std::optional<std::pair<Value, unsigned>> longest_match(
      const TcamKey& key, unsigned below = 256) const {
    for (auto it = depths_.rbegin(); it != depths_.rend(); ++it) {
      if (it->depth >= below) continue;
      const TcamKey canon = key.masked(it->mask);
      const Value* hit = probe(canon, it->depth, hash_of(canon, it->depth));
      if (hit != nullptr) return {{*hit, it->depth}};
    }
    return std::nullopt;
  }

  /// Batched longest match: fills hit[i] (1 = matched), value[i] and
  /// depth_out[i] for every key. Works depth-major over the burst —
  /// deepest first, hash + prefetch every still-unresolved key's slot,
  /// then resolve them all — so the slot fetches of the whole burst
  /// overlap instead of serializing per key. Results are exactly what
  /// longest_match() returns per key. Chunked on stack scratch, so it is
  /// as thread-safe as the serial reader path.
  void longest_match_batch(std::span<const TcamKey> keys,
                           std::span<std::uint8_t> hit,
                           std::span<Value> value,
                           std::span<unsigned> depth_out) const {
    constexpr std::size_t kChunk = 128;
    for (std::size_t base = 0; base < keys.size(); base += kChunk) {
      const std::size_t n = std::min(kChunk, keys.size() - base);
      std::uint32_t live[kChunk];
      std::uint32_t next[kChunk];
      std::uint64_t h[kChunk];
      TcamKey canon[kChunk];
      std::size_t live_n = n;
      for (std::size_t i = 0; i < n; ++i) {
        live[i] = static_cast<std::uint32_t>(i);
        hit[base + i] = 0;
      }
      for (auto it = depths_.rbegin(); it != depths_.rend() && live_n != 0;
           ++it) {
        for (std::size_t j = 0; j < live_n; ++j) {
          const std::uint32_t i = live[j];
          canon[i] = keys[base + i].masked(it->mask);
          h[i] = hash_of(canon[i], it->depth);
          __builtin_prefetch(&slots_[h[i] & mask_]);
        }
        std::size_t next_n = 0;
        for (std::size_t j = 0; j < live_n; ++j) {
          const std::uint32_t i = live[j];
          const Value* v = probe(canon[i], it->depth, h[i]);
          if (v != nullptr) {
            hit[base + i] = 1;
            value[base + i] = *v;
            depth_out[base + i] = it->depth;
          } else {
            next[next_n++] = i;
          }
        }
        std::copy(next, next + next_n, live);
        live_n = next_n;
      }
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void for_each(const std::function<void(const TcamKey&, unsigned,
                                         const Value&)>& visit) const {
    for (const Slot& slot : slots_) {
      if (slot.state == kFull) visit(slot.key, slot.depth, slot.value);
    }
  }

  void clear() {
    slots_.clear();
    size_ = 0;
    tombstones_ = 0;
    depths_.clear();
    rehash(kMinSlots);
  }

 private:
  static constexpr std::size_t kMinSlots = 16;
  static constexpr std::size_t kNoSlot = ~std::size_t{0};
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kTombstone = 2;

  struct Slot {
    std::uint64_t hash = 0;
    TcamKey key;
    unsigned depth = 0;
    std::uint8_t state = kEmpty;
    Value value{};
  };

  static std::uint64_t hash_of(const TcamKey& canon, unsigned depth) {
    return net::hash_combine(tcam_hash(canon), net::mix64(depth));
  }

  const Value* probe(const TcamKey& canon, unsigned depth,
                     std::uint64_t h) const {
    for (std::size_t i = h & mask_;; i = (i + 1) & mask_) {
      const Slot& slot = slots_[i];
      if (slot.state == kEmpty) return nullptr;
      if (slot.state == kFull && slot.hash == h && slot.depth == depth &&
          slot.key == canon) {
        return &slot.value;
      }
    }
  }

  void maybe_grow() {
    // Keep full+tombstone occupancy under half so probe runs stay short.
    if ((size_ + tombstones_) * 2 >= slots_.size()) {
      rehash(std::max(kMinSlots, slots_.size() * 2));
    }
  }

  void rehash(std::size_t new_slots) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slots, Slot{});
    mask_ = new_slots - 1;
    tombstones_ = 0;
    for (Slot& slot : old) {
      if (slot.state != kFull) continue;
      for (std::size_t i = slot.hash & mask_;; i = (i + 1) & mask_) {
        if (slots_[i].state == kEmpty) {
          slots_[i] = std::move(slot);
          break;
        }
      }
    }
  }

  /// One distinct depth present in the map. The mask is precomputed: a
  /// longest_match probes every depth, and rebuilding a 192-bit mask per
  /// probe is a measurable slice of every route lookup.
  struct DepthEntry {
    unsigned depth = 0;
    std::size_t refs = 0;
    TcamKey mask;
  };

  void add_depth(unsigned depth) {
    auto it = std::lower_bound(
        depths_.begin(), depths_.end(), depth,
        [](const DepthEntry& entry, unsigned d) { return entry.depth < d; });
    if (it != depths_.end() && it->depth == depth) {
      ++it->refs;
    } else {
      depths_.insert(it, DepthEntry{depth, 1, tcam_mask(depth)});
    }
  }

  void remove_depth(unsigned depth) {
    auto it = std::lower_bound(
        depths_.begin(), depths_.end(), depth,
        [](const DepthEntry& entry, unsigned d) { return entry.depth < d; });
    if (it != depths_.end() && it->depth == depth && --it->refs == 0) {
      depths_.erase(it);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
  /// Sorted by depth, one entry per distinct depth present.
  std::vector<DepthEntry> depths_;
};

}  // namespace sf::tables
