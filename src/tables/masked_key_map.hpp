// Hash-probe longest-prefix-match directory over 192-bit masked keys.
//
// Stores (key, depth) -> Value where depth is a prefix length in the
// combined key space (see tables/tcam.hpp for the pooled layout). A
// longest-match probes the distinct depths present, longest first, with one
// hash lookup each — the classic DRAM LPM of a software router, and the
// structure both the XGW-x86 route table and the ALPM pivot directory are
// built on. Distinct depths are few in practice (tenant route plans reuse a
// handful of prefix lengths), so lookups cost a handful of hash probes.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/hash.hpp"
#include "tables/tcam.hpp"

namespace sf::tables {

template <typename Value>
class MaskedKeyMap {
 public:
  struct DepthKey {
    TcamKey key;  // canonicalized: masked to depth
    unsigned depth = 0;

    friend bool operator==(const DepthKey&, const DepthKey&) = default;
  };

  struct DepthKeyHasher {
    std::uint64_t operator()(const DepthKey& k) const {
      return net::hash_combine(tcam_hash(k.key), net::mix64(k.depth));
    }
  };

  /// Inserts or replaces. Returns true when new.
  bool insert(const TcamKey& key, unsigned depth, Value value) {
    DepthKey dk{key.masked(tcam_mask(depth)), depth};
    auto [it, inserted] = map_.insert_or_assign(dk, std::move(value));
    (void)it;
    if (inserted) add_depth(depth);
    return inserted;
  }

  bool erase(const TcamKey& key, unsigned depth) {
    DepthKey dk{key.masked(tcam_mask(depth)), depth};
    if (map_.erase(dk) == 0) return false;
    remove_depth(depth);
    return true;
  }

  const Value* find(const TcamKey& key, unsigned depth) const {
    DepthKey dk{key.masked(tcam_mask(depth)), depth};
    auto it = map_.find(dk);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Longest match with depth < below (exclusive). Pass below > max key
  /// width (e.g. 256) for an unrestricted longest match.
  std::optional<std::pair<Value, unsigned>> longest_match(
      const TcamKey& key, unsigned below = 256) const {
    for (auto it = depths_.rbegin(); it != depths_.rend(); ++it) {
      if (it->first >= below) continue;
      DepthKey dk{key.masked(tcam_mask(it->first)), it->first};
      auto hit = map_.find(dk);
      if (hit != map_.end()) return {{hit->second, it->first}};
    }
    return std::nullopt;
  }

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  void for_each(const std::function<void(const TcamKey&, unsigned,
                                         const Value&)>& visit) const {
    for (const auto& [dk, value] : map_) visit(dk.key, dk.depth, value);
  }

  void clear() {
    map_.clear();
    depths_.clear();
  }

 private:
  void add_depth(unsigned depth) {
    auto it = std::lower_bound(
        depths_.begin(), depths_.end(), depth,
        [](const auto& entry, unsigned d) { return entry.first < d; });
    if (it != depths_.end() && it->first == depth) {
      ++it->second;
    } else {
      depths_.insert(it, {depth, 1});
    }
  }

  void remove_depth(unsigned depth) {
    auto it = std::lower_bound(
        depths_.begin(), depths_.end(), depth,
        [](const auto& entry, unsigned d) { return entry.first < d; });
    if (it != depths_.end() && it->first == depth && --it->second == 0) {
      depths_.erase(it);
    }
  }

  std::unordered_map<DepthKey, Value, DepthKeyHasher> map_;
  /// Sorted (depth, refcount) pairs.
  std::vector<std::pair<unsigned, std::size_t>> depths_;
};

}  // namespace sf::tables
