#include "tables/range_expansion.hpp"

#include <stdexcept>

namespace sf::tables {

std::vector<TernaryRange> expand_port_range(std::uint16_t lo,
                                            std::uint16_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("expand_port_range: lo > hi");
  }
  std::vector<TernaryRange> out;
  std::uint32_t cursor = lo;
  const std::uint32_t end = hi;
  while (cursor <= end) {
    // The largest aligned power-of-two block starting at cursor that
    // stays within [cursor, end].
    std::uint32_t size = 1;
    while ((cursor & ((size << 1) - 1)) == 0 &&
           cursor + (size << 1) - 1 <= end) {
      size <<= 1;
    }
    out.push_back(TernaryRange{
        static_cast<std::uint16_t>(cursor),
        static_cast<std::uint16_t>(~(size - 1) & 0xffff)});
    cursor += size;
    if (cursor == 0) break;  // wrapped past 65535
  }
  return out;
}

std::size_t port_range_expansion_cost(std::uint16_t lo, std::uint16_t hi) {
  return expand_port_range(lo, hi).size();
}

}  // namespace sf::tables
