// Ternary CAM model.
//
// A TCAM row stores a (value, mask) pair; a search key matches a row when
// (key & mask) == (value & mask), and the highest-priority matching row
// wins. Physical TCAMs are built from fixed-width slices (44 bits on
// SfChip, asic/chip_config.hpp); a logical entry wider than one slice
// consumes several, which is exactly why the paper's IPv6 routes are so
// expensive (Table 2) and why ALPM (tables/alpm.hpp) moves route bulk into
// SRAM.
//
// The model favors obviousness over speed: lookup is a priority-ordered
// scan. That is plenty for first-level ALPM directories (thousands of
// rows); nothing in the repository scans a million-row TCAM per packet.
//
// Update cost: physical TCAMs resolve priority by *row position*, so
// inserting an entry between existing priorities shifts rows — the classic
// TCAM update problem, and part of why §5.2 cares that the VXLAN table
// updates slowly. The model charges each insert min(rows above, rows
// below) moves (shift toward the nearer end) and accumulates the total in
// stats().

#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "net/ip.hpp"
#include "net/packet.hpp"
#include "tables/entry.hpp"

namespace sf::tables {

/// A key of up to 192 bits, as three 64-bit words (word 0 holds the most
/// significant bits).
struct TcamKey {
  std::array<std::uint64_t, 3> w{};

  friend bool operator==(const TcamKey&, const TcamKey&) = default;

  TcamKey masked(const TcamKey& mask) const {
    return TcamKey{{w[0] & mask.w[0], w[1] & mask.w[1], w[2] & mask.w[2]}};
  }
};

/// Layout of the pooled routing key (label ‖ VNI ‖ 128-bit address):
///   bits [0,1)    family label (0 = v4-pooled, 1 = v6)
///   bits [1,25)   VNI
///   bits [25,153) address, v4 zero-extended (§4.4 IPv4/IPv6 table pooling)
inline constexpr unsigned kPooledRouteKeyBits = 1 + 24 + 128;

/// Builds the pooled search key for an address within a VNI.
TcamKey make_pooled_key(net::Vni vni, const net::IpAddr& ip);

/// Builds the pooled (value, mask) pair for a route prefix within a VNI.
std::pair<TcamKey, TcamKey> make_pooled_prefix(net::Vni vni,
                                               const net::IpPrefix& prefix);

/// Builds an unpooled IPv4-only search key / prefix pair (VNI ‖ 32-bit
/// address, 56 bits) — the "straightforward" Table 2 layout.
TcamKey make_v4_key(net::Vni vni, net::Ipv4Addr ip);
std::pair<TcamKey, TcamKey> make_v4_prefix(net::Vni vni,
                                           const net::Ipv4Prefix& prefix);

/// A mask with the `bits` most significant logical bits set.
TcamKey tcam_mask(unsigned bits);

/// Logical bit `index` of a key (0 = most significant).
inline bool tcam_bit(const TcamKey& key, unsigned index) {
  return ((key.w[index / 64] >> (63 - index % 64)) & 1u) != 0;
}

/// Lexicographic compare of the 192-bit value.
inline bool tcam_less(const TcamKey& a, const TcamKey& b) {
  return a.w < b.w;
}

/// Returns key with logical bit `index` set.
inline TcamKey tcam_set_bit(TcamKey key, unsigned index) {
  key.w[index / 64] |= std::uint64_t{1} << (63 - index % 64);
  return key;
}

/// 64-bit hash of a key (for hash-probe directories).
std::uint64_t tcam_hash(const TcamKey& key);

template <typename Value>
class Tcam {
 public:
  struct Config {
    unsigned key_bits = kPooledRouteKeyBits;
    unsigned slice_bits = 44;
    /// 0 means unbounded (model-only use, no capacity accounting).
    std::size_t capacity_slices = 0;
  };

  struct Row {
    TcamKey value;
    TcamKey mask;
    std::int32_t priority = 0;  // higher wins
    Value action{};
  };

  explicit Tcam(Config config = {}) : config_(config) {
    if (config_.slice_bits == 0) {
      throw std::invalid_argument("Tcam slice width must be positive");
    }
  }

  unsigned slices_per_entry() const {
    return (config_.key_bits + config_.slice_bits - 1) / config_.slice_bits;
  }

  /// Inserts a row; replaces an existing row with identical value/mask.
  /// Returns false when the TCAM is out of slices.
  bool insert(const TcamKey& value, const TcamKey& mask,
              std::int32_t priority, Value action) {
    for (Row& row : rows_) {
      if (row.value == value && row.mask == mask) {
        row.priority = priority;
        row.action = std::move(action);
        sort_rows();
        return true;
      }
    }
    if (config_.capacity_slices != 0 &&
        used_slices() + slices_per_entry() > config_.capacity_slices) {
      return false;
    }
    // Charge the physical update: the row lands at its priority position
    // and rows between there and the nearer end shift by one.
    const std::size_t index = static_cast<std::size_t>(
        std::lower_bound(rows_.begin(), rows_.end(), priority,
                         [](const Row& row, std::int32_t p) {
                           return row.priority > p;
                         }) -
        rows_.begin());
    ++update_stats_.inserts;
    update_stats_.entry_moves += moves_for_insert_at(index);
    rows_.push_back(Row{value.masked(mask), mask, priority,
                        std::move(action)});
    sort_rows();
    return true;
  }

  bool erase(const TcamKey& value, const TcamKey& mask) {
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (rows_[i].value == value.masked(mask) && rows_[i].mask == mask) {
        rows_.erase(rows_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  /// Highest-priority match, or nullopt.
  std::optional<Value> lookup(const TcamKey& key) const {
    for (const Row& row : rows_) {
      if (key.masked(row.mask) == row.value) return row.action;
    }
    return std::nullopt;
  }

  const Row* lookup_row(const TcamKey& key) const {
    for (const Row& row : rows_) {
      if (key.masked(row.mask) == row.value) return &row;
    }
    return nullptr;
  }

  std::size_t size() const { return rows_.size(); }
  std::size_t used_slices() const { return rows_.size() * slices_per_entry(); }
  const Config& config() const { return config_; }
  const std::vector<Row>& rows() const { return rows_; }

  struct UpdateStats {
    std::size_t inserts = 0;
    /// Physical row shifts charged across all inserts (TCAM update cost).
    std::size_t entry_moves = 0;
  };
  const UpdateStats& update_stats() const { return update_stats_; }

  void clear() { rows_.clear(); }

 private:
  void sort_rows() {
    std::stable_sort(rows_.begin(), rows_.end(),
                     [](const Row& a, const Row& b) {
                       return a.priority > b.priority;
                     });
  }

  /// Rows a physical TCAM would shift to open a slot at `index`.
  std::size_t moves_for_insert_at(std::size_t index) const {
    return std::min(index, rows_.size() - index);
  }

  Config config_;
  std::vector<Row> rows_;
  UpdateStats update_stats_;
};

}  // namespace sf::tables
