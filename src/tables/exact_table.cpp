// ExactTable is header-only (tables/exact_table.hpp); this TU pins an
// instantiation so the template compiles with the library.

#include "tables/exact_table.hpp"

#include "tables/entry.hpp"

namespace sf::tables {

struct VmNcKeyHasher {
  std::uint64_t operator()(const VmNcKey& key) const {
    return net::hash_combine(net::mix64(key.vni), net::hash_ip(key.vm_ip));
  }
};

template class ExactTable<VmNcKey, VmNcAction, VmNcKeyHasher>;

}  // namespace sf::tables
