// DRAM-style dual-stack route table — the XGW-x86's view of the VXLAN
// routing table (§2.2). Built on the hash-probe MaskedKeyMap, so capacity
// is bounded only by host memory and updates are O(1): exactly the
// "huge memory space with full programmability" role the paper assigns to
// the software gateway.

#pragma once

#include <optional>

#include "tables/entry.hpp"
#include "tables/masked_key_map.hpp"
#include "tables/tcam.hpp"

namespace sf::tables {

template <typename Value>
class SoftwareLpm {
 public:
  /// Inserts or replaces. Returns true when the route was new.
  bool insert(net::Vni vni, const net::IpPrefix& prefix, Value value) {
    auto [key, mask] = make_pooled_prefix(vni, prefix);
    (void)mask;
    return map_.insert(key, depth_of(prefix), std::move(value));
  }

  bool erase(net::Vni vni, const net::IpPrefix& prefix) {
    auto [key, mask] = make_pooled_prefix(vni, prefix);
    (void)mask;
    return map_.erase(key, depth_of(prefix));
  }

  const Value* find(net::Vni vni, const net::IpPrefix& prefix) const {
    auto [key, mask] = make_pooled_prefix(vni, prefix);
    (void)mask;
    return map_.find(key, depth_of(prefix));
  }

  std::optional<Value> lookup(net::Vni vni, const net::IpAddr& ip) const {
    auto hit = map_.longest_match(make_pooled_key(vni, ip));
    if (!hit) return std::nullopt;
    return hit->first;
  }

  std::size_t size() const { return map_.size(); }
  void clear() { map_.clear(); }

 private:
  static unsigned depth_of(const net::IpPrefix& prefix) {
    return 1 + 24 + prefix.pooled_length();
  }

  MaskedKeyMap<Value> map_;
};

}  // namespace sf::tables
