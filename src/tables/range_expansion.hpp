// Port-range to ternary expansion.
//
// TCAMs match (value, mask) pairs, so an ACL port range such as
// [1024, 65535] cannot occupy one row: it expands into a set of aligned
// power-of-two blocks (up to 2w-2 rows for a w-bit field). Real switch
// ACLs pay this multiplier, so the occupancy model should too — the
// AclTable exposes its true TCAM row bill through it.

#pragma once

#include <cstdint>
#include <vector>

namespace sf::tables {

/// One expanded ternary entry over a 16-bit field: matches x when
/// (x & mask) == value.
struct TernaryRange {
  std::uint16_t value = 0;
  std::uint16_t mask = 0;

  friend bool operator==(const TernaryRange&, const TernaryRange&) = default;

  bool matches(std::uint16_t x) const { return (x & mask) == value; }
};

/// Minimal aligned-block cover of the inclusive range [lo, hi].
/// Precondition: lo <= hi. Every port in the range matches exactly one
/// returned entry; no port outside it matches any.
std::vector<TernaryRange> expand_port_range(std::uint16_t lo,
                                            std::uint16_t hi);

/// Row count without materializing the entries.
std::size_t port_range_expansion_cost(std::uint16_t lo, std::uint16_t hi);

}  // namespace sf::tables
