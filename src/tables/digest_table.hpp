// The pooled, digest-compressed VM-NC mapping table (§4.4, "IPv4/IPv6
// table pooling" + "Compressing longer table entries").
//
// One physical exact-match table serves both families. The lookup key is
//   label(1) ‖ VNI(24) ‖ ip32(32)
// where ip32 is the IPv4 address itself (label 0) or a 32-bit hash digest
// of the IPv6 address (label 1). Two collision classes exist:
//   * v4 vs compressed-v6: impossible by construction — the label bit
//     separates the namespaces.
//   * two v6 keys with equal digests: the second key is diverted to a small
//     conflict table that stores the full 128-bit key. Lookups consult the
//     conflict table first, then the digest table (paper's lookup order).
//
// Like the paper's design, the digest table stores no full key, so a lookup
// for a *never-inserted* v6 address whose digest collides with a real entry
// returns that entry's action (a false positive). The cloud gateway
// tolerates this: traffic only arrives for provisioned VMs, and a stray
// packet is dropped by the destination vSwitch. tests/tables exercise both
// properties.

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/hash.hpp"
#include "tables/entry.hpp"
#include "tables/exact_table.hpp"

namespace sf::tables {

class DigestVmNcTable {
 public:
  struct Config {
    /// Buckets/ways of the main pooled table.
    std::size_t buckets = 1 << 19;
    unsigned ways = 4;
    /// Digest width in bits (the paper compresses 128 -> 32).
    unsigned digest_bits = 32;
    /// Seed of the digest hash; varied by tests to force collisions.
    std::uint64_t digest_seed = 0x5a11f15bULL;
  };

  struct Stats {
    std::size_t main_entries = 0;
    std::size_t conflict_entries = 0;
    std::size_t insert_failures = 0;
    std::size_t false_positive_candidates = 0;  // digest collisions seen
  };

  DigestVmNcTable();
  explicit DigestVmNcTable(Config config);

  /// Inserts or replaces a VM -> NC mapping.
  bool insert(const VmNcKey& key, VmNcAction action);

  /// Removes a mapping; promotes a conflict-table entry whose digest slot
  /// frees up back into the main table.
  bool erase(const VmNcKey& key);

  std::optional<VmNcAction> lookup(net::Vni vni, const net::IpAddr& ip) const;

  /// Prefetches the main-table bucket a later lookup(vni, ip) will scan
  /// (the conflict store is tiny and stays hot on its own).
  void prefetch(net::Vni vni, const net::IpAddr& ip) const;

  Stats stats() const;

  /// SRAM words (128-bit) the main table's *entries* occupy — 1 word per
  /// pooled entry. The conflict table stores the full 152-bit key and
  /// costs 4 words per entry (wide-key replication, DESIGN.md §1).
  std::size_t entry_words() const;

  const Config& config() const { return config_; }

 private:
  /// The compressed 32-bit ip field of the pooled key.
  std::uint32_t ip32(const net::IpAddr& ip) const;

  /// Pooled main-table key: label ‖ vni ‖ ip32 packed into 64 bits.
  std::uint64_t pooled_key(const VmNcKey& key) const;
  std::uint64_t pooled_key(net::Vni vni, const net::IpAddr& ip) const;

  struct PooledHasher {
    std::uint64_t operator()(std::uint64_t key) const {
      return net::mix64(key);
    }
  };

  struct FullKeyHasher {
    std::uint64_t operator()(const VmNcKey& key) const {
      return net::hash_combine(net::mix64(key.vni), net::hash_ip(key.vm_ip));
    }
  };

  Config config_;
  ExactTable<std::uint64_t, VmNcAction, PooledHasher> main_;
  /// digest slot -> the full key currently owning it (v6 only); lets erase
  /// decide whether a conflict entry can be promoted.
  std::unordered_map<std::uint64_t, VmNcKey, PooledHasher> owners_;
  /// Full-key conflict table (kept small by the birthday bound).
  std::unordered_map<VmNcKey, VmNcAction, FullKeyHasher> conflicts_;
  std::size_t collision_events_ = 0;
};

}  // namespace sf::tables
