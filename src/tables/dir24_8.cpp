#include "tables/dir24_8.hpp"

#include <algorithm>

namespace sf::tables {
namespace {

constexpr std::uint32_t top24(std::uint32_t addr) { return addr >> 8; }
constexpr std::uint32_t low8(std::uint32_t addr) { return addr & 0xff; }

}  // namespace

Dir24_8::Dir24_8() : level1_(1u << 24, 0) {}

const Dir24_8::Route* Dir24_8::find_route(std::uint32_t bits,
                                          unsigned length) const {
  for (const Route& route : route_list_) {
    if (route.length == length && route.bits == bits) return &route;
  }
  return nullptr;
}

const Dir24_8::Route* Dir24_8::best_cover(std::uint32_t addr,
                                          unsigned max_length) const {
  const Route* best = nullptr;
  for (const Route& route : route_list_) {
    if (route.length > max_length) continue;
    const std::uint32_t mask =
        route.length == 0 ? 0 : ~std::uint32_t{0} << (32 - route.length);
    if ((addr & mask) != route.bits) continue;
    if (best == nullptr || route.length > best->length) best = &route;
  }
  return best;
}

std::uint32_t Dir24_8::allocate_group(std::uint32_t fill_slot) {
  std::uint32_t index;
  if (!free_groups_.empty()) {
    index = free_groups_.back();
    free_groups_.pop_back();
  } else {
    groups_.emplace_back();
    index = static_cast<std::uint32_t>(groups_.size() - 1);
  }
  groups_[index].fill(fill_slot);
  ++allocated_groups_;
  return index;
}

void Dir24_8::free_group(std::uint32_t index) {
  free_groups_.push_back(index);
  --allocated_groups_;
}

bool Dir24_8::insert(const net::Ipv4Prefix& prefix, std::uint32_t value) {
  if (value > kMaxValue) return false;
  const std::uint32_t bits = prefix.address().value();
  const unsigned length = prefix.length();

  // Authoritative set first.
  bool replaced = false;
  for (Route& route : route_list_) {
    if (route.length == length && route.bits == bits) {
      route.value = value;
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    route_list_.push_back(Route{bits, length, value});
    ++routes_;
  }

  if (length <= 24) {
    const std::uint32_t first = top24(bits);
    const std::uint32_t count = 1u << (24 - length);
    const std::uint32_t slot = make_slot(value, length);
    for (std::uint32_t i = first; i < first + count; ++i) {
      std::uint32_t& entry = level1_[i];
      if (entry & kExtended) {
        // Update covering entries inside the group without disturbing
        // longer routes.
        for (std::uint32_t& sub : groups_[entry & 0xffffff]) {
          if (!(sub & kValid) || slot_length(sub) <= length) sub = slot;
        }
      } else if (!(entry & kValid) || slot_length(entry) <= length) {
        entry = slot;
      }
    }
    return true;
  }

  // length > 24: route lives in a second-level group.
  const std::uint32_t index = top24(bits);
  std::uint32_t& entry = level1_[index];
  if (!(entry & kExtended)) {
    const std::uint32_t group =
        allocate_group(entry & kValid ? entry : 0);
    entry = kValid | kExtended | group;
  }
  auto& group = groups_[entry & 0xffffff];
  const std::uint32_t first = low8(bits);
  const std::uint32_t count = 1u << (32 - length);
  const std::uint32_t slot = make_slot(value, length);
  for (std::uint32_t i = first; i < first + count; ++i) {
    if (!(group[i] & kValid) || slot_length(group[i]) <= length) {
      group[i] = slot;
    }
  }
  return true;
}

void Dir24_8::rebuild_covering(std::uint32_t index) {
  std::uint32_t& entry = level1_[index];
  if (entry & kExtended) return;  // group entries are rebuilt separately
  const Route* cover = best_cover(index << 8, 24);
  entry = cover == nullptr ? 0 : make_slot(cover->value, cover->length);
}

bool Dir24_8::remove(const net::Ipv4Prefix& prefix) {
  const std::uint32_t bits = prefix.address().value();
  const unsigned length = prefix.length();
  auto it = std::find_if(route_list_.begin(), route_list_.end(),
                         [&](const Route& route) {
                           return route.length == length &&
                                  route.bits == bits;
                         });
  if (it == route_list_.end()) return false;
  route_list_.erase(it);
  --routes_;

  if (length <= 24) {
    const std::uint32_t first = top24(bits);
    const std::uint32_t count = 1u << (24 - length);
    for (std::uint32_t i = first; i < first + count; ++i) {
      std::uint32_t& entry = level1_[i];
      if (entry & kExtended) {
        auto& group = groups_[entry & 0xffffff];
        for (std::uint32_t sub = 0; sub < 256; ++sub) {
          if ((group[sub] & kValid) && slot_length(group[sub]) == length) {
            const Route* cover = best_cover((i << 8) | sub, 32);
            group[sub] = cover == nullptr
                             ? 0
                             : make_slot(cover->value, cover->length);
          }
        }
      } else if ((entry & kValid) && slot_length(entry) == length) {
        rebuild_covering(i);
      }
    }
    return true;
  }

  const std::uint32_t index = top24(bits);
  std::uint32_t& entry = level1_[index];
  if (entry & kExtended) {
    auto& group = groups_[entry & 0xffffff];
    const std::uint32_t first = low8(bits);
    const std::uint32_t count = 1u << (32 - length);
    for (std::uint32_t i = first; i < first + count; ++i) {
      if ((group[i] & kValid) && slot_length(group[i]) == length) {
        const Route* cover = best_cover((index << 8) | i, 32);
        group[i] = cover == nullptr
                       ? 0
                       : make_slot(cover->value, cover->length);
      }
    }
    // Collapse the group when no >24 route remains under this /24.
    const bool still_extended = std::any_of(
        route_list_.begin(), route_list_.end(), [&](const Route& route) {
          return route.length > 24 && top24(route.bits) == index;
        });
    if (!still_extended) {
      free_group(entry & 0xffffff);
      entry = 0;
      rebuild_covering(index);
    }
  }
  return true;
}

std::optional<std::uint32_t> Dir24_8::lookup(net::Ipv4Addr addr) const {
  const std::uint32_t entry = level1_[top24(addr.value())];
  if (!(entry & kValid)) return std::nullopt;
  if (!(entry & kExtended)) return entry & 0xffffff;
  const std::uint32_t sub =
      groups_[entry & 0xffffff][low8(addr.value())];
  if (!(sub & kValid)) return std::nullopt;
  return sub & 0xffffff;
}

}  // namespace sf::tables
