#include "tables/service_tables.hpp"

#include <algorithm>
#include <stdexcept>

#include "tables/range_expansion.hpp"

namespace sf::tables {

bool AclRule::matches(net::Vni vni_in, const net::FiveTuple& tuple) const {
  if (vni && *vni != vni_in) return false;
  if (src && !src->contains(tuple.src)) return false;
  if (dst && !dst->contains(tuple.dst)) return false;
  if (proto && *proto != tuple.proto) return false;
  if (src_port && *src_port != tuple.src_port) return false;
  if (dst_port && *dst_port != tuple.dst_port) return false;
  if (src_port_range && (tuple.src_port < src_port_range->first ||
                         tuple.src_port > src_port_range->second)) {
    return false;
  }
  if (dst_port_range && (tuple.dst_port < dst_port_range->first ||
                         tuple.dst_port > dst_port_range->second)) {
    return false;
  }
  return true;
}

std::size_t AclRule::tcam_rows() const {
  std::size_t rows = 1;
  if (src_port_range) {
    rows *= port_range_expansion_cost(src_port_range->first,
                                      src_port_range->second);
  }
  if (dst_port_range) {
    rows *= port_range_expansion_cost(dst_port_range->first,
                                      dst_port_range->second);
  }
  return rows;
}

void AclTable::add(AclRule rule) {
  auto at = std::upper_bound(rules_.begin(), rules_.end(), rule,
                             [](const AclRule& a, const AclRule& b) {
                               return a.priority > b.priority;
                             });
  rules_.insert(at, std::move(rule));
}

std::size_t AclTable::tcam_rows() const {
  std::size_t rows = 0;
  for (const AclRule& rule : rules_) rows += rule.tcam_rows();
  return rows;
}

AclVerdict AclTable::evaluate(net::Vni vni,
                              const net::FiveTuple& tuple) const {
  for (const AclRule& rule : rules_) {
    if (rule.matches(vni, tuple)) return rule.verdict;
  }
  return default_verdict_;
}

std::size_t MeterTable::add(Config config) {
  meters_.push_back(Meter{config, config.burst_bytes, 0});
  return meters_.size() - 1;
}

MeterColor MeterTable::offer(std::size_t index, double bytes, double now) {
  Meter& meter = meters_.at(index);
  if (now > meter.last_refill) {
    meter.tokens = std::min(
        meter.config.burst_bytes,
        meter.tokens + (now - meter.last_refill) * meter.config.rate_bps / 8);
    meter.last_refill = now;
  }
  if (meter.tokens >= bytes) {
    meter.tokens -= bytes;
    return MeterColor::kGreen;
  }
  return MeterColor::kRed;
}

void MeterTable::reconfigure(std::size_t index, Config config) {
  Meter& meter = meters_.at(index);
  meter.config = config;
  meter.tokens = std::min(meter.tokens, config.burst_bytes);
}

std::size_t CounterTable::add() {
  counters_.emplace_back();
  return counters_.size() - 1;
}

void CounterTable::count(std::size_t index, std::uint64_t bytes,
                         std::uint64_t packets) {
  Counter& counter = counters_.at(index);
  counter.packets += packets;
  counter.bytes += bytes;
}

const CounterTable::Counter& CounterTable::at(std::size_t index) const {
  return counters_.at(index);
}

}  // namespace sf::tables
