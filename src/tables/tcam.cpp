#include "tables/tcam.hpp"

#include <algorithm>

#include "net/hash.hpp"

namespace sf::tables {
namespace {

// Packs (label ‖ vni ‖ address) into the 192-bit TcamKey, left-aligned:
// bit 0 of the logical key is the MSB of w[0].
TcamKey pack(std::uint8_t label, net::Vni vni, const net::Ipv6Addr& addr) {
  // Logical layout: [label:1][vni:24][addr:128], total 153 bits.
  // w[0] = label(1) vni(24) addr[0..39)
  // w[1] = addr[39..103)
  // w[2] = addr[103..128) << 39
  TcamKey key;
  key.w[0] = (std::uint64_t{label} << 63) |
             ((std::uint64_t{vni} & 0xffffff) << 39) | (addr.hi() >> 25);
  key.w[1] = (addr.hi() << 39) | (addr.lo() >> 25);
  key.w[2] = addr.lo() << 39;
  return key;
}

std::uint8_t family_label(net::IpFamily family) {
  return family == net::IpFamily::kV6 ? 1 : 0;
}

}  // namespace

TcamKey tcam_mask(unsigned bits) {
  TcamKey mask;
  for (unsigned word = 0; word < 3; ++word) {
    unsigned start = word * 64;
    if (bits <= start) {
      mask.w[word] = 0;
    } else if (bits >= start + 64) {
      mask.w[word] = ~std::uint64_t{0};
    } else {
      mask.w[word] = ~std::uint64_t{0} << (64 - (bits - start));
    }
  }
  return mask;
}

std::uint64_t tcam_hash(const TcamKey& key) {
  return net::hash_combine(net::hash_combine(net::mix64(key.w[0]),
                                             net::mix64(key.w[1])),
                           net::mix64(key.w[2]));
}

TcamKey make_pooled_key(net::Vni vni, const net::IpAddr& ip) {
  return pack(family_label(ip.family()), vni, ip.widened());
}

std::pair<TcamKey, TcamKey> make_pooled_prefix(net::Vni vni,
                                               const net::IpPrefix& prefix) {
  TcamKey value = pack(family_label(prefix.family()), vni,
                       prefix.widened_address());
  // Fixed fields (label + VNI) are always matched; the address contributes
  // its pooled prefix length.
  TcamKey mask = tcam_mask(1 + 24 + prefix.pooled_length());
  return {value.masked(mask), mask};
}

TcamKey make_v4_key(net::Vni vni, net::Ipv4Addr ip) {
  TcamKey key;
  key.w[0] = (std::uint64_t{vni} << 40) | (std::uint64_t{ip.value()} << 8);
  return key;
}

std::pair<TcamKey, TcamKey> make_v4_prefix(net::Vni vni,
                                           const net::Ipv4Prefix& prefix) {
  TcamKey value = make_v4_key(vni, prefix.address());
  TcamKey mask = tcam_mask(24 + prefix.length());
  return {value.masked(mask), mask};
}

}  // namespace sf::tables
