#include "tables/digest_table.hpp"

namespace sf::tables {

DigestVmNcTable::DigestVmNcTable() : DigestVmNcTable(Config{}) {}

DigestVmNcTable::DigestVmNcTable(Config config)
    : config_(config),
      main_(typename decltype(main_)::Config{config.buckets, config.ways}) {
  if (config_.digest_bits == 0 || config_.digest_bits > 32) {
    throw std::invalid_argument("digest width must be in (0, 32]");
  }
}

std::uint32_t DigestVmNcTable::ip32(const net::IpAddr& ip) const {
  if (ip.is_v4()) return ip.v4().value();
  return static_cast<std::uint32_t>(
      net::digest(ip.v6().hi(), ip.v6().lo(), config_.digest_bits,
                  config_.digest_seed));
}

std::uint64_t DigestVmNcTable::pooled_key(const VmNcKey& key) const {
  return pooled_key(key.vni, key.vm_ip);
}

std::uint64_t DigestVmNcTable::pooled_key(net::Vni vni,
                                          const net::IpAddr& ip) const {
  std::uint64_t label = ip.is_v6() ? 1 : 0;
  return (label << 56) | (std::uint64_t{vni} << 32) | ip32(ip);
}

bool DigestVmNcTable::insert(const VmNcKey& key, VmNcAction action) {
  const std::uint64_t pooled = pooled_key(key);

  if (key.vm_ip.is_v6()) {
    // Replacing an existing conflict entry stays in the conflict table.
    if (auto it = conflicts_.find(key); it != conflicts_.end()) {
      it->second = action;
      return true;
    }
    auto owner = owners_.find(pooled);
    if (owner != owners_.end() && owner->second != key) {
      // A different v6 key already owns this digest slot: divert to the
      // conflict table (keeps the full 128-bit key).
      ++collision_events_;
      conflicts_.emplace(key, action);
      return true;
    }
    if (!main_.insert(pooled, action)) return false;
    owners_[pooled] = key;
    return true;
  }
  return main_.insert(pooled, action);
}

bool DigestVmNcTable::erase(const VmNcKey& key) {
  const std::uint64_t pooled = pooled_key(key);

  if (key.vm_ip.is_v6()) {
    if (conflicts_.erase(key) > 0) return true;
    auto owner = owners_.find(pooled);
    if (owner == owners_.end() || owner->second != key) return false;
    main_.erase(pooled);
    owners_.erase(owner);
    // Promote a conflict entry that collided on this digest slot, if any.
    for (auto it = conflicts_.begin(); it != conflicts_.end(); ++it) {
      if (pooled_key(it->first) == pooled) {
        if (main_.insert(pooled, it->second)) {
          owners_[pooled] = it->first;
          conflicts_.erase(it);
        }
        break;
      }
    }
    return true;
  }
  return main_.erase(pooled);
}

std::optional<VmNcAction> DigestVmNcTable::lookup(
    net::Vni vni, const net::IpAddr& ip) const {
  if (ip.is_v6()) {
    // Paper's order: the full-key conflict table first, then the pooled
    // digest table.
    if (auto it = conflicts_.find(VmNcKey{vni, ip}); it != conflicts_.end()) {
      return it->second;
    }
  }
  return main_.lookup(pooled_key(vni, ip));
}

void DigestVmNcTable::prefetch(net::Vni vni, const net::IpAddr& ip) const {
  main_.prefetch(pooled_key(vni, ip));
}

DigestVmNcTable::Stats DigestVmNcTable::stats() const {
  return Stats{main_.size(), conflicts_.size(), main_.stats().insert_failures,
               collision_events_};
}

std::size_t DigestVmNcTable::entry_words() const {
  // Pooled entries: 1+24+32 key + 32 action + meta < 128 bits -> 1 word.
  // Conflict entries: 152-bit key -> wide-key cost, 4 words (DESIGN.md).
  return main_.size() + 4 * conflicts_.size();
}

}  // namespace sf::tables
