// QoS / policy service tables (§3.3 "Handling diverse cloud services"):
// ACL, meter and counter tables installed per the SLAs signed with
// customers. They ride in the same pipelines as the two major tables and
// are what Table 4's "all the actual tables" occupancy adds on top of
// Table 3.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/headers.hpp"
#include "net/packet.hpp"
#include "tables/entry.hpp"

namespace sf::tables {

/// Verdict of an ACL match.
enum class AclVerdict : std::uint8_t { kPermit, kDeny };

/// One ternary ACL rule over (VNI, inner 5-tuple). Unset fields wildcard.
/// Port fields may be exact values or inclusive ranges; a range costs
/// multiple TCAM rows (tables/range_expansion.hpp).
struct AclRule {
  std::optional<net::Vni> vni;
  std::optional<net::IpPrefix> src;
  std::optional<net::IpPrefix> dst;
  std::optional<std::uint8_t> proto;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  std::optional<std::pair<std::uint16_t, std::uint16_t>> src_port_range;
  std::optional<std::pair<std::uint16_t, std::uint16_t>> dst_port_range;
  std::int32_t priority = 0;  // higher wins
  AclVerdict verdict = AclVerdict::kPermit;

  bool matches(net::Vni vni_in, const net::FiveTuple& tuple) const;

  /// TCAM rows this rule occupies after range expansion (the product of
  /// the two port-range covers; 1 for exact/wildcard fields).
  std::size_t tcam_rows() const;
};

/// Priority-ordered ternary ACL. Default verdict applies when nothing
/// matches (cloud ACLs default-permit inside a VPC).
class AclTable {
 public:
  explicit AclTable(AclVerdict default_verdict = AclVerdict::kPermit)
      : default_verdict_(default_verdict) {}

  void add(AclRule rule);
  std::size_t size() const { return rules_.size(); }

  /// Physical TCAM rows across all rules, range expansion included.
  std::size_t tcam_rows() const;

  AclVerdict evaluate(net::Vni vni, const net::FiveTuple& tuple) const;

  /// Ternary key width for the occupancy model: VNI + v4 5-tuple.
  static constexpr unsigned kKeyBits = 24 + 32 + 32 + 8 + 16 + 16;

 private:
  AclVerdict default_verdict_;
  std::vector<AclRule> rules_;  // kept sorted by descending priority
};

/// Color result of a two-color token-bucket meter.
enum class MeterColor : std::uint8_t { kGreen, kRed };

/// A bank of token-bucket meters, one per index (per tenant/SLA). Time is
/// the simulation clock in seconds; buckets refill lazily on offer().
class MeterTable {
 public:
  struct Config {
    double rate_bps = 1e9;
    double burst_bytes = 1e6;
  };

  /// Creates a meter; returns its index.
  std::size_t add(Config config);
  std::size_t size() const { return meters_.size(); }

  /// Offers `bytes` at time `now`; returns green when tokens sufficed.
  MeterColor offer(std::size_t index, double bytes, double now);

  /// Reconfigures an existing meter (SLA change).
  void reconfigure(std::size_t index, Config config);

 private:
  struct Meter {
    Config config;
    double tokens = 0;
    double last_refill = 0;
  };

  std::vector<Meter> meters_;
};

/// A bank of packet/byte counters, one per index.
class CounterTable {
 public:
  struct Counter {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  std::size_t add();
  std::size_t size() const { return counters_.size(); }

  void count(std::size_t index, std::uint64_t bytes,
             std::uint64_t packets = 1);
  const Counter& at(std::size_t index) const;

 private:
  std::vector<Counter> counters_;
};

}  // namespace sf::tables
