// Algorithmic LPM (§4.4 "TCAM conservation for large FIBs", ref. [40]).
//
// The route set lives in SRAM; only a small directory lives in TCAM. Routes
// are partitioned into disjoint subtrees of the combined pooled key space
// (label ‖ VNI ‖ address, tables/tcam.hpp). Each subtree's pivot prefix is
// one row of the first-level TCAM directory; the subtree's routes form a
// bounded SRAM bucket hanging off that row. A lookup longest-matches the
// directory and then scans one bucket.
//
// Two properties make this correct and cheap:
//
//  * Covering routes. A route *shorter* than a pivot can still be the best
//    match for an address that lands in that pivot's bucket. Every bucket
//    therefore carries the longest ancestor route of its pivot as a
//    fallback; insert/erase maintain it.
//
//  * Suffix compression. A bucket's routes share the pivot's leading bits,
//    so only suffix bits are stored per entry — this is what keeps a route
//    to one 128-bit SRAM word and makes ALPM's SRAM bill comparable to an
//    exact-match table of the same size (Fig. 17, step e).
//
// Partitioning carves a subtree as soon as the pending route count reaches
// ceil((max_bucket+1)/2), which bounds every bucket by max_bucket while
// keeping average fill high. The same carve routine serves the bulk build
// and bucket splits on dynamic insert.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "tables/entry.hpp"
#include "tables/masked_key_map.hpp"
#include "tables/tcam.hpp"

namespace sf::tables {

/// Analytic model of Alpm<...>::Stats for capacity planning without
/// building the trie.
struct AlpmShapeEstimate {
  std::size_t partitions = 0;
  std::size_t directory_slices = 0;
  std::size_t bucket_words = 0;  // reserved SRAM words (partitions x bound)
};

/// Expected bucket fill (routes / reserved slots) for a given bucket
/// bound, calibrated against Alpm::stats() on the paper's Zipf route
/// workload (60k VPCs, 75/25 v4/v6) from 1M to 10M routes.
double expected_alpm_fill(std::size_t max_bucket_entries);

/// Calibrated shape estimate: tracks Alpm::stats() within 5% from 1M to
/// 10M routes at the default bucket bound (regression-pinned).
/// `slices_per_directory_entry` and `words_per_route` carry the chip's
/// cost model (pooled-key directory rows, one-word routes on SfChip).
AlpmShapeEstimate estimate_alpm_shape(std::size_t routes,
                                      std::size_t max_bucket_entries,
                                      unsigned slices_per_directory_entry,
                                      unsigned words_per_route);

template <typename Value>
class Alpm {
 public:
  struct Config {
    /// Hard bucket bound (hardware reserves this many slots per row).
    std::size_t max_bucket_entries = 64;
    /// TCAM slice width of the directory rows.
    unsigned directory_slice_bits = 44;
    /// Action bits per route, for the SRAM cost model.
    unsigned action_bits = kVxlanRouteActionBits;
  };

  struct Stats {
    std::size_t routes = 0;
    std::size_t partitions = 0;
    std::size_t directory_slices = 0;
    std::size_t allocated_bucket_words = 0;  // reserved SRAM (128-bit words)
    std::size_t used_bucket_words = 0;       // words actually holding routes
    double average_fill = 0.0;               // routes / reserved slots
  };

  explicit Alpm(Config config = {}) : config_(config) {
    if (config_.max_bucket_entries == 0) {
      throw std::invalid_argument("Alpm bucket bound must be positive");
    }
    // The always-present root partition catches addresses under no pivot.
    partitions_.push_back(Partition{TcamKey{}, 0, {}, true});
    directory_.insert(TcamKey{}, 0, 0);
  }

  /// Inserts or replaces a route. Splits the target bucket when full.
  bool insert(net::Vni vni, const net::IpPrefix& prefix, Value value) {
    Route route = make_route(vni, prefix, std::move(value));
    const bool is_new = routes_.insert(route.key, route.depth, route.value);
    std::uint32_t pi = locate_partition(route.key, route.depth);
    Partition& part = partitions_[pi];
    if (!is_new) {
      for (Route& existing : part.routes) {
        if (existing.key == route.key && existing.depth == route.depth) {
          existing.value = route.value;
          break;
        }
      }
    } else {
      // Keep the bucket grouped by head25 (see lookup_resolve): insert at
      // the end of the route's head25 run. Splits re-sort by full key,
      // which is a refinement of head25 order, so the invariant survives
      // every mutation path.
      auto pos = std::upper_bound(
          part.routes.begin(), part.routes.end(), route.head25,
          [](std::uint32_t h, const Route& r) { return h < r.head25; });
      part.routes.insert(pos, route);
      if (part.routes.size() > config_.max_bucket_entries) {
        split_partition(pi);
      }
    }
    return is_new;
  }

  /// Removes a route. Returns false when absent.
  bool erase(net::Vni vni, const net::IpPrefix& prefix) {
    Route route = make_route(vni, prefix, Value{});
    if (!routes_.erase(route.key, route.depth)) return false;
    std::uint32_t pi = locate_partition(route.key, route.depth);
    Partition& part = partitions_[pi];
    std::erase_if(part.routes, [&](const Route& r) {
      return r.key == route.key && r.depth == route.depth;
    });
    if (part.routes.empty() && part.depth > 0) retire_partition(pi);
    return true;
  }

  /// Longest-prefix match: one directory match plus one bucket scan.
  std::optional<Value> lookup(net::Vni vni, const net::IpAddr& ip) const {
    const TcamKey key = make_pooled_key(vni, ip);
    return lookup_resolve(key, lookup_prepare(key));
  }

  /// Two-phase lookup for software-pipelined batch callers: prepare() does
  /// the TCAM directory match and issues a prefetch for the SRAM bucket;
  /// resolve() scans it. Hashing/prefetching N keys before resolving any
  /// hides the bucket's DRAM latency behind the other N-1 directory
  /// probes. lookup() above is exactly prepare+resolve back to back.
  std::uint32_t lookup_prepare(const TcamKey& key) const {
    auto dir = directory_.longest_match(key);
    // The root row makes a directory miss impossible; keep the fallback
    // anyway (partition 0 is the root).
    const std::uint32_t pi = dir ? dir->first : 0;
    __builtin_prefetch(partitions_[pi].routes.data());
    return pi;
  }

  /// Batched prepare: one depth-major directory sweep over the whole
  /// burst (MaskedKeyMap::longest_match_batch hashes and prefetches every
  /// key's slot per depth before resolving any), then the per-partition
  /// bucket prefetch. parts[i] is exactly lookup_prepare(keys[i]).
  void lookup_prepare_batch(std::span<const TcamKey> keys,
                            std::span<std::uint32_t> parts) const {
    constexpr std::size_t kChunk = 128;
    std::uint8_t hit[kChunk];
    std::uint32_t value[kChunk];
    unsigned depth[kChunk];
    for (std::size_t base = 0; base < keys.size(); base += kChunk) {
      const std::size_t n = std::min(kChunk, keys.size() - base);
      directory_.longest_match_batch(keys.subspan(base, n), {hit, n},
                                     {value, n}, {depth, n});
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t pi = hit[i] ? value[i] : 0;
        parts[base + i] = pi;
        __builtin_prefetch(partitions_[pi].routes.data());
      }
    }
  }

  std::optional<Value> lookup_resolve(const TcamKey& key,
                                      std::uint32_t partition) const {
    const Partition& part = partitions_[partition];
    // Every route's depth covers the full label‖VNI header (>= 25 bits),
    // so a route whose leading 25 key bits differ from the lookup key's
    // cannot match. Buckets stay grouped by head25 (insert/split maintain
    // it), so one binary search lands on this tenant's run and the scan
    // touches only routes that share the label‖VNI header — other
    // tenants' routes in the bucket cost nothing.
    const std::uint32_t head25 = static_cast<std::uint32_t>(key.w[0] >> 39);
    const Route* best = nullptr;
    auto it = std::lower_bound(
        part.routes.begin(), part.routes.end(), head25,
        [](const Route& r, std::uint32_t h) { return r.head25 < h; });
    for (; it != part.routes.end() && it->head25 == head25; ++it) {
      const Route& route = *it;
      if ((best == nullptr || route.depth > best->depth) &&
          key.masked(route.mask) == route.key) {
        best = &route;
      }
    }
    if (best != nullptr) return best->value;
    // Bucket miss: fall back to the covering route — the longest route
    // shorter than the pivot. A hardware bucket materializes this route in
    // a reserved slot; the model resolves it from the authoritative store,
    // which yields the identical value (ancestors of the pivot contain the
    // whole region, hence the address). tests/tables asserts equivalence.
    auto covering = routes_.longest_match(key, part.depth);
    if (covering) return covering->first;
    return std::nullopt;
  }

  /// Exact-prefix fetch from the authoritative store (not longest match).
  const Value* find(net::Vni vni, const net::IpPrefix& prefix) const {
    auto [key, mask] = make_pooled_prefix(vni, prefix);
    (void)mask;
    return routes_.find(key, 1 + 24 + prefix.pooled_length());
  }

  std::size_t size() const { return routes_.size(); }

  Stats stats() const {
    Stats s;
    s.routes = routes_.size();
    const unsigned dir_slices =
        (kPooledRouteKeyBits + config_.directory_slice_bits - 1) /
        config_.directory_slice_bits;
    for (const Partition& part : partitions_) {
      if (!part.in_use) continue;
      ++s.partitions;
      s.directory_slices += dir_slices;
      std::size_t max_words = 1;
      for (const Route& route : part.routes) {
        std::size_t words = route_words(route, part.depth);
        s.used_bucket_words += words;
        max_words = std::max(max_words, words);
      }
      // The covering route occupies one reserved slot in the bucket.
      if (compute_covering(part.pivot, part.depth)) {
        s.used_bucket_words += 1;
      }
      s.allocated_bucket_words += config_.max_bucket_entries * max_words;
    }
    if (s.partitions > 0) {
      s.average_fill =
          static_cast<double>(s.routes) /
          static_cast<double>(s.partitions * config_.max_bucket_entries);
    }
    return s;
  }

  const Config& config() const { return config_; }

 private:
  struct Route {
    TcamKey key;        // canonical: masked to depth
    unsigned depth = 0; // 25 + pooled prefix length
    /// Leading 25 key bits (label ‖ VNI) — the bucket scan's cheap
    /// reject. Valid because depth >= 25 always.
    std::uint32_t head25 = 0;
    /// tcam_mask(depth), cached at build time.
    TcamKey mask;
    Value value{};
  };

  struct Partition {
    TcamKey pivot;
    unsigned depth = 0;
    std::vector<Route> routes;
    bool in_use = false;
  };

  static Route make_route(net::Vni vni, const net::IpPrefix& prefix,
                          Value value) {
    auto [key, mask] = make_pooled_prefix(vni, prefix);
    (void)mask;
    const unsigned depth = 1 + 24 + prefix.pooled_length();
    return Route{key, depth, static_cast<std::uint32_t>(key.w[0] >> 39),
                 tcam_mask(depth), std::move(value)};
  }

  std::size_t route_words(const Route& route, unsigned pivot_depth) const {
    // Stored suffix in *native* key space: a v4 route's pooled key carries
    // 96 known-zero bits nothing needs to store, so its suffix is at most
    // 32 bits regardless of pivot depth (label bit 0 = v4-pooled).
    const bool v4 = !tcam_bit(route.key, 0);
    const unsigned native_start = 1 + 24 + (v4 ? 96u : 0u);
    const unsigned effective_pivot = std::max(pivot_depth, native_start);
    const unsigned suffix_bits =
        route.depth - std::min(route.depth, effective_pivot);
    const unsigned bits = suffix_bits + 8 /* stored length */ +
                          config_.action_bits;
    return (bits + 127) / 128;
  }

  /// The partition a route of `depth` belongs to: deepest pivot containing
  /// it. The root row guarantees a hit.
  std::uint32_t locate_partition(const TcamKey& key, unsigned depth) const {
    auto dir = directory_.longest_match(key, depth + 1);
    assert(dir.has_value());
    return dir->first;
  }

  std::uint32_t allocate_partition(const TcamKey& pivot, unsigned depth) {
    std::uint32_t index;
    if (!free_list_.empty()) {
      index = free_list_.back();
      free_list_.pop_back();
    } else {
      partitions_.emplace_back();
      index = static_cast<std::uint32_t>(partitions_.size() - 1);
    }
    Partition& part = partitions_[index];
    part.pivot = pivot;
    part.depth = depth;
    part.routes.clear();
    part.in_use = true;
    directory_.insert(pivot, depth, index);
    return index;
  }

  void retire_partition(std::uint32_t index) {
    Partition& part = partitions_[index];
    directory_.erase(part.pivot, part.depth);
    part.in_use = false;
    part.routes.clear();
    free_list_.push_back(index);
  }

  /// Longest route strictly shorter than `depth` covering `pivot`.
  std::optional<Route> compute_covering(const TcamKey& pivot,
                                        unsigned depth) const {
    auto hit = routes_.longest_match(pivot, depth);
    if (!hit) return std::nullopt;
    const TcamKey mask = tcam_mask(hit->second);
    const TcamKey key = pivot.masked(mask);
    return Route{key, hit->second,
                 static_cast<std::uint32_t>(key.w[0] >> 39), mask,
                 hit->first};
  }

  /// Splits an overflowing partition by carving its routes into subtrees.
  void split_partition(std::uint32_t index) {
    // Move the routes out; the original partition keeps the carve leftover.
    std::vector<Route> routes = std::move(partitions_[index].routes);
    partitions_[index].routes.clear();
    sort_routes(routes);

    std::vector<Emitted> emitted;
    std::vector<Route> leftover =
        carve(std::span<Route>(routes), partitions_[index].depth,
              partitions_[index].pivot, partitions_[index].depth, &emitted);
    partitions_[index].routes = std::move(leftover);
    for (Emitted& sub : emitted) {
      std::uint32_t child = allocate_partition(sub.pivot, sub.depth);
      partitions_[child].routes = std::move(sub.routes);
    }
  }

  struct Emitted {
    TcamKey pivot;
    unsigned depth = 0;
    std::vector<Route> routes;
  };

  static void sort_routes(std::vector<Route>& routes) {
    std::sort(routes.begin(), routes.end(),
              [](const Route& a, const Route& b) {
                if (a.key.w != b.key.w) return a.key.w < b.key.w;
                return a.depth < b.depth;
              });
  }

  std::size_t carve_threshold() const {
    return (config_.max_bucket_entries + 1) / 2;
  }

  /// Post-order subtree carve. `span` is sorted by (key, depth) and every
  /// route in it is inside the region (node_key, depth). Emits partitions
  /// for subtrees whose pending count reaches the threshold; returns the
  /// routes left for the caller's region. No partition is emitted at
  /// region_depth itself — the caller owns that pivot already.
  std::vector<Route> carve(std::span<Route> span, unsigned depth,
                           const TcamKey& node_key, unsigned region_depth,
                           std::vector<Emitted>* out) {
    if (span.size() < carve_threshold() || depth >= kPooledRouteKeyBits) {
      return {span.begin(), span.end()};
    }
    // Routes exactly at this node come first (canonical keys equal the
    // region key; shallower depth sorts first).
    auto exact_end = std::partition_point(
        span.begin(), span.end(),
        [&](const Route& r) { return r.depth == depth; });
    auto one_begin = std::partition_point(
        exact_end, span.end(),
        [&](const Route& r) { return !tcam_bit(r.key, depth); });

    std::vector<Route> pending(span.begin(), exact_end);
    std::vector<Route> left = carve(std::span<Route>(exact_end, one_begin),
                                    depth + 1, node_key, region_depth, out);
    std::vector<Route> right =
        carve(std::span<Route>(one_begin, span.end()), depth + 1,
              tcam_set_bit(node_key, depth), region_depth, out);
    pending.insert(pending.end(), left.begin(), left.end());
    pending.insert(pending.end(), right.begin(), right.end());

    if (pending.size() >= carve_threshold() && depth > region_depth) {
      out->push_back(Emitted{node_key, depth, std::move(pending)});
      return {};
    }
    return pending;
  }

  Config config_;
  MaskedKeyMap<Value> routes_;          // authoritative full route set
  MaskedKeyMap<std::uint32_t> directory_;  // pivot -> partition index
  std::vector<Partition> partitions_;
  std::vector<std::uint32_t> free_list_;
};

}  // namespace sf::tables
