// A longest-prefix-match binary trie keyed by (VNI, family, IP prefix).
//
// This is the reference LPM structure of the repository: the software
// gateway (XGW-x86) uses it directly for the VXLAN routing table, the TCAM
// model is validated against it, and the ALPM implementation partitions its
// subtrees (tables/alpm.hpp). The VNI is always matched exactly (routes
// never wildcard the tenant), so the trie keeps one root per (VNI, family)
// and runs the binary descent only over the IP bits.
//
// Nodes live in a single arena vector for cache locality and cheap subtree
// walks. Depth is bounded by the address width (<= 128), so recursion is
// safe.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ip.hpp"
#include "net/packet.hpp"

namespace sf::tables {

/// Bit accessor in the per-family address space: index 0 is the most
/// significant bit of the (32- or 128-bit) address.
inline bool address_bit(net::IpFamily family, const net::Ipv6Addr& widened,
                        unsigned index) {
  return family == net::IpFamily::kV4 ? widened.bit(96 + index)
                                      : widened.bit(index);
}

inline unsigned address_width(net::IpFamily family) {
  return family == net::IpFamily::kV4 ? 32u : 128u;
}

template <typename Value>
class LpmTrie {
 public:
  struct Entry {
    net::Vni vni = 0;
    net::IpPrefix prefix;
    Value value{};
  };

  LpmTrie() = default;

  /// Inserts or replaces. Returns true when the prefix was new.
  bool insert(net::Vni vni, const net::IpPrefix& prefix, Value value) {
    int node = descend_or_create(vni, prefix);
    bool was_new = !nodes_[static_cast<size_t>(node)].value.has_value();
    nodes_[static_cast<size_t>(node)].value = std::move(value);
    if (was_new) ++size_;
    return was_new;
  }

  /// Removes an exact prefix. Returns true when it existed.
  bool remove(net::Vni vni, const net::IpPrefix& prefix) {
    int node = descend(vni, prefix);
    if (node < 0 || !nodes_[static_cast<size_t>(node)].value.has_value()) {
      return false;
    }
    nodes_[static_cast<size_t>(node)].value.reset();
    --size_;
    return true;
  }

  /// Exact-prefix fetch (not longest match).
  const Value* find(net::Vni vni, const net::IpPrefix& prefix) const {
    int node = descend(vni, prefix);
    if (node < 0) return nullptr;
    const auto& slot = nodes_[static_cast<size_t>(node)].value;
    return slot.has_value() ? &*slot : nullptr;
  }

  /// Longest-prefix match for an address within a VNI.
  std::optional<Value> lookup(net::Vni vni, const net::IpAddr& ip) const {
    auto root = roots_.find(root_key(vni, ip.family()));
    if (root == roots_.end()) return std::nullopt;
    const net::Ipv6Addr widened = ip.widened();
    const unsigned width = address_width(ip.family());
    std::optional<Value> best;
    int node = root->second;
    for (unsigned depth = 0; node >= 0; ++depth) {
      const Node& n = nodes_[static_cast<size_t>(node)];
      if (n.value.has_value()) best = *n.value;
      if (depth >= width) break;
      node = n.child[address_bit(ip.family(), widened, depth) ? 1 : 0];
    }
    return best;
  }

  /// As lookup(), but also reports the matched prefix length. Used by the
  /// ALPM cross-check tests.
  std::optional<std::pair<Value, unsigned>> lookup_with_length(
      net::Vni vni, const net::IpAddr& ip) const {
    auto root = roots_.find(root_key(vni, ip.family()));
    if (root == roots_.end()) return std::nullopt;
    const net::Ipv6Addr widened = ip.widened();
    const unsigned width = address_width(ip.family());
    std::optional<std::pair<Value, unsigned>> best;
    int node = root->second;
    for (unsigned depth = 0; node >= 0; ++depth) {
      const Node& n = nodes_[static_cast<size_t>(node)];
      if (n.value.has_value()) best = {{*n.value, depth}};
      if (depth >= width) break;
      node = n.child[address_bit(ip.family(), widened, depth) ? 1 : 0];
    }
    return best;
  }

  /// Pre-sizes the node arena ahead of a bulk load of roughly
  /// `prefix_count` prefixes. Dense loads share long spines, so the
  /// estimate budgets ~8 fresh arena nodes per prefix (plus slack for the
  /// cold spine of the first few); an under-estimate only means the arena
  /// grows the normal way later.
  void reserve(std::size_t prefix_count) {
    nodes_.reserve(nodes_.size() + prefix_count * 8 + 64);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Visits every stored entry. Order: per (VNI, family) root, preorder.
  void for_each(
      const std::function<void(net::Vni, const net::IpPrefix&, const Value&)>&
          visit) const {
    for (const auto& [key, root] : roots_) {
      net::Vni vni = static_cast<net::Vni>(key >> 8);
      net::IpFamily family = static_cast<net::IpFamily>(key & 1);
      net::Ipv6Addr path(0, 0);
      walk(root, vni, family, path, 0, visit);
    }
  }

  std::vector<Entry> entries() const {
    std::vector<Entry> out;
    out.reserve(size_);
    for_each([&](net::Vni vni, const net::IpPrefix& prefix, const Value& v) {
      out.push_back(Entry{vni, prefix, v});
    });
    return out;
  }

  void clear() {
    nodes_.clear();
    roots_.clear();
    size_ = 0;
  }

 private:
  struct Node {
    int child[2] = {-1, -1};
    std::optional<Value> value;
  };

  static std::uint64_t root_key(net::Vni vni, net::IpFamily family) {
    return (std::uint64_t{vni} << 8) |
           static_cast<std::uint64_t>(family == net::IpFamily::kV6 ? 1 : 0);
  }

  int new_node() {
    nodes_.emplace_back();
    return static_cast<int>(nodes_.size() - 1);
  }

  int descend_or_create(net::Vni vni, const net::IpPrefix& prefix) {
    auto [it, inserted] =
        roots_.try_emplace(root_key(vni, prefix.family()), -1);
    if (inserted) it->second = new_node();
    int node = it->second;
    const net::Ipv6Addr addr = prefix.widened_address();
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      int branch = address_bit(prefix.family(), addr, depth) ? 1 : 0;
      int next = nodes_[static_cast<size_t>(node)].child[branch];
      if (next < 0) {
        next = new_node();
        nodes_[static_cast<size_t>(node)].child[branch] = next;
      }
      node = next;
    }
    return node;
  }

  int descend(net::Vni vni, const net::IpPrefix& prefix) const {
    auto it = roots_.find(root_key(vni, prefix.family()));
    if (it == roots_.end()) return -1;
    int node = it->second;
    const net::Ipv6Addr addr = prefix.widened_address();
    for (unsigned depth = 0; depth < prefix.length() && node >= 0; ++depth) {
      int branch = address_bit(prefix.family(), addr, depth) ? 1 : 0;
      node = nodes_[static_cast<size_t>(node)].child[branch];
    }
    return node;
  }

  static net::Ipv6Addr set_path_bit(net::IpFamily family,
                                    const net::Ipv6Addr& path,
                                    unsigned depth) {
    unsigned index = family == net::IpFamily::kV4 ? 96 + depth : depth;
    if (index < 64) {
      return net::Ipv6Addr(path.hi() | (std::uint64_t{1} << (63 - index)),
                           path.lo());
    }
    return net::Ipv6Addr(path.hi(),
                         path.lo() | (std::uint64_t{1} << (127 - index)));
  }

  static net::IpPrefix make_prefix(net::IpFamily family,
                                   const net::Ipv6Addr& path, unsigned depth) {
    if (family == net::IpFamily::kV4) {
      return net::Ipv4Prefix(
          net::Ipv4Addr(static_cast<std::uint32_t>(path.lo())), depth);
    }
    return net::Ipv6Prefix(path, depth);
  }

  void walk(int node, net::Vni vni, net::IpFamily family,
            const net::Ipv6Addr& path, unsigned depth,
            const std::function<void(net::Vni, const net::IpPrefix&,
                                     const Value&)>& visit) const {
    if (node < 0) return;
    const Node& n = nodes_[static_cast<size_t>(node)];
    if (n.value.has_value()) {
      visit(vni, make_prefix(family, path, depth), *n.value);
    }
    if (depth >= address_width(family)) return;
    walk(n.child[0], vni, family, path, depth + 1, visit);
    walk(n.child[1], vni, family, set_path_bit(family, path, depth),
         depth + 1, visit);
  }

  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, int> roots_;
  std::size_t size_ = 0;
};

}  // namespace sf::tables
