// Gateway forwarding-table entry types (Fig. 2 of the paper).
//
// The two tables that carry the majority of cloud traffic:
//   * VXLAN routing table:  (VNI, inner dst prefix) --LPM--> scope/next hop
//   * VM-NC mapping table:  (VNI, inner dst IP) --EXACT--> NC underlay IP
// plus the keys used by the service tables (ACL, meter, SNAT).

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/headers.hpp"
#include "net/ip.hpp"
#include "net/packet.hpp"

namespace sf::tables {

/// Where a VXLAN route points (the "Scope" column of Fig. 2, extended with
/// the other traffic routes of Table 1).
enum class RouteScope : std::uint8_t {
  kLocal,        // destination VM is in this VPC, in this region
  kPeer,         // destination is in a peered VPC; re-lookup with next hop VNI
  kIdc,          // destination is in the tenant's IDC via CEN
  kCrossRegion,  // destination is in another cloud region
  kInternet,     // south-north traffic; requires SNAT at XGW-x86
};

std::string to_string(RouteScope scope);

/// Key of the VXLAN routing table: VNI plus an inner-destination prefix.
struct VxlanRouteKey {
  net::Vni vni = 0;
  net::IpPrefix prefix;

  friend auto operator<=>(const VxlanRouteKey&, const VxlanRouteKey&) =
      default;
};

/// Action of the VXLAN routing table.
struct VxlanRouteAction {
  RouteScope scope = RouteScope::kLocal;
  /// For kPeer: the VNI to continue the lookup with.
  net::Vni next_hop_vni = 0;
  /// For kIdc / kCrossRegion: the remote tunnel endpoint.
  net::Ipv4Addr remote_endpoint;

  friend bool operator==(const VxlanRouteAction&,
                         const VxlanRouteAction&) = default;
};

/// Key of the VM-NC mapping table: VNI plus the exact VM IP.
struct VmNcKey {
  net::Vni vni = 0;
  net::IpAddr vm_ip;

  friend auto operator<=>(const VmNcKey&, const VmNcKey&) = default;
};

/// Action of the VM-NC mapping table: the physical server (Node Controller)
/// hosting the VM. The underlay is IPv4 regardless of overlay family.
struct VmNcAction {
  net::Ipv4Addr nc_ip;

  friend bool operator==(const VmNcAction&, const VmNcAction&) = default;
};

/// Match kinds the chip supports; decides SRAM vs TCAM placement.
enum class MatchKind : std::uint8_t { kExact, kLpm, kTernary };

std::string to_string(MatchKind kind);

/// A logical table's memory-relevant shape: everything the ASIC placer
/// needs to compute occupancy (Table 2 / Fig. 17 arithmetic).
struct TableSpec {
  std::string name;
  MatchKind match = MatchKind::kExact;
  unsigned key_bits = 0;
  unsigned action_bits = 0;
  std::size_t entry_count = 0;

  friend bool operator==(const TableSpec&, const TableSpec&) = default;
};

/// Key widths of the two major tables (Table 2 of the paper).
inline constexpr unsigned kVniBits = 24;

constexpr unsigned vxlan_route_key_bits(net::IpFamily family) {
  return kVniBits + (family == net::IpFamily::kV4 ? 32u : 128u);
}

constexpr unsigned vm_nc_key_bits(net::IpFamily family) {
  return kVniBits + (family == net::IpFamily::kV4 ? 32u : 128u);
}

/// Action widths: route scope + next-hop VNI or endpoint for routes, the
/// 32-bit NC IP for mappings.
inline constexpr unsigned kVxlanRouteActionBits = 3 + 32;
inline constexpr unsigned kVmNcActionBits = 32;

}  // namespace sf::tables
