#include "net/checksum.hpp"

#include <array>

namespace sf::net {
namespace {

std::uint32_t ones_complement_sum(std::span<const std::uint8_t> data,
                                  std::size_t skip_at) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < data.size() + 1; i += 2) {
    if (i == skip_at) continue;
    std::uint16_t word = static_cast<std::uint16_t>(data[i] << 8);
    if (i + 1 < data.size()) word |= data[i + 1];
    sum += word;
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return sum;
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return static_cast<std::uint16_t>(
      ~ones_complement_sum(data, data.size() + 2));
}

std::uint16_t ipv4_header_checksum(std::span<const std::uint8_t> header) {
  return static_cast<std::uint16_t>(~ones_complement_sum(header, 10));
}

bool ipv4_header_checksum_ok(std::span<const std::uint8_t> header) {
  return ones_complement_sum(header, header.size() + 2) == 0xffff;
}

}  // namespace sf::net
