// RFC 1071 internet checksum and the IPv4 header checksum helper.

#pragma once

#include <cstdint>
#include <span>

namespace sf::net {

/// One's-complement sum folded to 16 bits over a byte span (RFC 1071).
/// An odd trailing byte is padded with zero, as the RFC specifies.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Computes the IPv4 header checksum over an encoded 20-byte header whose
/// checksum field (bytes 10..11) is treated as zero.
std::uint16_t ipv4_header_checksum(std::span<const std::uint8_t> header);

/// True when the encoded IPv4 header verifies (sum including the stored
/// checksum folds to zero).
bool ipv4_header_checksum_ok(std::span<const std::uint8_t> header);

}  // namespace sf::net
