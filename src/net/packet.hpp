// The overlay packet: the unit of work of the cloud gateway.
//
// OverlayPacket is the *logical* view — the fields the gateway's forwarding
// tables key on (outer IPs, VNI, inner 5-tuple). The simulators shuttle this
// struct around for speed; encode()/decode() produce and parse the real
// VXLAN-in-UDP wire format so the byte-level path is exercised by tests,
// examples and the ASIC parser model.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/headers.hpp"
#include "net/ip.hpp"
#include "net/mac.hpp"

namespace sf::net {

/// A VXLAN network identifier: 24 bits, identifying one VPC (§2.1).
using Vni = std::uint32_t;

inline constexpr Vni kMaxVni = 0xffffff;

/// A VXLAN-encapsulated packet as the gateway sees it.
struct OverlayPacket {
  // Outer (underlay) headers.
  MacAddr outer_src_mac;
  MacAddr outer_dst_mac;
  IpAddr outer_src_ip;
  IpAddr outer_dst_ip;
  std::uint16_t outer_udp_src_port = 0;  // entropy field for underlay ECMP

  // VXLAN.
  Vni vni = 0;

  // Inner (overlay) headers.
  MacAddr inner_src_mac;
  MacAddr inner_dst_mac;
  FiveTuple inner;

  // Application payload length in bytes (payload content is immaterial to
  // the gateway; only the length matters for throughput accounting).
  std::uint16_t payload_size = 0;

  /// Total wire length in bytes, excluding the Ethernet FCS.
  std::size_t wire_size() const;

  /// The inner destination IP — the primary lookup key of both the VXLAN
  /// routing table and the VM-NC mapping table (Fig. 2).
  const IpAddr& inner_dst() const { return inner.dst; }
};

/// Serializes to VXLAN-in-UDP wire bytes. IPv4 header checksums are
/// computed; UDP checksum is left zero as VXLAN commonly does.
std::vector<std::uint8_t> encode(const OverlayPacket& pkt);

/// Parses wire bytes produced by encode() (or by any conformant VXLAN
/// encapsulator). Returns std::nullopt on malformed input, non-VXLAN UDP
/// ports, or truncated headers.
std::optional<OverlayPacket> decode(ConstByteSpan bytes);

}  // namespace sf::net
