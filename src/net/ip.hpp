// IPv4/IPv6 address and prefix value types.
//
// Addresses are small regular value types kept in host byte order; the
// packet serializer (net/headers.hpp) is the only place that deals with
// network byte order. Parsing errors are reported with std::nullopt from
// the parse() factories; the throwing constructors are for literals that
// are expected to be valid (configuration, tests).

#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sf::net {

/// An IPv4 address, stored in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : bits_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | d) {}

  /// Parses dotted-quad notation ("192.168.10.3").
  static std::optional<Ipv4Addr> parse(std::string_view text);

  /// Parses or throws std::invalid_argument; for trusted literals.
  static Ipv4Addr must_parse(std::string_view text);

  constexpr std::uint32_t value() const { return bits_; }
  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t bits_ = 0;
};

/// An IPv6 address, stored as two host-order 64-bit halves
/// (hi = bytes 0..7, lo = bytes 8..15 of the canonical representation).
class Ipv6Addr {
 public:
  constexpr Ipv6Addr() = default;
  constexpr Ipv6Addr(std::uint64_t hi, std::uint64_t lo) : hi_(hi), lo_(lo) {}

  /// Builds from 16 bytes in network order.
  static Ipv6Addr from_bytes(const std::array<std::uint8_t, 16>& bytes);

  /// Parses RFC 4291 text, including "::" compression and trailing
  /// dotted-quad ("::ffff:10.1.2.3").
  static std::optional<Ipv6Addr> parse(std::string_view text);
  static Ipv6Addr must_parse(std::string_view text);

  /// Maps an IPv4 address into the IPv4-mapped range ::ffff:a.b.c.d.
  static constexpr Ipv6Addr mapped(Ipv4Addr v4) {
    return Ipv6Addr(0, (std::uint64_t{0xffff} << 32) | v4.value());
  }

  constexpr std::uint64_t hi() const { return hi_; }
  constexpr std::uint64_t lo() const { return lo_; }
  std::array<std::uint8_t, 16> bytes() const;

  /// RFC 5952 canonical text (lowercase, longest zero run compressed).
  std::string to_string() const;

  /// Returns the addressed bit (0 = most significant bit of hi()).
  constexpr bool bit(unsigned index) const {
    return index < 64 ? ((hi_ >> (63 - index)) & 1u) != 0
                      : ((lo_ >> (127 - index)) & 1u) != 0;
  }

  friend constexpr auto operator<=>(const Ipv6Addr&, const Ipv6Addr&) =
      default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

/// Address family discriminator used throughout the gateway tables.
enum class IpFamily : std::uint8_t { kV4, kV6 };

/// Either an IPv4 or an IPv6 address. The gateway data path is dual-stack
/// (§4.4 "IPv4/IPv6 table pooling"), so most call sites carry this type.
class IpAddr {
 public:
  constexpr IpAddr() : family_(IpFamily::kV4), v6_(0, 0) {}
  constexpr IpAddr(Ipv4Addr v4)  // NOLINT: implicit by design
      : family_(IpFamily::kV4), v6_(0, v4.value()) {}
  constexpr IpAddr(Ipv6Addr v6)  // NOLINT: implicit by design
      : family_(IpFamily::kV6), v6_(v6) {}

  static std::optional<IpAddr> parse(std::string_view text);
  static IpAddr must_parse(std::string_view text);

  constexpr IpFamily family() const { return family_; }
  constexpr bool is_v4() const { return family_ == IpFamily::kV4; }
  constexpr bool is_v6() const { return family_ == IpFamily::kV6; }

  /// Precondition: is_v4().
  constexpr Ipv4Addr v4() const {
    return Ipv4Addr(static_cast<std::uint32_t>(v6_.lo()));
  }
  /// Precondition: is_v6().
  constexpr Ipv6Addr v6() const { return v6_; }

  /// Widens either family to 128 bits (v4 is zero-extended, not mapped);
  /// used by the table-pooling key expansion (§4.4).
  constexpr Ipv6Addr widened() const { return v6_; }

  std::string to_string() const;

  friend constexpr auto operator<=>(const IpAddr&, const IpAddr&) = default;

 private:
  IpFamily family_;
  Ipv6Addr v6_;  // v4 addresses live zero-extended in lo().
};

/// An IPv4 route prefix (address + length). The address is canonicalized:
/// bits beyond the prefix length are cleared on construction.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  Ipv4Prefix(Ipv4Addr addr, unsigned length);

  /// Parses "a.b.c.d/len".
  static std::optional<Ipv4Prefix> parse(std::string_view text);
  static Ipv4Prefix must_parse(std::string_view text);

  constexpr Ipv4Addr address() const { return addr_; }
  constexpr unsigned length() const { return length_; }
  constexpr std::uint32_t mask() const {
    return length_ == 0 ? 0 : ~std::uint32_t{0} << (32 - length_);
  }

  constexpr bool contains(Ipv4Addr ip) const {
    return (ip.value() & mask()) == addr_.value();
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) =
      default;

 private:
  Ipv4Addr addr_;
  unsigned length_ = 0;
};

/// An IPv6 route prefix. Canonicalized like Ipv4Prefix.
class Ipv6Prefix {
 public:
  constexpr Ipv6Prefix() = default;
  Ipv6Prefix(Ipv6Addr addr, unsigned length);

  static std::optional<Ipv6Prefix> parse(std::string_view text);
  static Ipv6Prefix must_parse(std::string_view text);

  constexpr Ipv6Addr address() const { return addr_; }
  constexpr unsigned length() const { return length_; }

  bool contains(const Ipv6Addr& ip) const;

  std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv6Prefix&, const Ipv6Prefix&) =
      default;

 private:
  Ipv6Addr addr_;
  unsigned length_ = 0;
};

/// Dual-stack prefix used by the pooled VXLAN routing table.
class IpPrefix {
 public:
  constexpr IpPrefix() = default;
  IpPrefix(Ipv4Prefix p)  // NOLINT: implicit by design
      : family_(IpFamily::kV4),
        addr_(Ipv6Addr(0, p.address().value())),
        length_(p.length()) {}
  IpPrefix(Ipv6Prefix p)  // NOLINT: implicit by design
      : family_(IpFamily::kV6), addr_(p.address()), length_(p.length()) {}

  static std::optional<IpPrefix> parse(std::string_view text);
  static IpPrefix must_parse(std::string_view text);

  constexpr IpFamily family() const { return family_; }
  constexpr unsigned length() const { return length_; }
  constexpr Ipv6Addr widened_address() const { return addr_; }

  /// Prefix length in the pooled 128-bit key space: a v4 /len prefix on
  /// the zero-extended key becomes /(96 + len).
  constexpr unsigned pooled_length() const {
    return family_ == IpFamily::kV4 ? 96 + length_ : length_;
  }

  bool contains(const IpAddr& ip) const;

  std::string to_string() const;

  friend constexpr auto operator<=>(const IpPrefix&, const IpPrefix&) =
      default;

 private:
  IpFamily family_ = IpFamily::kV4;
  Ipv6Addr addr_;
  unsigned length_ = 0;
};

}  // namespace sf::net
