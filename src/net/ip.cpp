#include "net/ip.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace sf::net {
namespace {

// Parses a decimal integer in [0, max] and advances *text past it.
std::optional<unsigned> parse_decimal(std::string_view* text, unsigned max) {
  unsigned value = 0;
  const char* begin = text->data();
  const char* end = begin + text->size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > max) return std::nullopt;
  // Reject leading zeros such as "01" (ambiguous octal in classic tools).
  if (ptr - begin > 1 && *begin == '0') return std::nullopt;
  text->remove_prefix(static_cast<std::size_t>(ptr - begin));
  return value;
}

std::optional<unsigned> parse_hex16(std::string_view* text) {
  unsigned value = 0;
  const char* begin = text->data();
  const char* end = begin + std::min<std::size_t>(text->size(), 4);
  auto [ptr, ec] = std::from_chars(begin, end, value, 16);
  if (ec != std::errc{} || ptr == begin) return std::nullopt;
  text->remove_prefix(static_cast<std::size_t>(ptr - begin));
  return value;
}

}  // namespace

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t bits = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    auto value = parse_decimal(&text, 255);
    if (!value) return std::nullopt;
    bits = (bits << 8) | *value;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Addr(bits);
}

Ipv4Addr Ipv4Addr::must_parse(std::string_view text) {
  auto addr = parse(text);
  if (!addr) {
    throw std::invalid_argument("bad IPv4 address: " + std::string(text));
  }
  return *addr;
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", bits_ >> 24,
                (bits_ >> 16) & 0xff, (bits_ >> 8) & 0xff, bits_ & 0xff);
  return buf;
}

Ipv6Addr Ipv6Addr::from_bytes(const std::array<std::uint8_t, 16>& bytes) {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 8; ++i) hi = (hi << 8) | bytes[static_cast<size_t>(i)];
  for (int i = 8; i < 16; ++i) lo = (lo << 8) | bytes[static_cast<size_t>(i)];
  return Ipv6Addr(hi, lo);
}

std::array<std::uint8_t, 16> Ipv6Addr::bytes() const {
  std::array<std::uint8_t, 16> out{};
  for (int i = 0; i < 8; ++i) {
    out[static_cast<size_t>(i)] =
        static_cast<std::uint8_t>(hi_ >> (56 - 8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    out[static_cast<size_t>(8 + i)] =
        static_cast<std::uint8_t>(lo_ >> (56 - 8 * i));
  }
  return out;
}

std::optional<Ipv6Addr> Ipv6Addr::parse(std::string_view text) {
  // Split around a single optional "::".
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  bool seen_gap = false;

  if (text.starts_with("::")) {
    seen_gap = true;
    text.remove_prefix(2);
  }

  std::vector<std::uint16_t>* current = seen_gap ? &tail : &head;
  bool expect_group = !text.empty();
  while (!text.empty()) {
    // A trailing dotted-quad contributes two groups.
    if (text.find('.') != std::string_view::npos &&
        text.find(':') == std::string_view::npos) {
      auto v4 = Ipv4Addr::parse(text);
      if (!v4) return std::nullopt;
      current->push_back(static_cast<std::uint16_t>(v4->value() >> 16));
      current->push_back(static_cast<std::uint16_t>(v4->value() & 0xffff));
      text = {};
      expect_group = false;
      break;
    }
    auto group = parse_hex16(&text);
    if (!group) return std::nullopt;
    current->push_back(static_cast<std::uint16_t>(*group));
    expect_group = false;
    if (text.empty()) break;
    if (text.starts_with("::")) {
      if (seen_gap) return std::nullopt;
      seen_gap = true;
      current = &tail;
      text.remove_prefix(2);
      expect_group = false;  // "::" may legally end the address
    } else if (text.starts_with(":")) {
      text.remove_prefix(1);
      expect_group = true;
    } else {
      return std::nullopt;
    }
  }
  if (expect_group) return std::nullopt;

  const std::size_t groups = head.size() + tail.size();
  if (groups > 8) return std::nullopt;
  if (!seen_gap && groups != 8) return std::nullopt;
  if (seen_gap && groups == 8) return std::nullopt;

  std::array<std::uint16_t, 8> all{};
  for (std::size_t i = 0; i < head.size(); ++i) all[i] = head[i];
  for (std::size_t i = 0; i < tail.size(); ++i) {
    all[8 - tail.size() + i] = tail[i];
  }
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 4; ++i) hi = (hi << 16) | all[static_cast<size_t>(i)];
  for (int i = 4; i < 8; ++i) lo = (lo << 16) | all[static_cast<size_t>(i)];
  return Ipv6Addr(hi, lo);
}

Ipv6Addr Ipv6Addr::must_parse(std::string_view text) {
  auto addr = parse(text);
  if (!addr) {
    throw std::invalid_argument("bad IPv6 address: " + std::string(text));
  }
  return *addr;
}

std::string Ipv6Addr::to_string() const {
  std::array<std::uint16_t, 8> groups{};
  for (int i = 0; i < 4; ++i) {
    groups[static_cast<size_t>(i)] =
        static_cast<std::uint16_t>(hi_ >> (48 - 16 * i));
  }
  for (int i = 0; i < 4; ++i) {
    groups[static_cast<size_t>(4 + i)] =
        static_cast<std::uint16_t>(lo_ >> (48 - 16 * i));
  }

  // RFC 5952: compress the longest run of zero groups (>= 2 groups),
  // leftmost on ties.
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      // The preceding group suppressed its separator, so the gap always
      // contributes both colons.
      out += "::";
      i += best_len;
      if (i == 8) break;
      continue;
    }
    std::snprintf(buf, sizeof buf, "%x", groups[static_cast<size_t>(i)]);
    out += buf;
    ++i;
    if (i < 8 && i != best_start) out += ':';
  }
  if (out.empty()) out = "::";
  return out;
}

std::optional<IpAddr> IpAddr::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) {
    auto v6 = Ipv6Addr::parse(text);
    if (!v6) return std::nullopt;
    return IpAddr(*v6);
  }
  auto v4 = Ipv4Addr::parse(text);
  if (!v4) return std::nullopt;
  return IpAddr(*v4);
}

IpAddr IpAddr::must_parse(std::string_view text) {
  auto addr = parse(text);
  if (!addr) {
    throw std::invalid_argument("bad IP address: " + std::string(text));
  }
  return *addr;
}

std::string IpAddr::to_string() const {
  return is_v4() ? v4().to_string() : v6().to_string();
}

Ipv4Prefix::Ipv4Prefix(Ipv4Addr addr, unsigned length) : length_(length) {
  if (length > 32) {
    throw std::invalid_argument("IPv4 prefix length > 32");
  }
  addr_ = Ipv4Addr(addr.value() & mask());
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  auto rest = text.substr(slash + 1);
  auto len = parse_decimal(&rest, 32);
  if (!len || !rest.empty()) return std::nullopt;
  return Ipv4Prefix(*addr, *len);
}

Ipv4Prefix Ipv4Prefix::must_parse(std::string_view text) {
  auto prefix = parse(text);
  if (!prefix) {
    throw std::invalid_argument("bad IPv4 prefix: " + std::string(text));
  }
  return *prefix;
}

std::string Ipv4Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

namespace {

Ipv6Addr mask_v6(const Ipv6Addr& addr, unsigned length) {
  std::uint64_t hi_mask =
      length >= 64 ? ~std::uint64_t{0}
                   : (length == 0 ? 0 : ~std::uint64_t{0} << (64 - length));
  std::uint64_t lo_mask =
      length <= 64 ? 0
      : (length >= 128 ? ~std::uint64_t{0}
                       : ~std::uint64_t{0} << (128 - length));
  return Ipv6Addr(addr.hi() & hi_mask, addr.lo() & lo_mask);
}

}  // namespace

Ipv6Prefix::Ipv6Prefix(Ipv6Addr addr, unsigned length) : length_(length) {
  if (length > 128) {
    throw std::invalid_argument("IPv6 prefix length > 128");
  }
  addr_ = mask_v6(addr, length);
}

std::optional<Ipv6Prefix> Ipv6Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv6Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  auto rest = text.substr(slash + 1);
  auto len = parse_decimal(&rest, 128);
  if (!len || !rest.empty()) return std::nullopt;
  return Ipv6Prefix(*addr, *len);
}

Ipv6Prefix Ipv6Prefix::must_parse(std::string_view text) {
  auto prefix = parse(text);
  if (!prefix) {
    throw std::invalid_argument("bad IPv6 prefix: " + std::string(text));
  }
  return *prefix;
}

bool Ipv6Prefix::contains(const Ipv6Addr& ip) const {
  return mask_v6(ip, length_) == addr_;
}

std::string Ipv6Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

std::optional<IpPrefix> IpPrefix::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) {
    auto v6 = Ipv6Prefix::parse(text);
    if (!v6) return std::nullopt;
    return IpPrefix(*v6);
  }
  auto v4 = Ipv4Prefix::parse(text);
  if (!v4) return std::nullopt;
  return IpPrefix(*v4);
}

IpPrefix IpPrefix::must_parse(std::string_view text) {
  auto prefix = parse(text);
  if (!prefix) {
    throw std::invalid_argument("bad IP prefix: " + std::string(text));
  }
  return *prefix;
}

bool IpPrefix::contains(const IpAddr& ip) const {
  if (ip.family() != family_) return false;
  return mask_v6(ip.widened(), pooled_length()) ==
         mask_v6(addr_, pooled_length());
}

std::string IpPrefix::to_string() const {
  if (family_ == IpFamily::kV4) {
    return Ipv4Addr(static_cast<std::uint32_t>(addr_.lo())).to_string() + "/" +
           std::to_string(length_);
  }
  return addr_.to_string() + "/" + std::to_string(length_);
}

}  // namespace sf::net
