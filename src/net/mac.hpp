// Ethernet MAC address value type.

#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sf::net {

/// A 48-bit Ethernet MAC address.
class MacAddr {
 public:
  constexpr MacAddr() = default;
  constexpr explicit MacAddr(std::uint64_t bits) : bits_(bits & kMask) {}
  constexpr MacAddr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                    std::uint8_t d, std::uint8_t e, std::uint8_t f)
      : bits_((std::uint64_t{a} << 40) | (std::uint64_t{b} << 32) |
              (std::uint64_t{c} << 24) | (std::uint64_t{d} << 16) |
              (std::uint64_t{e} << 8) | f) {}

  /// Parses colon-separated hex ("02:00:0a:01:01:0b").
  static std::optional<MacAddr> parse(std::string_view text);
  static MacAddr must_parse(std::string_view text);

  static constexpr MacAddr broadcast() { return MacAddr(kMask); }

  constexpr std::uint64_t value() const { return bits_; }
  constexpr bool is_multicast() const { return (bits_ >> 40) & 1; }

  std::array<std::uint8_t, 6> bytes() const;
  std::string to_string() const;

  friend constexpr auto operator<=>(MacAddr, MacAddr) = default;

 private:
  static constexpr std::uint64_t kMask = 0xffff'ffff'ffffULL;
  std::uint64_t bits_ = 0;
};

}  // namespace sf::net
