// Hash primitives used across the gateway: CRC32-C (the polynomial RSS and
// switch hash engines use), a 64-bit finalizing mixer, and flow/key digest
// helpers. All hashes are deterministic and seed-parameterized so that
// simulations are reproducible.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "net/ip.hpp"

namespace sf::net {

/// CRC32-C (Castagnoli, polynomial 0x1EDC6F41 reflected) over a byte span.
/// This is the polynomial used by RSS-style NIC hashing and by switch hash
/// units, implemented with a software lookup table.
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed = 0);

/// CRC32-C of a 64-bit value (little-endian byte order).
std::uint32_t crc32c_u64(std::uint64_t value, std::uint32_t seed = 0);

/// Strong 64-bit finalizer (splitmix64 / Murmur3-style avalanche).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two 64-bit hashes.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// 64-bit hash of an IP address (both halves mixed for v6).
constexpr std::uint64_t hash_ip(const IpAddr& ip) {
  std::uint64_t family_tag = ip.is_v6() ? 0x6666ULL : 0x4444ULL;
  return hash_combine(hash_combine(mix64(ip.widened().hi()),
                                   mix64(ip.widened().lo())),
                      mix64(family_tag));
}

/// Compresses a 128-bit key to a w-bit digest (w <= 64). Used by the
/// "compressing longer table entries" technique (§4.4): the IPv6 VM-NC key
/// is reduced to 32 bits with an explicit conflict table for collisions.
constexpr std::uint64_t digest(std::uint64_t hi, std::uint64_t lo,
                               unsigned width_bits,
                               std::uint64_t seed = 0x5a11f15bULL) {
  std::uint64_t h = hash_combine(hash_combine(mix64(seed), mix64(hi)),
                                 mix64(lo));
  return width_bits >= 64 ? h : (h & ((std::uint64_t{1} << width_bits) - 1));
}

}  // namespace sf::net
