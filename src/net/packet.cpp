#include "net/packet.hpp"

#include <cstddef>

#include "net/checksum.hpp"

namespace sf::net {
namespace {

std::size_t ip_header_size(const IpAddr& ip) {
  return ip.is_v4() ? Ipv4Header::kSize : Ipv6Header::kSize;
}

std::size_t l4_header_size(std::uint8_t proto) {
  return proto == static_cast<std::uint8_t>(IpProto::kTcp) ? TcpHeader::kSize
                                                           : UdpHeader::kSize;
}

// Writes an IPv4 or IPv6 header carrying `payload` bytes after it.
std::size_t write_ip(ByteSpan out, const IpAddr& src, const IpAddr& dst,
                     std::uint8_t proto, std::size_t payload) {
  if (src.is_v4()) {
    Ipv4Header ip;
    ip.total_length =
        static_cast<std::uint16_t>(Ipv4Header::kSize + payload);
    ip.protocol = proto;
    ip.src = src.v4();
    ip.dst = dst.v4();
    ip.write(out);
    std::uint16_t sum = ipv4_header_checksum(out.first(Ipv4Header::kSize));
    out[10] = static_cast<std::uint8_t>(sum >> 8);
    out[11] = static_cast<std::uint8_t>(sum);
    return Ipv4Header::kSize;
  }
  Ipv6Header ip;
  ip.payload_length = static_cast<std::uint16_t>(payload);
  ip.next_header = proto;
  ip.src = src.v6();
  ip.dst = dst.v6();
  ip.write(out);
  return Ipv6Header::kSize;
}

}  // namespace

std::size_t OverlayPacket::wire_size() const {
  return EthernetHeader::kSize + ip_header_size(outer_src_ip) +
         UdpHeader::kSize + VxlanHeader::kSize + EthernetHeader::kSize +
         ip_header_size(inner.src) + l4_header_size(inner.proto) +
         payload_size;
}

std::vector<std::uint8_t> encode(const OverlayPacket& pkt) {
  std::vector<std::uint8_t> bytes(pkt.wire_size(), 0);
  ByteSpan out(bytes);
  std::size_t at = 0;

  const std::size_t inner_l4 = l4_header_size(pkt.inner.proto);
  const std::size_t inner_ip = ip_header_size(pkt.inner.src);
  const std::size_t inner_total =
      EthernetHeader::kSize + inner_ip + inner_l4 + pkt.payload_size;
  const std::size_t vxlan_payload =
      UdpHeader::kSize + VxlanHeader::kSize + inner_total;

  EthernetHeader outer_eth{
      .dst = pkt.outer_dst_mac,
      .src = pkt.outer_src_mac,
      .ether_type = static_cast<std::uint16_t>(
          pkt.outer_src_ip.is_v4() ? EtherType::kIpv4 : EtherType::kIpv6)};
  outer_eth.write(out.subspan(at));
  at += EthernetHeader::kSize;

  at += write_ip(out.subspan(at), pkt.outer_src_ip, pkt.outer_dst_ip,
                 static_cast<std::uint8_t>(IpProto::kUdp),
                 vxlan_payload - UdpHeader::kSize + UdpHeader::kSize);

  UdpHeader udp{.src_port = pkt.outer_udp_src_port,
                .dst_port = kVxlanPort,
                .length = static_cast<std::uint16_t>(vxlan_payload),
                .checksum = 0};
  udp.write(out.subspan(at));
  at += UdpHeader::kSize;

  VxlanHeader vxlan{.flags = VxlanHeader::kFlagVni, .vni = pkt.vni};
  vxlan.write(out.subspan(at));
  at += VxlanHeader::kSize;

  EthernetHeader inner_eth{
      .dst = pkt.inner_dst_mac,
      .src = pkt.inner_src_mac,
      .ether_type = static_cast<std::uint16_t>(
          pkt.inner.src.is_v4() ? EtherType::kIpv4 : EtherType::kIpv6)};
  inner_eth.write(out.subspan(at));
  at += EthernetHeader::kSize;

  at += write_ip(out.subspan(at), pkt.inner.src, pkt.inner.dst,
                 pkt.inner.proto, inner_l4 + pkt.payload_size);

  if (pkt.inner.proto == static_cast<std::uint8_t>(IpProto::kTcp)) {
    TcpHeader tcp{.src_port = pkt.inner.src_port,
                  .dst_port = pkt.inner.dst_port};
    tcp.write(out.subspan(at));
    at += TcpHeader::kSize;
  } else {
    UdpHeader inner_udp{
        .src_port = pkt.inner.src_port,
        .dst_port = pkt.inner.dst_port,
        .length = static_cast<std::uint16_t>(UdpHeader::kSize +
                                             pkt.payload_size),
        .checksum = 0};
    inner_udp.write(out.subspan(at));
    at += UdpHeader::kSize;
  }
  // Payload bytes stay zero; at + payload_size == bytes.size().
  return bytes;
}

namespace {

struct ParsedIp {
  IpAddr src;
  IpAddr dst;
  std::uint8_t proto = 0;
  std::size_t header_size = 0;
};

std::optional<ParsedIp> parse_ip(ConstByteSpan in, std::uint16_t ether_type) {
  ParsedIp out;
  if (ether_type == static_cast<std::uint16_t>(EtherType::kIpv4)) {
    auto ip = Ipv4Header::parse(in);
    if (!ip) return std::nullopt;
    if (!ipv4_header_checksum_ok(in.first(Ipv4Header::kSize))) {
      return std::nullopt;
    }
    out.src = ip->src;
    out.dst = ip->dst;
    out.proto = ip->protocol;
    out.header_size = Ipv4Header::kSize;
    return out;
  }
  if (ether_type == static_cast<std::uint16_t>(EtherType::kIpv6)) {
    auto ip = Ipv6Header::parse(in);
    if (!ip) return std::nullopt;
    out.src = ip->src;
    out.dst = ip->dst;
    out.proto = ip->next_header;
    out.header_size = Ipv6Header::kSize;
    return out;
  }
  return std::nullopt;
}

}  // namespace

std::optional<OverlayPacket> decode(ConstByteSpan bytes) {
  OverlayPacket pkt;
  std::size_t at = 0;

  auto outer_eth = EthernetHeader::parse(bytes.subspan(at));
  if (!outer_eth) return std::nullopt;
  pkt.outer_dst_mac = outer_eth->dst;
  pkt.outer_src_mac = outer_eth->src;
  at += EthernetHeader::kSize;

  auto outer_ip = parse_ip(bytes.subspan(at), outer_eth->ether_type);
  if (!outer_ip) return std::nullopt;
  if (outer_ip->proto != static_cast<std::uint8_t>(IpProto::kUdp)) {
    return std::nullopt;
  }
  pkt.outer_src_ip = outer_ip->src;
  pkt.outer_dst_ip = outer_ip->dst;
  at += outer_ip->header_size;

  auto udp = UdpHeader::parse(bytes.subspan(at));
  if (!udp || udp->dst_port != kVxlanPort) return std::nullopt;
  pkt.outer_udp_src_port = udp->src_port;
  at += UdpHeader::kSize;

  auto vxlan = VxlanHeader::parse(bytes.subspan(at));
  if (!vxlan) return std::nullopt;
  pkt.vni = vxlan->vni;
  at += VxlanHeader::kSize;

  auto inner_eth = EthernetHeader::parse(bytes.subspan(at));
  if (!inner_eth) return std::nullopt;
  pkt.inner_dst_mac = inner_eth->dst;
  pkt.inner_src_mac = inner_eth->src;
  at += EthernetHeader::kSize;

  auto inner_ip = parse_ip(bytes.subspan(at), inner_eth->ether_type);
  if (!inner_ip) return std::nullopt;
  pkt.inner.src = inner_ip->src;
  pkt.inner.dst = inner_ip->dst;
  pkt.inner.proto = inner_ip->proto;
  at += inner_ip->header_size;

  if (pkt.inner.proto == static_cast<std::uint8_t>(IpProto::kTcp)) {
    auto tcp = TcpHeader::parse(bytes.subspan(at));
    if (!tcp) return std::nullopt;
    pkt.inner.src_port = tcp->src_port;
    pkt.inner.dst_port = tcp->dst_port;
    at += TcpHeader::kSize;
  } else if (pkt.inner.proto == static_cast<std::uint8_t>(IpProto::kUdp)) {
    auto inner_udp = UdpHeader::parse(bytes.subspan(at));
    if (!inner_udp) return std::nullopt;
    pkt.inner.src_port = inner_udp->src_port;
    pkt.inner.dst_port = inner_udp->dst_port;
    at += UdpHeader::kSize;
  } else {
    return std::nullopt;
  }

  if (bytes.size() < at) return std::nullopt;
  pkt.payload_size = static_cast<std::uint16_t>(bytes.size() - at);
  return pkt;
}

}  // namespace sf::net
