#include "net/headers.hpp"

#include <cassert>

#include "net/hash.hpp"

namespace sf::net {
namespace {

void put_u16(ByteSpan out, std::size_t at, std::uint16_t value) {
  out[at] = static_cast<std::uint8_t>(value >> 8);
  out[at + 1] = static_cast<std::uint8_t>(value);
}

void put_u32(ByteSpan out, std::size_t at, std::uint32_t value) {
  out[at] = static_cast<std::uint8_t>(value >> 24);
  out[at + 1] = static_cast<std::uint8_t>(value >> 16);
  out[at + 2] = static_cast<std::uint8_t>(value >> 8);
  out[at + 3] = static_cast<std::uint8_t>(value);
}

std::uint16_t get_u16(ConstByteSpan in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

std::uint32_t get_u32(ConstByteSpan in, std::size_t at) {
  return (std::uint32_t{in[at]} << 24) | (std::uint32_t{in[at + 1]} << 16) |
         (std::uint32_t{in[at + 2]} << 8) | in[at + 3];
}

}  // namespace

void EthernetHeader::write(ByteSpan out) const {
  assert(out.size() >= kSize);
  auto d = dst.bytes();
  auto s = src.bytes();
  std::copy(d.begin(), d.end(), out.begin());
  std::copy(s.begin(), s.end(), out.begin() + 6);
  put_u16(out, 12, ether_type);
}

std::optional<EthernetHeader> EthernetHeader::parse(ConstByteSpan in) {
  if (in.size() < kSize) return std::nullopt;
  EthernetHeader hdr;
  std::uint64_t dst_bits = 0;
  std::uint64_t src_bits = 0;
  for (int i = 0; i < 6; ++i) {
    dst_bits = (dst_bits << 8) | in[static_cast<size_t>(i)];
    src_bits = (src_bits << 8) | in[static_cast<size_t>(6 + i)];
  }
  hdr.dst = MacAddr(dst_bits);
  hdr.src = MacAddr(src_bits);
  hdr.ether_type = get_u16(in, 12);
  return hdr;
}

void Ipv4Header::write(ByteSpan out) const {
  assert(out.size() >= kSize);
  out[0] = 0x45;  // version 4, IHL 5
  out[1] = dscp_ecn;
  put_u16(out, 2, total_length);
  put_u16(out, 4, identification);
  put_u16(out, 6, flags_fragment);
  out[8] = ttl;
  out[9] = protocol;
  put_u16(out, 10, checksum);
  put_u32(out, 12, src.value());
  put_u32(out, 16, dst.value());
}

std::optional<Ipv4Header> Ipv4Header::parse(ConstByteSpan in) {
  if (in.size() < kSize) return std::nullopt;
  if ((in[0] >> 4) != 4) return std::nullopt;
  if ((in[0] & 0x0f) < 5) return std::nullopt;
  Ipv4Header hdr;
  hdr.dscp_ecn = in[1];
  hdr.total_length = get_u16(in, 2);
  hdr.identification = get_u16(in, 4);
  hdr.flags_fragment = get_u16(in, 6);
  hdr.ttl = in[8];
  hdr.protocol = in[9];
  hdr.checksum = get_u16(in, 10);
  hdr.src = Ipv4Addr(get_u32(in, 12));
  hdr.dst = Ipv4Addr(get_u32(in, 16));
  return hdr;
}

void Ipv6Header::write(ByteSpan out) const {
  assert(out.size() >= kSize);
  put_u32(out, 0,
          (std::uint32_t{6} << 28) | (std::uint32_t{traffic_class} << 20) |
              (flow_label & 0xfffff));
  put_u16(out, 4, payload_length);
  out[6] = next_header;
  out[7] = hop_limit;
  auto s = src.bytes();
  auto d = dst.bytes();
  std::copy(s.begin(), s.end(), out.begin() + 8);
  std::copy(d.begin(), d.end(), out.begin() + 24);
}

std::optional<Ipv6Header> Ipv6Header::parse(ConstByteSpan in) {
  if (in.size() < kSize) return std::nullopt;
  std::uint32_t word0 = get_u32(in, 0);
  if ((word0 >> 28) != 6) return std::nullopt;
  Ipv6Header hdr;
  hdr.traffic_class = static_cast<std::uint8_t>(word0 >> 20);
  hdr.flow_label = word0 & 0xfffff;
  hdr.payload_length = get_u16(in, 4);
  hdr.next_header = in[6];
  hdr.hop_limit = in[7];
  std::array<std::uint8_t, 16> bytes{};
  std::copy(in.begin() + 8, in.begin() + 24, bytes.begin());
  hdr.src = Ipv6Addr::from_bytes(bytes);
  std::copy(in.begin() + 24, in.begin() + 40, bytes.begin());
  hdr.dst = Ipv6Addr::from_bytes(bytes);
  return hdr;
}

void UdpHeader::write(ByteSpan out) const {
  assert(out.size() >= kSize);
  put_u16(out, 0, src_port);
  put_u16(out, 2, dst_port);
  put_u16(out, 4, length);
  put_u16(out, 6, checksum);
}

std::optional<UdpHeader> UdpHeader::parse(ConstByteSpan in) {
  if (in.size() < kSize) return std::nullopt;
  UdpHeader hdr;
  hdr.src_port = get_u16(in, 0);
  hdr.dst_port = get_u16(in, 2);
  hdr.length = get_u16(in, 4);
  hdr.checksum = get_u16(in, 6);
  return hdr;
}

void TcpHeader::write(ByteSpan out) const {
  assert(out.size() >= kSize);
  put_u16(out, 0, src_port);
  put_u16(out, 2, dst_port);
  put_u32(out, 4, seq);
  put_u32(out, 8, ack);
  out[12] = static_cast<std::uint8_t>(data_offset << 4);
  out[13] = flags;
  put_u16(out, 14, window);
  put_u16(out, 16, checksum);
  put_u16(out, 18, urgent);
}

std::optional<TcpHeader> TcpHeader::parse(ConstByteSpan in) {
  if (in.size() < kSize) return std::nullopt;
  TcpHeader hdr;
  hdr.src_port = get_u16(in, 0);
  hdr.dst_port = get_u16(in, 2);
  hdr.seq = get_u32(in, 4);
  hdr.ack = get_u32(in, 8);
  hdr.data_offset = in[12] >> 4;
  if (hdr.data_offset < 5) return std::nullopt;
  hdr.flags = in[13];
  hdr.window = get_u16(in, 14);
  hdr.checksum = get_u16(in, 16);
  hdr.urgent = get_u16(in, 18);
  return hdr;
}

void VxlanHeader::write(ByteSpan out) const {
  assert(out.size() >= kSize);
  out[0] = flags;
  out[1] = out[2] = out[3] = 0;
  put_u32(out, 4, (vni & 0xffffff) << 8);
}

std::optional<VxlanHeader> VxlanHeader::parse(ConstByteSpan in) {
  if (in.size() < kSize) return std::nullopt;
  VxlanHeader hdr;
  hdr.flags = in[0];
  if ((hdr.flags & kFlagVni) == 0) return std::nullopt;
  hdr.vni = get_u32(in, 4) >> 8;
  return hdr;
}

std::uint64_t FiveTuple::hash() const {
  std::uint64_t h = hash_combine(hash_ip(src), hash_ip(dst));
  std::uint64_t ports = (std::uint64_t{proto} << 32) |
                        (std::uint64_t{src_port} << 16) | dst_port;
  return hash_combine(h, mix64(ports));
}

std::uint32_t FiveTuple::rss_hash(std::uint32_t seed) const {
  // Hash the canonical byte layout: src ip | dst ip | proto | ports.
  std::array<std::uint8_t, 16 + 16 + 1 + 4> bytes{};
  auto s = src.widened().bytes();
  auto d = dst.widened().bytes();
  std::copy(s.begin(), s.end(), bytes.begin());
  std::copy(d.begin(), d.end(), bytes.begin() + 16);
  bytes[32] = proto;
  bytes[33] = static_cast<std::uint8_t>(src_port >> 8);
  bytes[34] = static_cast<std::uint8_t>(src_port);
  bytes[35] = static_cast<std::uint8_t>(dst_port >> 8);
  bytes[36] = static_cast<std::uint8_t>(dst_port);
  return crc32c(bytes, seed);
}

}  // namespace sf::net
