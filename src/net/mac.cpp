#include "net/mac.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace sf::net {

std::optional<MacAddr> MacAddr::parse(std::string_view text) {
  std::uint64_t bits = 0;
  for (int octet = 0; octet < 6; ++octet) {
    if (octet > 0) {
      if (text.empty() || text.front() != ':') return std::nullopt;
      text.remove_prefix(1);
    }
    if (text.size() < 2) return std::nullopt;
    unsigned value = 0;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + 2, value, 16);
    if (ec != std::errc{} || ptr != text.data() + 2) return std::nullopt;
    bits = (bits << 8) | value;
    text.remove_prefix(2);
  }
  if (!text.empty()) return std::nullopt;
  return MacAddr(bits);
}

MacAddr MacAddr::must_parse(std::string_view text) {
  auto mac = parse(text);
  if (!mac) {
    throw std::invalid_argument("bad MAC address: " + std::string(text));
  }
  return *mac;
}

std::array<std::uint8_t, 6> MacAddr::bytes() const {
  std::array<std::uint8_t, 6> out{};
  for (int i = 0; i < 6; ++i) {
    out[static_cast<size_t>(i)] =
        static_cast<std::uint8_t>(bits_ >> (40 - 8 * i));
  }
  return out;
}

std::string MacAddr::to_string() const {
  char buf[18];
  auto b = bytes();
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", b[0], b[1],
                b[2], b[3], b[4], b[5]);
  return buf;
}

}  // namespace sf::net
