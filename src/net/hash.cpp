#include "net/hash.hpp"

#include <array>

namespace sf::net {
namespace {

// Builds the reflected CRC32-C table at static-init time.
std::array<std::uint32_t, 256> make_crc32c_table() {
  constexpr std::uint32_t kPoly = 0x82f63b78u;  // 0x1EDC6F41 reflected
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc32c_table() {
  static const auto table = make_crc32c_table();
  return table;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  const auto& table = crc32c_table();
  std::uint32_t crc = ~seed;
  for (std::uint8_t byte : data) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xff];
  }
  return ~crc;
}

std::uint32_t crc32c_u64(std::uint64_t value, std::uint32_t seed) {
  std::array<std::uint8_t, 8> bytes{};
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<size_t>(i)] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  return crc32c(bytes, seed);
}

}  // namespace sf::net
