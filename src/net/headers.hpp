// Wire-format header codecs: Ethernet, IPv4, IPv6, UDP, TCP, VXLAN.
//
// Each header type is a plain struct of host-order fields with write()/parse()
// codecs that handle network byte order. parse() returns std::nullopt when
// the input is shorter than the encoded size or structurally invalid;
// higher-level validation (checksums, lengths) lives in net/packet.hpp.

#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/ip.hpp"
#include "net/mac.hpp"

namespace sf::net {

using ByteSpan = std::span<std::uint8_t>;
using ConstByteSpan = std::span<const std::uint8_t>;

/// EtherType values the gateway parses.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kIpv6 = 0x86dd,
};

/// IP protocol numbers the gateway parses.
enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
};

/// The IANA-assigned VXLAN UDP destination port.
inline constexpr std::uint16_t kVxlanPort = 4789;

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddr dst;
  MacAddr src;
  std::uint16_t ether_type = 0;

  void write(ByteSpan out) const;
  static std::optional<EthernetHeader> parse(ConstByteSpan in);
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // without options

  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint16_t flags_fragment = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;  // 0 on build; write() does not compute it
  Ipv4Addr src;
  Ipv4Addr dst;

  void write(ByteSpan out) const;
  static std::optional<Ipv4Header> parse(ConstByteSpan in);
};

struct Ipv6Header {
  static constexpr std::size_t kSize = 40;

  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;
  std::uint8_t hop_limit = 64;
  Ipv6Addr src;
  Ipv6Addr dst;

  void write(ByteSpan out) const;
  static std::optional<Ipv6Header> parse(ConstByteSpan in);
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;
  std::uint16_t checksum = 0;

  void write(ByteSpan out) const;
  static std::optional<UdpHeader> parse(ConstByteSpan in);
};

struct TcpHeader {
  static constexpr std::size_t kSize = 20;  // without options

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // 32-bit words
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;

  void write(ByteSpan out) const;
  static std::optional<TcpHeader> parse(ConstByteSpan in);
};

struct VxlanHeader {
  static constexpr std::size_t kSize = 8;
  static constexpr std::uint8_t kFlagVni = 0x08;  // "I" bit: VNI is valid

  std::uint8_t flags = kFlagVni;
  std::uint32_t vni = 0;  // 24 bits

  void write(ByteSpan out) const;
  static std::optional<VxlanHeader> parse(ConstByteSpan in);
};

/// The transport 5-tuple, the key of RSS hashing and the SNAT session table.
struct FiveTuple {
  IpAddr src;
  IpAddr dst;
  std::uint8_t proto = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;

  /// Symmetric-free (direction-sensitive) 64-bit hash.
  std::uint64_t hash() const;

  /// CRC32-C flow hash as a NIC RSS engine would compute it.
  std::uint32_t rss_hash(std::uint32_t seed = 0) const;
};

}  // namespace sf::net
