// Bulk node allocator for RCU tables.
//
// Versioned tables allocate a fresh node per mutation and hand retired
// nodes back only after a grace period; a general-purpose heap would pay
// malloc/free per route churned. The pool bump-allocates fixed blocks and
// recycles via a free list. Single-writer (the table's mutator thread)
// on both allocate and release; readers never touch the pool — they only
// dereference nodes the writer published, and a node is recycled only
// after the table's grace period proves no reader can still hold it.

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace sf::rcu {

template <typename T>
class NodePool {
 public:
  explicit NodePool(std::size_t block_nodes = 256)
      : block_nodes_(block_nodes == 0 ? 1 : block_nodes) {}

  /// Returns a node from the free list or a fresh slot. Recycled nodes
  /// keep their previous field values: the caller must fully
  /// re-initialize before publishing.
  T* allocate() {
    if (!free_.empty()) {
      T* node = free_.back();
      free_.pop_back();
      return node;
    }
    if (blocks_.empty() || used_in_last_ == block_nodes_) {
      blocks_.push_back(std::make_unique<T[]>(block_nodes_));
      used_in_last_ = 0;
    }
    return &blocks_.back()[used_in_last_++];
  }

  /// Returns a node to the free list. Only safe after the grace period:
  /// no reader may still hold the pointer.
  void release(T* node) { free_.push_back(node); }

  /// Nodes currently handed out (allocated minus freed).
  std::size_t outstanding() const {
    const std::size_t total =
        blocks_.empty()
            ? 0
            : (blocks_.size() - 1) * block_nodes_ + used_in_last_;
    return total - free_.size();
  }

  std::size_t free_count() const { return free_.size(); }

 private:
  std::size_t block_nodes_;
  std::size_t used_in_last_ = 0;
  std::vector<std::unique_ptr<T[]>> blocks_;
  std::vector<T*> free_;
};

}  // namespace sf::rcu
