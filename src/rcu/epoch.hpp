// Epoch manager for read-copy-update table access (DESIGN.md §13).
//
// Two independent notions of "time" govern a concurrent table:
//
//   * The **publish sequence** (`seq`) is the logical version of the table
//     contents: the writer stamps every mutation with the seq at which it
//     becomes visible and then calls `publish(seq)`. A reader *pins* a seq
//     before traversing; every lookup it performs observes exactly the
//     table state as of that seq (MVCC over versioned nodes). Because the
//     seq a reader needs is a pure function of the replayed workload —
//     "how many update ops have a virtual apply-time ≤ this packet" — the
//     verdict stream is byte-identical at any thread count even though the
//     mutator runs genuinely concurrently (ISSUE 7 acceptance criterion).
//
//   * The **reclamation era** orders unlinking against traversal for
//     memory safety, the classic epoch-based-reclamation role (compare
//     ndn-dpdk's URCU `cds_lfht` FIB, SNIPPETS.md). Reclaiming a node is
//     two-phase: `collect()` first *unlinks* every dead node no pinned or
//     future reader can see, then advances the era and stamps the batch;
//     the batch is *freed* only once every active reader has announced a
//     later era (or no readers are active). A reader whose announcement
//     races past the writer's scan is still safe: seq_cst ordering means
//     its traversal began after every unlink in the batch, and an
//     unlinked node is unreachable from the structure roots.
//
// Single writer, many readers. Reader registration is slot-based and
// wait-free on the read side; `pin()` spin-waits only when asked for a
// seq the writer has not published yet (the deterministic-interleave
// rendezvous, not a lock).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace sf::rcu {

class EpochManager {
 public:
  static constexpr std::size_t kMaxReaders = 64;
  static constexpr std::uint64_t kIdle =
      std::numeric_limits<std::uint64_t>::max();

  /// Latest published table version (acquire).
  std::uint64_t applied() const {
    return applied_.load(std::memory_order_acquire);
  }

  /// Writer: make every mutation stamped ≤ seq visible to readers.
  void publish(std::uint64_t seq) {
    applied_.store(seq, std::memory_order_seq_cst);
    // Lost-wakeup-free rendezvous with pin(): a reader registers in
    // waiters_ before re-checking applied_ under the lock; seq_cst on
    // both the applied_ store and the waiters_ load means either we see
    // the waiter here, or it sees our seq and never sleeps.
    if (waiters_.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> lock(wait_mu_);
      wait_cv_.notify_all();
    }
  }

  std::uint64_t current_era() const {
    return era_.load(std::memory_order_seq_cst);
  }

  /// Writer: records the caller's keep_from promise before a collect
  /// scans reader pins. `pin_latest` re-checks this floor after pinning:
  /// a pin at s that observes collect_floor ≤ s is safe, because any
  /// later collect with a higher floor must scan pins after the
  /// observation (seq_cst) and will therefore honor the pin.
  void note_collect_floor(std::uint64_t keep_from) {
    std::uint64_t prior = collect_floor_.load(std::memory_order_seq_cst);
    while (prior < keep_from &&
           !collect_floor_.compare_exchange_weak(prior, keep_from,
                                                 std::memory_order_seq_cst)) {
    }
  }

  std::uint64_t collect_floor() const {
    return collect_floor_.load(std::memory_order_seq_cst);
  }

  /// Writer: advance the reclamation era *after* unlinking a batch; the
  /// returned value stamps that batch.
  std::uint64_t advance_era() {
    return era_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  /// Writer: smallest seq any active reader has pinned, or `fallback`
  /// when no reader is pinned. A node dead at seq d may be unlinked once
  /// d ≤ min(min_pinned, lowest seq any future reader may pin).
  std::uint64_t min_pinned(std::uint64_t fallback) const {
    std::uint64_t floor = fallback;
    for (const Slot& slot : slots_) {
      const std::uint64_t pinned = slot.pinned.load(std::memory_order_seq_cst);
      if (pinned != kIdle && pinned < floor) floor = pinned;
    }
    return floor;
  }

  /// Writer: smallest era any active reader has announced, or `fallback`
  /// when no reader is pinned. A limbo batch stamped with era r may be
  /// freed once r ≤ min_announced_era (every active traversal began
  /// after the batch's unlinks).
  std::uint64_t min_announced_era(std::uint64_t fallback) const {
    std::uint64_t floor = fallback;
    for (const Slot& slot : slots_) {
      if (slot.pinned.load(std::memory_order_seq_cst) == kIdle) continue;
      const std::uint64_t era = slot.era.load(std::memory_order_seq_cst);
      if (era < floor) floor = era;
    }
    return floor;
  }

  /// A registered reader. Cheap to pin/unpin per packet; one per thread.
  class Reader {
   public:
    explicit Reader(EpochManager& manager) : manager_(&manager) {
      slot_ = manager.claim_slot();
    }
    ~Reader() {
      if (manager_ != nullptr) manager_->release_slot(slot_);
    }
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;

    /// Pins table version `seq`, waiting until the writer has published
    /// it. Every lookup between pin and unpin sees state as of `seq`.
    ///
    /// Order matters: the pin is announced BEFORE the era. A collector
    /// whose era scan misses this reader must have scanned before the
    /// pinned store — and the scan runs after its advance_era(), so our
    /// era load (after the pinned store) observes that advance and,
    /// through it, every unlink of the batch it stamped: the traversal
    /// cannot reach the nodes the collector frees. Announced era first,
    /// the collector could free a batch while this reader still walks a
    /// stale chain head into recycled memory.
    void pin(std::uint64_t seq) {
      EpochManager::Slot& slot = manager_->slots_[slot_];
      slot.pinned.store(seq, std::memory_order_seq_cst);
      slot.era.store(manager_->era_.load(std::memory_order_seq_cst),
                     std::memory_order_seq_cst);
      // Bounded spin, brief yield, then block: on an oversubscribed host
      // a spinning reader burns the timeslice of the very writer it is
      // waiting for, and with many readers a yield loop still starves the
      // writer to 1/N of the CPU (the convoy). Parking on the condvar
      // hands the core straight back to the writer.
      std::size_t spins = 0;
      while (manager_->applied_.load(std::memory_order_acquire) < seq) {
        if (++spins < 64) {
          cpu_relax();
        } else if (spins < 80) {
          std::this_thread::yield();
        } else {
          manager_->waiters_.fetch_add(1, std::memory_order_seq_cst);
          {
            std::unique_lock<std::mutex> lock(manager_->wait_mu_);
            manager_->wait_cv_.wait(lock, [&] {
              return manager_->applied_.load(std::memory_order_seq_cst) >=
                     seq;
            });
          }
          manager_->waiters_.fetch_sub(1, std::memory_order_seq_cst);
        }
      }
    }

    /// Pins whatever the writer has published most recently. Retries when
    /// a concurrent collect raced past the candidate version (see
    /// note_collect_floor); the writer's floor never exceeds its applied
    /// seq, so the retry terminates.
    std::uint64_t pin_latest() {
      for (;;) {
        const std::uint64_t seq =
            manager_->applied_.load(std::memory_order_acquire);
        pin(seq);
        if (seq >= manager_->collect_floor_.load(std::memory_order_seq_cst)) {
          return seq;
        }
        unpin();
      }
    }

    void unpin() {
      manager_->slots_[slot_].pinned.store(kIdle, std::memory_order_release);
    }

   private:
    static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#else
      std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
    }

    EpochManager* manager_;
    std::size_t slot_ = 0;
  };

  /// RAII pin for scoped reads.
  class PinGuard {
   public:
    PinGuard(Reader& reader, std::uint64_t seq) : reader_(reader) {
      reader_.pin(seq);
    }
    ~PinGuard() { reader_.unpin(); }
    PinGuard(const PinGuard&) = delete;
    PinGuard& operator=(const PinGuard&) = delete;

   private:
    Reader& reader_;
  };

 private:
  friend class Reader;

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> pinned{kIdle};
    std::atomic<std::uint64_t> era{0};
    std::atomic<bool> claimed{false};
  };

  std::size_t claim_slot() {
    for (std::size_t i = 0; i < kMaxReaders; ++i) {
      bool expected = false;
      if (slots_[i].claimed.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        slots_[i].pinned.store(kIdle, std::memory_order_seq_cst);
        return i;
      }
    }
    throw std::runtime_error("EpochManager: reader slots exhausted");
  }

  void release_slot(std::size_t slot) {
    slots_[slot].pinned.store(kIdle, std::memory_order_seq_cst);
    slots_[slot].claimed.store(false, std::memory_order_release);
  }

  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> era_{0};
  std::atomic<std::uint64_t> collect_floor_{0};
  std::atomic<int> waiters_{0};
  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  Slot slots_[kMaxReaders];
};

}  // namespace sf::rcu
