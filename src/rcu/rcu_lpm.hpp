// Versioned longest-prefix-match table over the pooled VXLAN key space.
//
// Mirrors tables::SoftwareLpm exactly — same `make_pooled_prefix` /
// `make_pooled_key` canonicalization, same label‖VNI‖address depth space,
// same probe-distinct-depths-longest-first resolution — but stores the
// (masked key, depth) entries in an RcuExactTable so lookups run against
// a pinned version while the mutator churns. Byte-for-byte agreement
// with SoftwareLpm at every seq is what lets XGW-x86 swap tables without
// disturbing a single verdict (tests/rcu exercises the differential).
//
// The depth directory is an append-only set of every prefix depth ever
// inserted, published as immutable snapshots behind an atomic pointer.
// Probing a depth with no entries at the pinned seq just misses, so a
// snapshot that runs ahead of the pinned version is harmless; snapshots
// are never reclaimed (≤ 154 possible depths bounds them for a process
// lifetime).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "net/hash.hpp"
#include "net/ip.hpp"
#include "rcu/rcu_exact_table.hpp"
#include "tables/tcam.hpp"

namespace sf::rcu {

template <typename Value>
class RcuLpm {
 public:
  explicit RcuLpm(std::size_t bucket_hint = 4096) : map_(bucket_hint) {
    snapshots_.push_back(std::make_unique<std::vector<unsigned>>());
    depths_.store(snapshots_.back().get(), std::memory_order_release);
  }

  // ---- mutator side -------------------------------------------------

  /// Inserts or replaces, visible from version `seq`. True when new.
  bool insert(net::Vni vni, const net::IpPrefix& prefix, Value value,
              std::uint64_t seq) {
    const unsigned depth = depth_of(prefix);
    note_depth(depth);
    return map_.insert(canonical(vni, prefix, depth), std::move(value), seq);
  }

  /// Removes from version `seq` on. False when absent.
  bool erase(net::Vni vni, const net::IpPrefix& prefix, std::uint64_t seq) {
    const unsigned depth = depth_of(prefix);
    return map_.erase(canonical(vni, prefix, depth), seq);
  }

  /// Mutator-side probe of the latest version.
  const Value* find_latest(net::Vni vni, const net::IpPrefix& prefix) const {
    const unsigned depth = depth_of(prefix);
    return map_.find_latest(canonical(vni, prefix, depth));
  }

  std::size_t live_size() const { return map_.live_size(); }

  void collect(std::uint64_t keep_from, EpochManager& epoch) {
    map_.collect(keep_from, epoch);
  }

  std::size_t limbo_size() const { return map_.limbo_size(); }

  // ---- reader side (caller holds an EpochManager pin at `seq`) ------

  /// Longest-prefix match for `ip` within `vni` as of version `seq`.
  const Value* lookup(net::Vni vni, const net::IpAddr& ip,
                      std::uint64_t seq) const {
    const tables::TcamKey key = tables::make_pooled_key(vni, ip);
    const std::vector<unsigned>* depths =
        depths_.load(std::memory_order_acquire);
    for (const unsigned depth : *depths) {
      const Value* hit = map_.lookup(
          DepthKey{key.masked(tables::tcam_mask(depth)), depth}, seq);
      if (hit != nullptr) return hit;
    }
    return nullptr;
  }

 private:
  struct DepthKey {
    tables::TcamKey key;  // canonicalized: masked to depth
    unsigned depth = 0;

    friend bool operator==(const DepthKey&, const DepthKey&) = default;
  };

  struct DepthKeyHasher {
    std::uint64_t operator()(const DepthKey& k) const {
      return net::hash_combine(tables::tcam_hash(k.key), net::mix64(k.depth));
    }
  };

  static unsigned depth_of(const net::IpPrefix& prefix) {
    return 1 + 24 + prefix.pooled_length();
  }

  static DepthKey canonical(net::Vni vni, const net::IpPrefix& prefix,
                            unsigned depth) {
    auto [key, mask] = tables::make_pooled_prefix(vni, prefix);
    (void)mask;
    return DepthKey{key.masked(tables::tcam_mask(depth)), depth};
  }

  /// Records a depth, republishing the descending probe order when new.
  void note_depth(unsigned depth) {
    if (!seen_depths_.insert(depth).second) return;
    auto next = std::make_unique<std::vector<unsigned>>(
        seen_depths_.rbegin(), seen_depths_.rend());
    snapshots_.push_back(std::move(next));
    depths_.store(snapshots_.back().get(), std::memory_order_release);
  }

  RcuExactTable<DepthKey, Value, DepthKeyHasher> map_;
  std::set<unsigned> seen_depths_;
  std::vector<std::unique_ptr<std::vector<unsigned>>> snapshots_;
  std::atomic<const std::vector<unsigned>*> depths_{nullptr};
};

}  // namespace sf::rcu
