// Versioned exact-match table with single-writer RCU semantics.
//
// Every mutation creates a new node stamped `born = seq` and marks the
// predecessor `dead = seq`; versions of one key occupy disjoint
// [born, dead) windows, so a reader pinned at seq s sees exactly one of
// them — the table state as of s — regardless of how far ahead the
// mutator has raced. Buckets are fixed at construction (no concurrent
// rehash); chains carry live and not-yet-reclaimed dead versions side by
// side. Reclamation is two-phase via `collect()`: unlink under the
// visibility floor, free after the reclamation era's grace period
// (rcu/epoch.hpp explains why the phases compose safely).
//
// Thread contract: one mutator thread owns insert/erase/collect/for_each;
// any number of reader threads call lookup() while holding an
// EpochManager pin.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "rcu/epoch.hpp"
#include "rcu/node_pool.hpp"

namespace sf::rcu {

template <typename Key, typename Value, typename Hasher = std::hash<Key>>
class RcuExactTable {
 public:
  static constexpr std::uint64_t kNeverDies =
      std::numeric_limits<std::uint64_t>::max();

  explicit RcuExactTable(std::size_t bucket_hint = 1024)
      : buckets_(round_up_pow2(bucket_hint)), mask_(buckets_.size() - 1) {}

  // ---- mutator side -------------------------------------------------

  /// Inserts or replaces the value for `key`, visible from version `seq`.
  /// Returns true when no live predecessor existed.
  bool insert(const Key& key, Value value, std::uint64_t seq) {
    std::atomic<Node*>& head = bucket(key);
    Node* prior = find_live(head, key);
    if (prior != nullptr) {
      prior->dead.store(seq, std::memory_order_release);
    } else {
      live_.fetch_add(1, std::memory_order_relaxed);
    }
    Node* node = pool_.allocate();
    node->key = key;
    node->value = std::move(value);
    node->born = seq;
    node->dead.store(kNeverDies, std::memory_order_relaxed);
    node->next.store(head.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    head.store(node, std::memory_order_release);
    return prior == nullptr;
  }

  /// Removes the live value for `key` from version `seq` on. Returns
  /// false when no live entry existed.
  bool erase(const Key& key, std::uint64_t seq) {
    Node* prior = find_live(bucket(key), key);
    if (prior == nullptr) return false;
    prior->dead.store(seq, std::memory_order_release);
    live_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Mutator-side probe of the latest version (no pin required).
  const Value* find_latest(const Key& key) const {
    const Node* node = find_live(bucket(key), key);
    return node == nullptr ? nullptr : &node->value;
  }

  /// Mutator-side sweep over live entries at the latest version.
  void for_each_live(
      const std::function<void(const Key&, const Value&)>& visit) const {
    for (const std::atomic<Node*>& head : buckets_) {
      for (const Node* node = head.load(std::memory_order_relaxed);
           node != nullptr;
           node = node->next.load(std::memory_order_relaxed)) {
        if (node->dead.load(std::memory_order_relaxed) == kNeverDies) {
          visit(node->key, node->value);
        }
      }
    }
  }

  /// Live entries at the latest version.
  std::size_t live_size() const {
    return live_.load(std::memory_order_relaxed);
  }

  /// Reclaims dead versions: unlinks every node no pinned reader can see
  /// — given the caller's promise that no future pin will be below
  /// `keep_from` — then frees limbo batches whose grace period elapsed.
  void collect(std::uint64_t keep_from, EpochManager& epoch) {
    epoch.note_collect_floor(keep_from);
    const std::uint64_t floor =
        std::min(keep_from, epoch.min_pinned(keep_from));
    std::vector<Node*> batch;
    for (std::atomic<Node*>& head : buckets_) {
      Node* prev = nullptr;
      Node* node = head.load(std::memory_order_relaxed);
      while (node != nullptr) {
        Node* next = node->next.load(std::memory_order_relaxed);
        const std::uint64_t dead = node->dead.load(std::memory_order_relaxed);
        if (dead != kNeverDies && dead <= floor) {
          if (prev != nullptr) {
            prev->next.store(next, std::memory_order_release);
          } else {
            head.store(next, std::memory_order_release);
          }
          batch.push_back(node);
        } else {
          prev = node;
        }
        node = next;
      }
    }
    if (!batch.empty()) {
      limbo_.push_back(Limbo{epoch.advance_era(), std::move(batch)});
    }
    const std::uint64_t safe_era =
        epoch.min_announced_era(std::numeric_limits<std::uint64_t>::max());
    while (!limbo_.empty() && limbo_.front().retire_era <= safe_era) {
      for (Node* node : limbo_.front().nodes) pool_.release(node);
      limbo_.pop_front();
    }
  }

  /// Nodes unlinked but awaiting their grace period.
  std::size_t limbo_size() const {
    std::size_t total = 0;
    for (const Limbo& batch : limbo_) total += batch.nodes.size();
    return total;
  }

  /// Nodes held by the table (live + dead-but-linked + limbo).
  std::size_t outstanding_nodes() const { return pool_.outstanding(); }

  // ---- reader side --------------------------------------------------

  /// Looks up `key` as of version `seq`. The caller must hold an
  /// EpochManager pin at `seq` (or at any seq ≤ the one passed here that
  /// it promised via `collect`'s keep_from). The returned pointer is
  /// valid until the pin is released.
  const Value* lookup(const Key& key, std::uint64_t seq) const {
    for (const Node* node = bucket(key).load(std::memory_order_acquire);
         node != nullptr; node = node->next.load(std::memory_order_acquire)) {
      if (node->key == key && node->born <= seq &&
          seq < node->dead.load(std::memory_order_acquire)) {
        return &node->value;
      }
    }
    return nullptr;
  }

 private:
  struct Node {
    Key key{};
    Value value{};
    std::uint64_t born = 0;
    std::atomic<std::uint64_t> dead{kNeverDies};
    std::atomic<Node*> next{nullptr};
  };

  struct Limbo {
    std::uint64_t retire_era = 0;
    std::vector<Node*> nodes;
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::atomic<Node*>& bucket(const Key& key) {
    return buckets_[Hasher{}(key) & mask_];
  }
  const std::atomic<Node*>& bucket(const Key& key) const {
    return buckets_[Hasher{}(key) & mask_];
  }

  static Node* find_live(const std::atomic<Node*>& head, const Key& key) {
    for (Node* node = head.load(std::memory_order_relaxed); node != nullptr;
         node = node->next.load(std::memory_order_relaxed)) {
      if (node->key == key &&
          node->dead.load(std::memory_order_relaxed) == kNeverDies) {
        return node;
      }
    }
    return nullptr;
  }

  std::vector<std::atomic<Node*>> buckets_;
  std::size_t mask_;
  NodePool<Node> pool_;
  std::deque<Limbo> limbo_;
  std::atomic<std::size_t> live_{0};
};

}  // namespace sf::rcu
