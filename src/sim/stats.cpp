#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace sf::sim {

double mean(std::span<const double> values) {
  if (values.empty()) return 0;
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0;
  const double m = mean(values);
  double sum = 0;
  for (double v : values) sum += (v - m) * (v - m);
  return std::sqrt(sum / static_cast<double>(values.size() - 1));
}

double max_value(std::span<const double> values) {
  return values.empty() ? 0
                        : *std::max_element(values.begin(), values.end());
}

double min_value(std::span<const double> values) {
  return values.empty() ? 0
                        : *std::min_element(values.begin(), values.end());
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0;  // documented: empty input yields 0
  if (std::isnan(p)) return std::numeric_limits<double>::quiet_NaN();
  if (values.size() == 1) return values.front();
  // Out-of-range p clamps to the extremes; the fast paths also dodge the
  // rank == size-1 boundary of the interpolation below.
  if (p <= 0) return min_value(values);
  if (p >= 100) return max_value(values);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double fairness_index(std::span<const double> values) {
  if (values.empty()) return 1.0;
  double sum = 0;
  double sum_sq = 0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace sf::sim
