#include "sim/timeseries.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

namespace sf::sim {

double TimeSeries::min_value() const {
  double out = std::numeric_limits<double>::infinity();
  for (const auto& [t, v] : points_) out = std::min(out, v);
  return out;
}

double TimeSeries::max_value() const {
  double out = -std::numeric_limits<double>::infinity();
  for (const auto& [t, v] : points_) out = std::max(out, v);
  return out;
}

double TimeSeries::mean_value() const {
  if (points_.empty()) return 0;
  double sum = 0;
  for (const auto& [t, v] : points_) sum += v;
  return sum / static_cast<double>(points_.size());
}

std::vector<double> TimeSeries::downsample(std::size_t buckets) const {
  std::vector<double> out;
  if (points_.empty() || buckets == 0) return out;
  buckets = std::min(buckets, points_.size());
  out.reserve(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t begin = b * points_.size() / buckets;
    const std::size_t end =
        std::max(begin + 1, (b + 1) * points_.size() / buckets);
    double sum = 0;
    for (std::size_t i = begin; i < end; ++i) sum += points_[i].second;
    out.push_back(sum / static_cast<double>(end - begin));
  }
  return out;
}

std::string sparkline(const TimeSeries& series, std::size_t width) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  const std::vector<double> samples = series.downsample(width);
  if (samples.empty()) return series.name() + ": (empty)";
  const double lo = *std::min_element(samples.begin(), samples.end());
  const double hi = *std::max_element(samples.begin(), samples.end());
  std::string bars;
  for (double v : samples) {
    const double norm = hi > lo ? (v - lo) / (hi - lo) : 0.5;
    bars += kLevels[std::min<std::size_t>(7, static_cast<std::size_t>(
                                                 norm * 7.999))];
  }
  char note[128];
  std::snprintf(note, sizeof note, "  [min %.3g  mean %.3g  max %.3g]",
                series.min_value(), series.mean_value(),
                series.max_value());
  return series.name() + ": " + bars + note;
}

std::string to_csv(const std::vector<const TimeSeries*>& series) {
  std::ostringstream out;
  out << "time";
  for (const TimeSeries* s : series) out << "," << s->name();
  out << "\n";
  std::size_t rows = 0;
  for (const TimeSeries* s : series) {
    rows = std::max(rows, s->points().size());
  }
  for (std::size_t i = 0; i < rows; ++i) {
    bool wrote_time = false;
    std::ostringstream line;
    for (const TimeSeries* s : series) {
      if (!wrote_time && i < s->points().size()) {
        line << s->points()[i].first;
        wrote_time = true;
      }
    }
    for (const TimeSeries* s : series) {
      line << ",";
      if (i < s->points().size()) line << s->points()[i].second;
    }
    out << line.str() << "\n";
  }
  return out.str();
}

}  // namespace sf::sim
