// sf::sim — week-scale simulated-time safety (DESIGN.md §17).
//
// The soak engine steps regions through a simulated week: 6.048e5 seconds,
// 6.048e11 microseconds. Double-second timestamps are exact far beyond
// that range, but three failure classes show up the moment a scenario runs
// for days instead of seconds:
//
//   * µs-scale integer conversions: a careless (uint32_t)(t * 1e6) wraps
//     after ~71.6 minutes. Every conversion to integer microseconds must
//     go through to_micros(), which saturates instead of wrapping.
//   * backward clocks: replayed scenarios and merged event streams can
//     hand a component a timestamp earlier than the last one it saw.
//     Token buckets, fluid queues and idle-expiry stamps must clamp the
//     negative interval to zero, never refill/drain/expire backwards.
//     elapsed_s() is that clamp; SimClock enforces it at the source.
//   * stalled clocks: a tick loop that stops advancing must not spin
//     hysteresis counters or cooldown timers — "no time passed" has to be
//     a fixed point. SimClock::advance_* return the actual (monotone)
//     time so callers observe the stall instead of compounding it.
//
// Everything here is header-only and branch-cheap; the hot paths that
// already clamp locally (guard token buckets, punt-queue drains) keep
// their inline arithmetic — this file is the shared contract plus the
// helper the soak engine and new call sites use.

#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace sf::sim {

/// Seconds in one simulated week — the soak horizon everything here is
/// audited against.
inline constexpr double kWeekSeconds = 7.0 * 86400.0;

/// Saturating seconds -> integer microseconds. Negative inputs clamp to 0
/// (a backward timestamp is "no time"), values past the uint64 range clamp
/// to the maximum instead of wrapping. NaN clamps to 0.
inline std::uint64_t to_micros(double seconds) {
  if (!(seconds > 0)) return 0;  // also catches NaN
  constexpr double kMax =
      static_cast<double>(std::numeric_limits<std::uint64_t>::max());
  const double micros = seconds * 1e6;
  if (micros >= kMax) return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(micros);
}

/// Non-negative elapsed time: max(0, now - since). The one-line idiom for
/// refill/drain/expiry arithmetic that must survive a backward clock.
inline double elapsed_s(double now, double since) {
  const double dt = now - since;
  return dt > 0 ? dt : 0.0;
}

inline std::uint64_t saturating_add_us(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t sum = a + b;
  return sum < a ? std::numeric_limits<std::uint64_t>::max() : sum;
}

inline std::uint64_t saturating_sub_us(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

/// A monotone simulated clock. advance_to() with an earlier (or equal)
/// timestamp is a no-op — the clock never rewinds and never spins — and
/// both advance forms return the post-advance time so callers can base
/// every downstream computation on the *clamped* clock, not the raw input.
/// Regressions are counted for tests and telemetry.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(double start) : now_(start) {}

  double now() const { return now_; }
  std::uint64_t micros() const { return to_micros(now_); }

  /// Moves the clock forward to `t`; earlier timestamps are clamped (the
  /// clock holds) and counted as regressions.
  double advance_to(double t) {
    if (t < now_) {
      ++regressions_;
      return now_;
    }
    now_ = t;
    return now_;
  }

  /// Moves the clock forward by `dt`; negative steps are clamped to zero
  /// and counted as regressions.
  double advance_by(double dt) {
    if (dt < 0) {
      ++regressions_;
      return now_;
    }
    now_ += dt;
    return now_;
  }

  /// Backward advance_to()/advance_by() calls observed so far. A replay
  /// that is supposed to be time-ordered can assert this stays zero.
  std::uint64_t regressions() const { return regressions_; }

 private:
  double now_ = 0;
  std::uint64_t regressions_ = 0;
};

}  // namespace sf::sim
