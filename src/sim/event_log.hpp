// Append-only event log with byte-stable formatting — the replay record of
// a simulated schedule. Two runs of the same scenario must produce the
// same log bytes; fingerprint() condenses that contract into one number a
// regression test can assert on (sf::chaos drives its determinism check
// through this).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sf::sim {

class EventLog {
 public:
  struct Entry {
    double time = 0;
    std::string category;
    std::string message;
  };

  void append(double time, std::string category, std::string message);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const Entry& entry(std::size_t index) const { return entries_.at(index); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Entries of one category, in append order.
  std::vector<Entry> entries(const std::string& category) const;
  std::size_t count(const std::string& category) const;

  /// One line per entry: "[t=%.3f] category: message\n". The fixed-width
  /// time format keeps the rendering independent of locale and platform.
  std::string to_string() const;

  /// FNV-1a over to_string() — equal logs, equal fingerprints.
  std::uint64_t fingerprint() const;

  void clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace sf::sim
