#include "sim/event_log.hpp"

#include <cstdio>

namespace sf::sim {

void EventLog::append(double time, std::string category,
                      std::string message) {
  entries_.push_back(Entry{time, std::move(category), std::move(message)});
}

std::vector<EventLog::Entry> EventLog::entries(
    const std::string& category) const {
  std::vector<Entry> out;
  for (const Entry& entry : entries_) {
    if (entry.category == category) out.push_back(entry);
  }
  return out;
}

std::size_t EventLog::count(const std::string& category) const {
  std::size_t n = 0;
  for (const Entry& entry : entries_) {
    if (entry.category == category) ++n;
  }
  return n;
}

std::string EventLog::to_string() const {
  std::string out;
  char stamp[32];
  for (const Entry& entry : entries_) {
    std::snprintf(stamp, sizeof(stamp), "[t=%.3f] ", entry.time);
    out += stamp;
    out += entry.category;
    out += ": ";
    out += entry.message;
    out += '\n';
  }
  return out;
}

std::uint64_t EventLog::fingerprint() const {
  const std::string rendered = to_string();
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : rendered) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace sf::sim
