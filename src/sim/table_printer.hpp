// Fixed-width console tables for the bench harness: each bench prints the
// paper's reported rows next to the measured ones.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sf::sim {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns and a header rule.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats helpers for bench output.
std::string format_double(double value, int precision = 2);
std::string format_percent(double fraction, int precision = 1);
std::string format_si(double value, const std::string& unit);

}  // namespace sf::sim
