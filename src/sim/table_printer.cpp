#include "sim/table_printer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sf::sim {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    return out + "\n";
  };
  std::string out = render_row(headers_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  out.append(rule - 2, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::print() const { std::fputs(render().c_str(), stdout); }

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string format_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string format_si(double value, const std::string& unit) {
  static constexpr const char* kPrefixes[] = {"", "K", "M", "G", "T", "P"};
  int index = 0;
  double v = value;
  while (std::fabs(v) >= 1000.0 && index < 5) {
    v /= 1000.0;
    ++index;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g %s%s", v, kPrefixes[index],
                unit.c_str());
  return buf;
}

}  // namespace sf::sim
