// Summary statistics helpers used by the simulators and benches.

#pragma once

#include <cstddef>
#include <span>

namespace sf::sim {

double mean(std::span<const double> values);
double stddev(std::span<const double> values);
double max_value(std::span<const double> values);
double min_value(std::span<const double> values);

/// Percentile by linear interpolation. p is clamped to [0, 100] (p <= 0
/// yields the minimum, p >= 100 the maximum); an empty span yields 0, a
/// single element is returned for any p, and a NaN p yields NaN.
double percentile(std::span<const double> values, double p);

/// Jain's fairness index: 1.0 means perfectly balanced shares.
double fairness_index(std::span<const double> values);

}  // namespace sf::sim
