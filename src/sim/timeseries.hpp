// Time-series recording for the week/month-long operational figures.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sf::sim {

/// A named (time, value) series. Time units are chosen by the producer
/// (the benches use days).
class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void record(double time, double value) { points_.push_back({time, value}); }

  const std::string& name() const { return name_; }
  const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }
  bool empty() const { return points_.empty(); }

  double min_value() const;
  double max_value() const;
  double mean_value() const;

  /// Downsamples to about `buckets` points by averaging, for console
  /// sparkline rendering.
  std::vector<double> downsample(std::size_t buckets) const;

 private:
  std::string name_;
  std::vector<std::pair<double, double>> points_;
};

/// Renders a series as a unicode sparkline with min/mean/max annotations.
std::string sparkline(const TimeSeries& series, std::size_t width = 72);

/// Writes one or more series as CSV (time column shared by index).
std::string to_csv(const std::vector<const TimeSeries*>& series);

}  // namespace sf::sim
