#include "core/sailfish.hpp"

namespace sf::core {

const char* version() { return "sailfish 1.0.0"; }

SailfishOptions quickstart_options() {
  SailfishOptions options;
  options.topology.vpc_count = 64;
  options.topology.total_vms = 2000;
  options.topology.nc_count = 200;
  options.topology.seed = 42;
  options.flows.flow_count = 500;
  options.flows.seed = 43;
  options.region.controller.cluster_template.primary_devices = 2;
  options.region.controller.cluster_template.backup_devices = 2;
  options.region.controller.max_clusters = 4;
  options.region.x86_nodes = 2;
  return options;
}

SailfishSystem make_system(const SailfishOptions& options) {
  SailfishSystem system;
  system.topology = workload::generate_topology(options.topology);
  system.region = std::make_unique<SailfishRegion>(options.region);
  system.admitted_vpcs = system.region->install_topology(system.topology);
  system.flows = workload::generate_flows(system.topology, options.flows);
  return system;
}

}  // namespace sf::core
