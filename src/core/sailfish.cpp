#include "core/sailfish.hpp"

#include <algorithm>

namespace sf::core {

const char* version() { return "sailfish 1.0.0"; }

SailfishOptions quickstart_options() {
  SailfishOptions options;
  options.topology.vpc_count = 64;
  options.topology.total_vms = 2000;
  options.topology.nc_count = 200;
  options.topology.seed = 42;
  options.flows.flow_count = 500;
  options.flows.seed = 43;
  options.region.controller.cluster_template.primary_devices = 2;
  options.region.controller.cluster_template.backup_devices = 2;
  options.region.controller.max_clusters = 4;
  options.region.x86_nodes = 2;
  return options;
}

SailfishOptions overflow_options(double hardware_shortfall, bool with_dpu) {
  SailfishOptions options = quickstart_options();
  if (hardware_shortfall < 1.0) hardware_shortfall = 1.0;

  // Squeeze hardware: one cluster, water levels at ~1/shortfall of the
  // topology's table demand (subnets + the default route per VPC), so
  // everything beyond that overflows into the software tier.
  auto& controller = options.region.controller;
  controller.max_clusters = 1;
  controller.initial_clusters = 1;
  const std::size_t routes_per_vpc = options.topology.subnets_per_vpc + 1;
  const double total_routes = static_cast<double>(
      options.topology.vpc_count * routes_per_vpc);
  controller.routes_water_level = std::max(
      routes_per_vpc,
      static_cast<std::size_t>(total_routes / hardware_shortfall));
  controller.mappings_water_level = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(options.topology.total_vms) /
             hardware_shortfall));
  controller.admit_overflow = true;

  // The overflow rides the bounded punt lanes toward x86; the drain is
  // deliberately far below the spillover so the DPU-less baseline
  // saturates the lanes (occupancy 1.0, typed drops) and the DPU tier
  // has something to relieve.
  options.region.enable_punt_path = true;
  options.region.punt_queue.depth_packets = 2048;
  options.region.punt_queue.drain_pps = 2e6;

  if (with_dpu) {
    options.region.enable_dpu = true;
    options.region.dpu_nodes = 2;
    options.region.dpu_template.flow_table_entries = 4096;
    options.region.tier_placer.tracker.capacity = 64;
    options.region.tier_placer.promote_min_pps = 20000;
    options.region.tier_placer.max_promote_per_interval = 64;
    options.region.tier_placer.demote_after_idle = 2;
  }
  return options;
}

SailfishSystem make_system(const SailfishOptions& options) {
  SailfishSystem system;
  system.topology = workload::generate_topology(options.topology);
  system.region = std::make_unique<SailfishRegion>(options.region);
  system.admitted_vpcs = system.region->install_topology(system.topology);
  system.flows = workload::generate_flows(system.topology, options.flows);
  return system;
}

}  // namespace sf::core
