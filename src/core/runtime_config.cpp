#include "core/runtime_config.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>

namespace sf::core {
namespace {

bool parse_off(const char* env) {
  if (env == nullptr) return false;
  const std::string_view value(env);
  return value == "0" || value == "off" || value == "OFF";
}

std::size_t parse_entries(const char* env, std::size_t fallback) {
  if (env == nullptr) return fallback;
  if (parse_off(env)) return 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env) return fallback;  // non-numeric: default on
  return static_cast<std::size_t>(parsed);
}

}  // namespace

RuntimeConfig RuntimeConfig::from_env() {
  RuntimeConfig config;
  config.flow_cache_entries = parse_entries(std::getenv("SF_FLOW_CACHE"),
                                            config.flow_cache_entries);
  config.guard_enabled = !parse_off(std::getenv("SF_GUARD"));
  config.dpu_enabled = !parse_off(std::getenv("SF_DPU"));
  // "off"/"0" means "no batching", which in burst terms is a burst of 1.
  config.batch_size = std::max<std::size_t>(
      1, parse_entries(std::getenv("SF_BATCH"), config.batch_size));
  return config;
}

const RuntimeConfig& RuntimeConfig::process() {
  static const RuntimeConfig latched = from_env();
  return latched;
}

}  // namespace sf::core
