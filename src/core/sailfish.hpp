// Sailfish — top-level convenience API.
//
// The library's subsystems compose freely, but most users want "give me a
// running region over a synthetic topology". This header is that: one call
// builds the topology, the clusters, the controller, the software fleet
// and installs everything.

#pragma once

#include <memory>
#include <string>

#include "core/region.hpp"
#include "workload/flowgen.hpp"
#include "workload/topology.hpp"

namespace sf::core {

/// Library version string.
const char* version();

struct SailfishOptions {
  workload::TopologyConfig topology;
  SailfishRegion::Config region;
  workload::FlowGenConfig flows;
};

/// A fully wired system: region + the topology and flow population it was
/// built from.
struct SailfishSystem {
  workload::RegionTopology topology;
  std::vector<workload::Flow> flows;
  std::unique_ptr<SailfishRegion> region;
  std::size_t admitted_vpcs = 0;
};

/// Builds and provisions a complete Sailfish deployment.
SailfishSystem make_system(const SailfishOptions& options);

/// A small, fast default setup for examples and smoke tests.
SailfishOptions quickstart_options();

/// A three-tier overflow scenario (DESIGN.md §11): the quickstart
/// topology with hardware squeezed so only about 1/`hardware_shortfall`
/// of the region's table demand fits XGW-H. The remaining VPCs are
/// overflow-admitted into the software tier (punt path on, bounded
/// drain). With `with_dpu`, the DPU middle tier is enabled so the
/// TierPlacer promotes overflow elephants out of the x86 spillover;
/// without it the whole overflow rides the punt lanes — the baseline the
/// bench compares against. `hardware_shortfall` of 4 to 16 covers the
/// BENCH_dpu.json frontier.
SailfishOptions overflow_options(double hardware_shortfall = 4.0,
                                 bool with_dpu = true);

}  // namespace sf::core
