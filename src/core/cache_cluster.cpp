#include "core/cache_cluster.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sf::core {

CacheClusterPlan::CacheClusterPlan(Config config) : config_(config) {
  if (config_.cache_clusters == 0 || config_.active_entry_fraction <= 0 ||
      config_.active_entry_fraction > 1) {
    throw std::invalid_argument("bad cache-cluster config");
  }
}

std::vector<bool> active_set(std::span<const TenantActivity> tenants,
                             double active_entry_fraction) {
  // Greedy by traffic density (traffic per entry): the best use of the
  // cache tier's entry budget.
  std::vector<std::size_t> order(tenants.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = tenants[a].entry_share > 0
                          ? tenants[a].traffic_share / tenants[a].entry_share
                          : 0;
    const double db = tenants[b].entry_share > 0
                          ? tenants[b].traffic_share / tenants[b].entry_share
                          : 0;
    return da > db;
  });

  std::vector<bool> active(tenants.size(), false);
  double budget = active_entry_fraction;
  constexpr double kEpsilon = 1e-9;  // absorb accumulated rounding
  for (std::size_t index : order) {
    if (tenants[index].entry_share <= budget + kEpsilon) {
      active[index] = true;
      budget -= tenants[index].entry_share;
    }
  }
  return active;
}

CacheClusterPlan::Analysis CacheClusterPlan::analyze(
    std::span<const TenantActivity> tenants) const {
  Analysis analysis;
  const std::vector<bool> active =
      active_set(tenants, config_.active_entry_fraction);
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (active[i]) {
      analysis.hit_rate += tenants[i].traffic_share;
      ++analysis.active_tenants;
    }
  }
  const double n = static_cast<double>(config_.cache_clusters);
  const double hit = std::clamp(analysis.hit_rate, 0.0, 1.0);
  const double cache_bound = hit > 0 ? n / hit : n;
  const double backup_bound = hit < 1 ? 1.0 / (1.0 - hit) : cache_bound;
  analysis.load_multiplier = std::min(cache_bound, backup_bound);
  analysis.cost_ratio = n * config_.active_entry_fraction + 1.0;
  return analysis;
}

std::size_t CacheClusterPlan::steer(std::size_t tenant,
                                    const std::vector<bool>& active_flags)
    const {
  if (tenant < active_flags.size() && active_flags[tenant]) {
    return tenant % config_.cache_clusters;
  }
  return config_.cache_clusters;  // the backup cluster
}

}  // namespace sf::core
