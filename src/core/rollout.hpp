// Staged traffic admission and fleet table rollout (§6.1): "if the user
// traffic is too heavy, we will admit the traffic incrementally" — and
// §2.3's pain: installing a full table set takes >10 minutes per XGW-x86,
// so updating hundreds of software gateways is slow and coherence-prone.
//
// Two pieces:
//  * fleet_install_seconds(): the time-to-coherence model comparing a
//    hundreds-node software fleet with a ten-node hardware fleet.
//  * RolloutManager: admits traffic in increasing fractions, running a
//    health check (drop rate) between steps and aborting on regression.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/region.hpp"

namespace sf::core {

/// Seconds until every node of a fleet holds the full table set, with the
/// controller pushing to `parallel_streams` nodes concurrently.
double fleet_install_seconds(std::size_t nodes, std::size_t entries,
                             double entries_per_second_per_node,
                             std::size_t parallel_streams);

class RolloutManager {
 public:
  struct Config {
    /// Admission fractions, in order; rollout stops on the first failing
    /// health check.
    std::vector<double> admission_steps = {0.01, 0.1, 0.5, 1.0};
    /// Health gate between steps.
    double max_drop_rate = 1e-6;
  };

  struct StageResult {
    double fraction = 0;
    double offered_bps = 0;
    double drop_rate = 0;
    bool passed = false;
  };

  RolloutManager();
  explicit RolloutManager(Config config) : config_(std::move(config)) {}

  /// Admits `total_bps` of the flow population in stages. Returns the
  /// per-stage results; rollout halts at the first failed health check
  /// (the returned vector then ends with the failing stage).
  std::vector<StageResult> admit_traffic(
      SailfishRegion& region, std::span<const workload::Flow> flows,
      double total_bps) const;

  /// True when every stage passed (traffic fully admitted).
  static bool fully_admitted(const std::vector<StageResult>& stages,
                             const Config& config);

  const Config& config() const { return config_; }

 private:
  Config config_;
};

inline RolloutManager::RolloutManager() : RolloutManager(Config{}) {}

}  // namespace sf::core
