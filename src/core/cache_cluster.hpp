// "N+1" hierarchical cache clusters — the paper's future-work design (§8):
// N cache clusters at the front serve only the *active* tenants' entries;
// one backup cluster holds everything and absorbs cache misses. If 25% of
// entries are active, 4 cache clusters + 1 backup give ~4x the processing
// capability at ~2x the nodes.
//
// This module provides both the capacity-planning analysis (the paper's
// arithmetic, generalized to a measured tenant-activity distribution) and
// a functional steer() used to exercise the miss path in tests. It also
// quantifies the §6.2 stability argument against TEA-style dynamic
// caching: with *pre-identified* active sets the miss rate is a planning
// input, not a runtime surprise.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sf::core {

/// One tenant's share of table entries and of traffic.
struct TenantActivity {
  double entry_share = 0;    // fraction of all table entries
  double traffic_share = 0;  // fraction of region traffic
};

class CacheClusterPlan {
 public:
  struct Config {
    std::size_t cache_clusters = 4;
    /// Fraction of all entries the active set may occupy (each cache
    /// cluster holds exactly this fraction).
    double active_entry_fraction = 0.25;
  };

  struct Analysis {
    /// Traffic share served by the cache tier (active tenants).
    double hit_rate = 0;
    /// Max offered load relative to one cluster's throughput:
    /// min(N / hit, 1 / (1 - hit)).
    double load_multiplier = 0;
    /// Memory (and, to first order, node) cost relative to one
    /// full-table cluster: N * active_fraction + 1.
    double cost_ratio = 0;
    /// Tenants included in the active set.
    std::size_t active_tenants = 0;
  };

  explicit CacheClusterPlan(Config config);

  /// Greedily fills the active set with the highest traffic-per-entry
  /// tenants until the entry budget is used, then evaluates the design.
  Analysis analyze(std::span<const TenantActivity> tenants) const;

  /// Functional steering for tenant index `tenant` (after analyze():
  /// members of the active set round-robin over cache clusters; misses go
  /// to the backup, returned as cluster index `cache_clusters`).
  std::size_t steer(std::size_t tenant,
                    const std::vector<bool>& active_flags) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

/// Marks the active set chosen by CacheClusterPlan::analyze for use with
/// steer(); returned vector parallels `tenants`.
std::vector<bool> active_set(std::span<const TenantActivity> tenants,
                             double active_entry_fraction);

}  // namespace sf::core
