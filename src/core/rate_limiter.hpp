// A standalone token-bucket rate limiter. XGW-H instantiates one on its
// fallback port (§4.2: "rate limiting is necessary at XGW-H before
// forwarding the traffic to XGW-x86 for overload protection"); the region
// uses another in front of the whole software fleet.

#pragma once

#include <cstdint>

namespace sf::core {

class TokenBucket {
 public:
  /// rate is in units per second (the caller chooses bytes or packets).
  TokenBucket(double rate, double burst);

  /// Consumes `amount` at time `now` if available. Time must be
  /// monotonically non-decreasing across calls.
  bool try_consume(double amount, double now);

  /// Tokens currently available (after refill to `now`).
  double available(double now);

  double rate() const { return rate_; }
  double burst() const { return burst_; }

  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  void refill(double now);

  double rate_;
  double burst_;
  double tokens_;
  double last_refill_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace sf::core
