// Hardware/software table-sharing policy (§4.2).
//
// The paper's data mining found the 80/20 rule: ~5% of table entries carry
// ~95% of traffic. Sailfish therefore puts a few key, stable tables in
// XGW-H to absorb the majority of traffic and leaves volatile tables and
// huge stateful tables (SNAT: O(100M) sessions) in XGW-x86. These
// decisions are predetermined by the central controller; this module is
// that decision function.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace sf::core {

enum class Placement : std::uint8_t { kHardware, kSoftware };

std::string to_string(Placement placement);

/// What the controller knows about one cloud service's table.
struct ServiceProfile {
  std::string name;
  double traffic_share = 0;      // fraction of region traffic hitting it
  double update_rate_per_s = 0;  // table churn
  std::size_t entries = 0;
  bool stateful = false;         // per-session state (SNAT-like)
  double stable_days = 0;        // time since last forwarding-logic change
};

struct SharingPolicy {
  /// Tables carrying less traffic than this are not worth hardware slots.
  double min_traffic_share = 0.001;
  /// Churny tables stay in software (hardware updates are slower and
  /// riskier).
  double max_update_rate_per_s = 50;
  /// Entry budget a table may claim in hardware.
  std::size_t max_entries = 2'000'000;
  /// "Unstable newborn services ... are carried by XGW-x86" (§4.2).
  double min_stable_days = 30;
};

/// The controller's placement decision for one service table.
Placement decide_placement(const ServiceProfile& profile,
                           const SharingPolicy& policy);

/// Decides a whole service catalog; returns per-service placements in
/// input order.
std::vector<Placement> decide_catalog(std::span<const ServiceProfile> catalog,
                                      const SharingPolicy& policy);

/// Fraction of traffic that ends up on the software path under the given
/// placements — the quantity Fig. 22 shows staying below 0.2‰ for the
/// production catalog.
double software_traffic_share(std::span<const ServiceProfile> catalog,
                              std::span<const Placement> placements);

/// The production-like service catalog used by benches and examples
/// (traffic shares follow the paper's 80/20 observation).
std::vector<ServiceProfile> default_service_catalog();

}  // namespace sf::core
