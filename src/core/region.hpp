// The full Sailfish region (Fig. 10): XGW-H clusters behind the load
// balancers absorbing the majority of traffic, an XGW-x86 fleet behind
// them holding the complete tables and the stateful SNAT, one central
// controller splitting tables across clusters, and disaster recovery.
//
// Two ways to use it:
//   * the functional path — process() runs one packet end to end through
//     the hardware (and, for fallback traffic, the software) gateway;
//   * the interval simulator — simulate_interval() takes a flow population
//     and an offered rate and reports drops, the HW/SW traffic split and
//     the loopback-pipe balance: the inputs of Figs. 19-22.

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/controller.hpp"
#include "cluster/disaster_recovery.hpp"
#include "core/rate_limiter.hpp"
#include "core/runtime_config.hpp"
#include "dataplane/gateway.hpp"
#include "dataplane/shard_engine.hpp"
#include "dpu/tier_placer.hpp"
#include "dpu/xgw_dpu.hpp"
#include "guard/guard.hpp"
#include "guard/punt_queue.hpp"
#include "telemetry/registry.hpp"
#include "workload/flowgen.hpp"
#include "x86/xgw_x86.hpp"

namespace sf::core {

class SailfishRegion : public dataplane::Gateway {
 public:
  struct Config {
    cluster::Controller::Config controller;
    /// Recovery coordination (cold-standby pool, port-isolation shape).
    cluster::DisasterRecovery::Config recovery;
    std::size_t x86_nodes = 4;
    x86::XgwX86::Config x86_template;
    /// Residual per-packet loss probability of the hardware path — port
    /// bit errors and rare microbursts. The 1e-11..1e-10 band of Fig. 19.
    double hardware_loss_floor = 3e-11;
    unsigned x86_ecmp_max_next_hops = 64;
    /// Sharded interval engine shape: shard count is fixed (part of the
    /// simulation's identity — results never depend on it being spread
    /// over more threads); threads is pure parallelism.
    dataplane::ShardPlan interval_engine{};
    /// Per-tenant overload guard (sf::guard, DESIGN.md §10). Off by
    /// default; also honors the SF_GUARD environment gate. When absent
    /// the region registers no guard counters and behaves byte-
    /// identically to a guard-less build. The guard's shard count is the
    /// interval engine's, so the interval pre-pass parallelizes without
    /// locks.
    bool enable_guard = false;
    guard::TenantGuard::Config guard;
    /// Hardware→x86 punt path. When enabled, XGW-H fallback traffic and
    /// tier-1 meter-degraded packets go through a bounded per-device punt
    /// queue toward the *paired* XGW-x86 (queue-full backpressure drops
    /// with kPuntQueueFull); when disabled, fallback keeps the legacy
    /// tuple-ECMP steering and tier-1 non-established packets are shed.
    bool enable_punt_path = false;
    guard::PuntQueue::Config punt_queue;
    /// DPU middle tier (DESIGN.md §11): a rack of flow-offload boxes
    /// between XGW-H and the x86 fleet. Promotion/demotion is driven by
    /// the TierPlacer's sketches each interval; on the functional path,
    /// software-tier packets (overflow VPCs, guard punts, XGW-H fallback)
    /// try their placed DPU entry before the punt queue / x86. Off by
    /// default; also honors the SF_DPU environment gate — when either
    /// gate is closed nothing is built, no counters register, and every
    /// artifact is byte-identical to a DPU-less build.
    bool enable_dpu = false;
    std::size_t dpu_nodes = 2;
    dpu::XgwDpu::Config dpu_template;
    dpu::TierPlacer::Config tier_placer;
    /// Explicit runtime gates for this region. When set, the guard/DPU
    /// kill switches come from here instead of the process-wide
    /// environment latch (construction-time injection for tests and
    /// embedders); when absent, the SF_GUARD/SF_DPU environment is
    /// honored exactly as before. Per-device flow-cache sizing stays a
    /// device Config knob (it defaults from the process gates).
    std::optional<RuntimeConfig> runtime;
  };

  explicit SailfishRegion(Config config);

  // ---- provisioning ---------------------------------------------------------

  /// Installs the topology into hardware (split by VNI across clusters)
  /// and mirrors everything into every XGW-x86 node. Returns admitted VPCs.
  std::size_t install_topology(const workload::RegionTopology& region);

  cluster::Controller& controller() { return controller_; }
  const cluster::Controller& controller() const { return controller_; }
  cluster::DisasterRecovery& disaster_recovery() { return *recovery_; }
  const cluster::DisasterRecovery& disaster_recovery() const {
    return *recovery_;
  }

  std::size_t x86_node_count() const { return x86_nodes_.size(); }
  x86::XgwX86& x86_node(std::size_t index) { return *x86_nodes_.at(index); }

  /// The software node the fallback path would pick for a flow (tracing).
  std::size_t x86_node_index_for(const net::FiveTuple& tuple) const;

  /// The tenant guard; nullptr when not configured (or gated off by
  /// SF_GUARD). Non-const so chaos storms can arm limits at runtime.
  guard::TenantGuard* tenant_guard() { return guard_.get(); }
  const guard::TenantGuard* tenant_guard() const { return guard_.get(); }
  const guard::PuntQueue* punt_queue() const { return punt_queue_.get(); }

  /// The DPU tier; empty/nullptr when not configured (or gated off by
  /// SF_DPU).
  std::size_t dpu_node_count() const { return dpu_nodes_.size(); }
  dpu::XgwDpu& dpu_node(std::size_t index) { return *dpu_nodes_.at(index); }
  const dpu::XgwDpu& dpu_node(std::size_t index) const {
    return *dpu_nodes_.at(index);
  }
  dpu::TierPlacer* tier_placer() { return placer_.get(); }
  const dpu::TierPlacer* tier_placer() const { return placer_.get(); }

  /// Chaos hook: fails (or recovers) one DPU node. Failure clears the
  /// node's flow table AND the placer's record of it — elephants fall
  /// back to x86 immediately and re-promote from scratch on recovery.
  void set_dpu_failed(std::size_t node, bool failed);

  // ---- functional end-to-end path (dataplane::Gateway) ----------------------

  /// Runs one packet end to end: LB -> XGW-H, and for fallback traffic on
  /// through the XGW-x86 fleet. `software_path` marks verdicts produced by
  /// the software gateway; dataplane::path_label() names the Fig. 10 path.
  dataplane::Verdict process(const net::OverlayPacket& packet,
                             double now = 0) override;

  // ---- interval performance simulation ----------------------------------------

  struct IntervalReport {
    double offered_bps = 0;
    double offered_pps = 0;
    double dropped_pps = 0;
    double drop_rate = 0;
    /// Traffic carried by the software path.
    double fallback_bps = 0;
    double fallback_pps = 0;
    double fallback_ratio = 0;
    /// Bits/s crossing each loopback egress pipe, summed over clusters
    /// (indices 1 and 3 are the interesting ones — Figs. 20/21).
    std::array<double, 4> shard_pipe_bps{};
    double x86_max_core_utilization = 0;
    /// Packets/s shed by the tenant guard this interval (already included
    /// in dropped_pps). Zero when no guard is configured.
    double guard_shed_pps = 0;
    /// Per metered tenant: offered rate, shed rate and ladder tier at the
    /// end of the interval, ascending VNI. Empty without a guard.
    std::vector<guard::TenantGuard::TenantInterval> guard_tenants;
    // ---- three-tier placement (zero unless overflow VPCs exist or the
    // DPU tier is built) -----------------------------------------------------
    /// Offered by software-tier (overflow-admitted) tenants.
    double overflow_pps = 0;
    /// Served by the DPU tier / crossing to x86 after the DPU miss.
    double dpu_pps = 0;
    double dpu_bps = 0;
    double overflow_x86_pps = 0;
    /// Fluid overflow-lane occupancy toward x86, as a fraction of the
    /// drain capacity (1.0 == saturated; excess drops as kPuntQueueFull).
    double punt_queue_occupancy = 0;
    /// pps-weighted p99/p999 forwarding latency across the served path
    /// classes (ASIC, DPU, x86, x86-with-queue-delay).
    double p99_latency_us = 0;
    double p999_latency_us = 0;
    std::size_t dpu_flow_entries = 0;
    /// Placed entries / total DPU table capacity, in [0, 1].
    double dpu_table_occupancy = 0;
    std::size_t dpu_promotions = 0;
    std::size_t dpu_demotions = 0;
  };

  /// Simulates one interval: each flow offers weight * total_bps.
  /// `jitter_key` deterministically perturbs the hardware loss floor so a
  /// time series shows the Fig. 19 band rather than a flat line.
  ///
  /// Internally the flow population is partitioned by the hash the
  /// steering already uses (VNI hash for hardware flows, RSS tuple hash
  /// for software ones) across `Config::interval_engine.shards` shards and
  /// fanned out over the engine's thread pool. The report is byte-
  /// identical for every thread count: per-shard work writes only
  /// shard-private state, and every floating-point reduction runs
  /// single-threaded in a fixed order.
  IntervalReport simulate_interval(std::span<const workload::Flow> flows,
                                   double total_bps,
                                   std::uint64_t jitter_key = 0) const;

  /// Resizes the interval engine's worker pool (results unchanged —
  /// the shard count stays fixed).
  void set_interval_threads(std::size_t threads) {
    engine_->set_threads(threads);
  }
  const dataplane::ShardPlan& interval_plan() const {
    return engine_->plan();
  }

  // ---- telemetry ------------------------------------------------------------

  /// Region-level counters. process() counts per-path outcomes
  /// ("region.hw_forwarded", "region.sw_snat", ...) and, for drops, a
  /// per-reason breakdown ("region.drop.no live device in ECMP set", ...)
  /// whose snapshot deltas measure packets lost inside a failover
  /// convergence window; simulate_interval()
  /// accumulates running sums of the interval rates ("region.offered_bps_sum",
  /// "region.fallback_bps_sum", "region.pipe1_bps_sum", ...) so time series
  /// fall out of snapshot deltas. Dropped pps is kept in micro-pps
  /// ("region.dropped_upps_sum") to preserve the tiny loss-floor rates.
  telemetry::Registry& registry() { return *registry_; }
  const telemetry::Registry& registry() const { return *registry_; }

  /// Everything at once: region counters, controller + per-device
  /// registries ("clusterC.deviceD."), the x86 fleet ("x86N.") and the
  /// DPU tier ("dpuN.", only when built).
  telemetry::Snapshot telemetry_snapshot() const;

  /// Publishes point-in-time pressure gauges into the region registry:
  /// punt-queue occupancy + high watermark (when the punt path is built),
  /// aggregate x86 flow-cache occupancy + high watermark, and DPU table
  /// occupancy (when the tier is built). Opt-in — a region that never
  /// calls this keeps gauge-free (pre-gauge byte-identical) snapshots.
  void publish_pressure_gauges(double now);

  const Config& config() const { return config_; }

 private:
  x86::XgwX86& x86_for_flow(const net::FiveTuple& tuple);
  const x86::XgwX86& x86_for_flow(const net::FiveTuple& tuple) const;
  void count_drop_reason(dataplane::DropReason reason);
  /// The punt lane a packet uses: the serving (cluster, device) pair.
  std::pair<std::size_t, std::size_t> punt_lane_for(
      const net::OverlayPacket& packet) const;
  /// Runs the packet over the punt path: bounded queue toward the paired
  /// XGW-x86 (kPuntQueueFull on overflow). `allow_cache` is false for
  /// meter-degraded punts (they must not touch the x86 flow cache).
  dataplane::Verdict punt_to_x86(const net::OverlayPacket& packet,
                                 double now, double base_latency_us,
                                 bool allow_cache);
  /// Shared software-path accounting for fallback/punt verdicts.
  dataplane::Verdict finish_software(x86::X86Result sw,
                                     double extra_latency_us);
  /// Tries the DPU tier for one packet: nullopt when the tier is absent,
  /// the flow is not placed, or the placed node failed (caller continues
  /// toward x86 as if the tier did not exist).
  std::optional<dataplane::Verdict> try_dpu(const net::OverlayPacket& packet,
                                            double now,
                                            double extra_latency_us);
  /// Serves a software-tier (overflow-admitted) tenant's packet:
  /// DPU first, then the punt path / legacy ECMP toward x86.
  dataplane::Verdict serve_software_tier(const net::OverlayPacket& packet,
                                         double now);

  Config config_;
  cluster::Controller controller_;
  std::vector<std::unique_ptr<x86::XgwX86>> x86_nodes_;
  cluster::EcmpGroup x86_ecmp_;
  std::unique_ptr<cluster::DisasterRecovery> recovery_;
  /// Built only when configured and SF_GUARD allows (see Config::guard).
  std::unique_ptr<guard::TenantGuard> guard_;
  std::unique_ptr<guard::PuntQueue> punt_queue_;
  /// Built only when configured and SF_DPU allows (see Config::enable_dpu).
  std::vector<std::unique_ptr<dpu::XgwDpu>> dpu_nodes_;
  std::unique_ptr<dpu::TierPlacer> placer_;

  // unique_ptr so the const interval simulator can drive the pool.
  std::unique_ptr<dataplane::ShardEngine> engine_;

  // unique_ptr so the const interval simulator can record too.
  std::unique_ptr<telemetry::Registry> registry_;
  telemetry::Counter* ctr_packets_ = nullptr;
  telemetry::Counter* ctr_hw_forwarded_ = nullptr;
  telemetry::Counter* ctr_hw_tunnel_ = nullptr;
  telemetry::Counter* ctr_sw_forwarded_ = nullptr;
  telemetry::Counter* ctr_sw_snat_ = nullptr;
  telemetry::Counter* ctr_dropped_ = nullptr;
  telemetry::Counter* ctr_intervals_ = nullptr;
  telemetry::Counter* ctr_offered_bps_sum_ = nullptr;
  telemetry::Counter* ctr_offered_pps_sum_ = nullptr;
  telemetry::Counter* ctr_dropped_upps_sum_ = nullptr;
  telemetry::Counter* ctr_fallback_bps_sum_ = nullptr;
  telemetry::Counter* ctr_pipe1_bps_sum_ = nullptr;
  telemetry::Counter* ctr_pipe3_bps_sum_ = nullptr;
  // Guard counters, registered only when the guard/punt path is built so
  // guard-less regions keep byte-identical telemetry snapshots.
  telemetry::Counter* ctr_guard_admitted_ = nullptr;
  telemetry::Counter* ctr_guard_established_ = nullptr;
  telemetry::Counter* ctr_guard_punted_ = nullptr;
  telemetry::Counter* ctr_guard_punt_queue_full_ = nullptr;
  telemetry::Counter* ctr_guard_shed_new_flow_ = nullptr;
  telemetry::Counter* ctr_guard_shed_tenant_ = nullptr;
  telemetry::Counter* ctr_guard_escalations_ = nullptr;
  telemetry::Counter* ctr_guard_deescalations_ = nullptr;
  telemetry::Counter* ctr_guard_shed_upps_sum_ = nullptr;
  // DPU counters, registered only when the tier is built so DPU-less
  // regions keep byte-identical telemetry snapshots.
  telemetry::Counter* ctr_dpu_served_ = nullptr;
  telemetry::Counter* ctr_dpu_fallback_ = nullptr;
  telemetry::Counter* ctr_dpu_promotions_ = nullptr;
  telemetry::Counter* ctr_dpu_demotions_ = nullptr;
  telemetry::Counter* ctr_dpu_pps_sum_ = nullptr;
};

}  // namespace sf::core
