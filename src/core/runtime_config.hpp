// sf::core::RuntimeConfig — the process's runtime gates, consolidated.
//
// Three subsystems used to read their own environment variable through a
// private latch: the flow cache (SF_FLOW_CACHE sizes/disables the packet
// fast path), the guard (SF_GUARD kills overload protection), and the DPU
// tier (SF_DPU kills the middle tier). The knobs are one concept — "which
// optional machinery does this process run" — so they parse into one
// struct, once, and the legacy gate functions (
// dataplane::default_flow_cache_entries(), guard::guard_enabled(),
// dpu::dpu_enabled()) delegate here. Environment semantics are unchanged
// byte-for-byte:
//
//   SF_FLOW_CACHE   unset → 4096 entries; "0"/"off"/"OFF" → disabled;
//                   numeric → that many entries; other → 4096.
//   SF_GUARD        unset → enabled; "0"/"off"/"OFF" → disabled.
//   SF_DPU          unset → enabled; "0"/"off"/"OFF" → disabled.
//   SF_BATCH        unset → 32-packet bursts in the sharded engine;
//                   "0"/"off"/"OFF"/"1" → scalar-shaped one-packet bursts;
//                   numeric → that burst size. Byte-invisible by the
//                   batch-identity contract (CI diffs 1 vs default).
//
// `process()` latches on first use (same discipline as the old per-gate
// latches: set the environment before anything touches a gate, or the
// test needs its own binary). `from_env()` re-parses every call — for
// tests that exercise the parser itself without disturbing the latch.
//
// A region can also carry an explicit RuntimeConfig
// (SailfishRegion::Config::runtime) to pin its subsystem gates
// independently of the environment — construction-time dependency
// injection instead of process-global state.

#pragma once

#include <cstddef>

namespace sf::core {

struct RuntimeConfig {
  /// Flow-cache capacity devices default to (0 disables the fast path).
  std::size_t flow_cache_entries = std::size_t{1} << 12;
  /// sf::guard machinery (tenant guard, punt path, circuit breakers).
  bool guard_enabled = true;
  /// sf::dpu middle tier.
  bool dpu_enabled = true;
  /// Burst size of the sharded engine's batched packet path (min 1; 1
  /// degenerates to the scalar shape). Results are identical at any value
  /// — this is purely a throughput knob.
  std::size_t batch_size = 32;

  /// Fresh parse of SF_FLOW_CACHE / SF_GUARD / SF_DPU (no latch).
  static RuntimeConfig from_env();

  /// The process-wide config: from_env(), latched on first use.
  static const RuntimeConfig& process();
};

}  // namespace sf::core
