#include "core/path_trace.hpp"

#include <sstream>

namespace sf::core {
namespace {

const char* path_name(SailfishRegion::RegionResult::Path path) {
  using Path = SailfishRegion::RegionResult::Path;
  switch (path) {
    case Path::kHardwareForwarded:
      return "hardware-forwarded";
    case Path::kHardwareTunnel:
      return "hardware-tunnel";
    case Path::kSoftwareForwarded:
      return "software-forwarded";
    case Path::kSoftwareSnat:
      return "software-snat";
    case Path::kDropped:
      return "dropped";
  }
  return "?";
}

}  // namespace

std::string PathTrace::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    out << "  [" << i + 1 << "] " << hops[i].where << ": "
        << hops[i].detail << "\n";
    if (!hops[i].counters.empty()) {
      out << "      counters:";
      for (const auto& [name, value] : hops[i].counters) {
        out << " " << name << "=" << value;
      }
      out << "\n";
    }
  }
  out << "  => " << path_name(result.path);
  if (!result.drop_reason.empty()) out << " (" << result.drop_reason << ")";
  return out.str();
}

PathTrace trace_packet(SailfishRegion& region,
                       const net::OverlayPacket& packet, double now) {
  // This mirrors SailfishRegion::process() hop for hop; the picks use the
  // same deterministic hashes, so the trace tells the truth about what
  // process() does — without running the datapath twice.
  PathTrace trace;
  auto& controller = region.controller();

  const auto cluster_id = controller.cluster_for(packet.vni);
  if (!cluster_id) {
    trace.hops.push_back({"vni-director",
                          "vni " + std::to_string(packet.vni) +
                              " not assigned to any cluster"});
    trace.result.path = SailfishRegion::RegionResult::Path::kDropped;
    trace.result.drop_reason = "VNI not assigned to any cluster";
    return trace;
  }
  trace.hops.push_back({"vni-director",
                        "vni " + std::to_string(packet.vni) +
                            " -> cluster " + std::to_string(*cluster_id)});

  auto& cluster = controller.cluster(*cluster_id);
  const auto device = cluster.pick_device(packet.inner);
  if (!device) {
    trace.hops.push_back(
        {"cluster " + std::to_string(*cluster_id) + " ecmp",
         "no live devices"});
    trace.result.path = SailfishRegion::RegionResult::Path::kDropped;
    trace.result.drop_reason = "cluster has no live devices";
    return trace;
  }
  trace.hops.push_back(
      {"cluster " + std::to_string(*cluster_id) + " ecmp",
       "flow hash -> device " + std::to_string(*device) + " (" +
           cluster.device(*device).config().device_ip.to_string() + ")" +
           (cluster.failed_over() ? " [serving from backups]" : "")});

  auto hw = cluster.device(*device).process(packet, now);
  {
    std::ostringstream detail;
    detail << to_string(hw.action) << ", " << hw.passes
           << " pipeline pass(es)";
    if (hw.shard_pipe) {
      detail << ", loopback via egress pipe " << *hw.shard_pipe;
    }
    detail << ", " << hw.latency_us << " us";
    if (!hw.drop_reason.empty()) detail << ", reason: " << hw.drop_reason;
    TraceHop hop{"xgw-h", detail.str(), {}};
    const auto& reg = cluster.device(*device).registry();
    hop.counters = {
        {"xgwh.packets_in", reg.counter_value("xgwh.packets_in")},
        {"xgwh.packets_forwarded",
         reg.counter_value("xgwh.packets_forwarded")},
        {"xgwh.packets_fallback",
         reg.counter_value("xgwh.packets_fallback")},
        {"xgwh.packets_dropped", reg.counter_value("xgwh.packets_dropped")},
    };
    trace.hops.push_back(std::move(hop));
  }
  trace.result.latency_us = hw.latency_us;

  switch (hw.action) {
    case xgwh::ForwardAction::kForwardToNc:
      trace.hops.push_back({"underlay",
                            "outer DIP " +
                                hw.packet.outer_dst_ip.to_string() +
                                " (destination NC)"});
      trace.result.path =
          SailfishRegion::RegionResult::Path::kHardwareForwarded;
      trace.result.packet = std::move(hw.packet);
      return trace;
    case xgwh::ForwardAction::kForwardTunnel:
      trace.hops.push_back({"underlay",
                            "tunnel to " +
                                hw.packet.outer_dst_ip.to_string()});
      trace.result.path =
          SailfishRegion::RegionResult::Path::kHardwareTunnel;
      trace.result.packet = std::move(hw.packet);
      return trace;
    case xgwh::ForwardAction::kDrop:
      trace.result.path = SailfishRegion::RegionResult::Path::kDropped;
      trace.result.drop_reason = std::move(hw.drop_reason);
      return trace;
    case xgwh::ForwardAction::kFallbackToX86:
      break;
  }

  const std::size_t node = region.x86_node_index_for(packet.inner);
  trace.hops.push_back({"fallback ecmp",
                        "steered to xgw-x86 node " + std::to_string(node)});
  auto sw = region.x86_node(node).process(packet, now);
  {
    std::ostringstream detail;
    detail << to_string(sw.action) << ", " << sw.latency_us << " us";
    if (sw.snat) {
      detail << ", SNAT " << sw.snat->public_ip.to_string() << ":"
             << sw.snat->public_port;
    }
    if (!sw.drop_reason.empty()) detail << ", reason: " << sw.drop_reason;
    TraceHop hop{"xgw-x86", detail.str(), {}};
    const auto& reg = region.x86_node(node).registry();
    hop.counters = {
        {"x86.packets_in", reg.counter_value("x86.packets_in")},
        {"x86.packets_forwarded",
         reg.counter_value("x86.packets_forwarded")},
        {"x86.packets_snat", reg.counter_value("x86.packets_snat")},
        {"x86.packets_dropped", reg.counter_value("x86.packets_dropped")},
    };
    trace.hops.push_back(std::move(hop));
  }
  trace.result.latency_us += sw.latency_us;
  trace.result.packet = std::move(sw.packet);
  switch (sw.action) {
    case x86::X86Action::kForwardToNc:
    case x86::X86Action::kForwardTunnel:
      trace.result.path =
          SailfishRegion::RegionResult::Path::kSoftwareForwarded;
      break;
    case x86::X86Action::kSnatToInternet:
      trace.result.path = SailfishRegion::RegionResult::Path::kSoftwareSnat;
      break;
    case x86::X86Action::kDrop:
      trace.result.path = SailfishRegion::RegionResult::Path::kDropped;
      trace.result.drop_reason = std::move(sw.drop_reason);
      break;
  }
  return trace;
}

}  // namespace sf::core
