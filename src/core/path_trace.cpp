#include "core/path_trace.hpp"

#include <sstream>

namespace sf::core {

std::string PathTrace::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    out << "  [" << i + 1 << "] " << hops[i].where << ": "
        << hops[i].detail << "\n";
    if (!hops[i].counters.empty()) {
      out << "      counters:";
      for (const auto& [name, value] : hops[i].counters) {
        out << " " << name << "=" << value;
      }
      out << "\n";
    }
  }
  out << "  => " << dataplane::path_label(result);
  if (result.dropped()) {
    out << " (" << dataplane::to_string(result.drop_reason) << ")";
  }
  return out.str();
}

PathTrace trace_packet(SailfishRegion& region,
                       const net::OverlayPacket& packet, double now) {
  // This mirrors SailfishRegion::process() hop for hop; the picks use the
  // same deterministic hashes, so the trace tells the truth about what
  // process() does — without running the datapath twice.
  PathTrace trace;
  auto& controller = region.controller();

  const auto cluster_id = controller.cluster_for(packet.vni);
  if (!cluster_id) {
    trace.hops.push_back({"vni-director",
                          "vni " + std::to_string(packet.vni) +
                              " not assigned to any cluster"});
    trace.result =
        dataplane::Verdict::drop(dataplane::DropReason::kUnknownVni);
    return trace;
  }
  trace.hops.push_back({"vni-director",
                        "vni " + std::to_string(packet.vni) +
                            " -> cluster " + std::to_string(*cluster_id)});

  auto& cluster = controller.cluster(*cluster_id);
  const auto device = cluster.pick_device(packet.inner);
  if (!device) {
    trace.hops.push_back(
        {"cluster " + std::to_string(*cluster_id) + " ecmp",
         "no live devices"});
    trace.result =
        dataplane::Verdict::drop(dataplane::DropReason::kNoLiveDevice);
    return trace;
  }
  trace.hops.push_back(
      {"cluster " + std::to_string(*cluster_id) + " ecmp",
       "flow hash -> device " + std::to_string(*device) + " (" +
           cluster.device(*device).config().device_ip.to_string() + ")" +
           (cluster.failed_over() ? " [serving from backups]" : "")});

  auto hw = cluster.device(*device).forward(packet, now);
  {
    std::ostringstream detail;
    detail << dataplane::to_string(hw.action) << ", " << hw.passes
           << " pipeline pass(es)";
    if (hw.shard_pipe) {
      detail << ", loopback via egress pipe " << *hw.shard_pipe;
    }
    detail << ", " << hw.latency_us << " us";
    if (hw.dropped()) {
      detail << ", reason: " << dataplane::to_string(hw.drop_reason);
    }
    TraceHop hop{"xgw-h", detail.str(), {}};
    const auto& reg = cluster.device(*device).registry();
    hop.counters = {
        {"xgwh.packets_in", reg.counter_value("xgwh.packets_in")},
        {"xgwh.packets_forwarded",
         reg.counter_value("xgwh.packets_forwarded")},
        {"xgwh.packets_fallback",
         reg.counter_value("xgwh.packets_fallback")},
        {"xgwh.packets_dropped", reg.counter_value("xgwh.packets_dropped")},
    };
    trace.hops.push_back(std::move(hop));
  }
  trace.result.latency_us = hw.latency_us;

  switch (hw.action) {
    case dataplane::Action::kForwardToNc:
      trace.hops.push_back({"underlay",
                            "outer DIP " +
                                hw.packet.outer_dst_ip.to_string() +
                                " (destination NC)"});
      trace.result = std::move(static_cast<dataplane::Verdict&>(hw));
      return trace;
    case dataplane::Action::kForwardTunnel:
      trace.hops.push_back({"underlay",
                            "tunnel to " +
                                hw.packet.outer_dst_ip.to_string()});
      trace.result = std::move(static_cast<dataplane::Verdict&>(hw));
      return trace;
    case dataplane::Action::kDrop:
      trace.result = std::move(static_cast<dataplane::Verdict&>(hw));
      return trace;
    default:
      break;
  }

  const std::size_t node = region.x86_node_index_for(packet.inner);
  trace.hops.push_back({"fallback ecmp",
                        "steered to xgw-x86 node " + std::to_string(node)});
  auto sw = region.x86_node(node).forward(packet, now);
  {
    std::ostringstream detail;
    detail << dataplane::to_string(sw.action) << ", " << sw.latency_us
           << " us";
    if (sw.snat) {
      detail << ", SNAT " << sw.snat->public_ip.to_string() << ":"
             << sw.snat->public_port;
    }
    if (sw.dropped()) {
      detail << ", reason: " << dataplane::to_string(sw.drop_reason);
    }
    TraceHop hop{"xgw-x86", detail.str(), {}};
    const auto& reg = region.x86_node(node).registry();
    hop.counters = {
        {"x86.packets_in", reg.counter_value("x86.packets_in")},
        {"x86.packets_forwarded",
         reg.counter_value("x86.packets_forwarded")},
        {"x86.packets_snat", reg.counter_value("x86.packets_snat")},
        {"x86.packets_dropped", reg.counter_value("x86.packets_dropped")},
    };
    trace.hops.push_back(std::move(hop));
  }
  const double hw_latency = trace.result.latency_us;
  trace.result = std::move(static_cast<dataplane::Verdict&>(sw));
  trace.result.latency_us += hw_latency;
  trace.result.software_path = true;
  return trace;
}

}  // namespace sf::core
