// Region capacity planning and the CapEx comparison (§2.3, §4.2).
//
// The paper's arithmetic: a 15 Tbps region at a 50% water level with 1:1
// disaster-tolerance backup needs 600 XGW-x86 boxes at O($10K) each —
// O($10M); Sailfish replaces that with ~10 XGW-H (same unit price as an
// x86 box) plus ~4 XGW-x86 for fallback, "reducing the total hardware
// acquisition cost by more than 90%". This module reproduces that sizing
// from first principles: given a traffic target and a table inventory, it
// computes both fleets, their costs, and the ECMP-imposed cluster counts.

#pragma once

#include <cstddef>

namespace sf::core {

struct RegionRequirements {
  double traffic_bps = 15e12;
  /// Fraction of a node's capacity usable in production (§2.3: "50%
  /// water level").
  double water_level = 0.5;
  /// 1:1 hot backup for disaster tolerance.
  bool backup_1_to_1 = true;
  /// Route + mapping entries the region must carry.
  std::size_t table_entries = 2'000'000;
  /// Traffic share that must stay on the software path (SNAT & long
  /// tail) even in the Sailfish design.
  double software_share = 0.0002;
};

struct NodeEconomics {
  double x86_capacity_bps = 100e9;     // one XGW-x86 box
  double xgwh_capacity_bps = 3.2e12;   // one folded XGW-H
  /// "Roughly the same unit price" (§3.1): both default to $10K.
  double x86_unit_cost = 10'000;
  double xgwh_unit_cost = 10'000;
  /// Entries one XGW-H holds after compression (Table 3 leaves ~2/3 of
  /// SRAM free at 2M entries; 2M per gateway is the calibrated default).
  std::size_t xgwh_entries = 2'000'000;
  /// Commercial ECMP next-hop cap (§2.3) — bounds nodes per cluster.
  unsigned max_ecmp_next_hops = 64;
};

struct FleetPlan {
  std::size_t nodes = 0;      // including backups
  std::size_t clusters = 0;   // ECMP groups needed
  double cost = 0;
};

struct CapacityPlan {
  FleetPlan x86_only;           // the pre-Sailfish design
  FleetPlan sailfish_hardware;  // XGW-H fleet
  FleetPlan sailfish_software;  // fallback XGW-x86 fleet
  double sailfish_cost = 0;     // hardware + software
  double cost_reduction = 0;    // 1 - sailfish/x86_only
};

/// Sizes both designs for the same requirements.
CapacityPlan plan_region(const RegionRequirements& requirements,
                         const NodeEconomics& economics);

}  // namespace sf::core
