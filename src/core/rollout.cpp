#include "core/rollout.hpp"

#include <cmath>
#include <stdexcept>

namespace sf::core {

double fleet_install_seconds(std::size_t nodes, std::size_t entries,
                             double entries_per_second_per_node,
                             std::size_t parallel_streams) {
  if (nodes == 0 || entries_per_second_per_node <= 0 ||
      parallel_streams == 0) {
    throw std::invalid_argument("fleet_install_seconds: bad arguments");
  }
  const double per_node =
      static_cast<double>(entries) / entries_per_second_per_node;
  const double waves = std::ceil(static_cast<double>(nodes) /
                                 static_cast<double>(parallel_streams));
  return per_node * waves;
}

std::vector<RolloutManager::StageResult> RolloutManager::admit_traffic(
    SailfishRegion& region, std::span<const workload::Flow> flows,
    double total_bps) const {
  std::vector<StageResult> stages;
  for (std::size_t step = 0; step < config_.admission_steps.size(); ++step) {
    const double fraction = config_.admission_steps[step];
    StageResult stage;
    stage.fraction = fraction;
    stage.offered_bps = total_bps * fraction;
    const auto report = region.simulate_interval(
        flows, stage.offered_bps, /*jitter_key=*/step + 1);
    stage.drop_rate = report.drop_rate;
    stage.passed = report.drop_rate <= config_.max_drop_rate;
    stages.push_back(stage);
    if (!stage.passed) break;  // §6.1: stop and alert, don't push on
  }
  return stages;
}

bool RolloutManager::fully_admitted(const std::vector<StageResult>& stages,
                                    const Config& config) {
  return stages.size() == config.admission_steps.size() &&
         !stages.empty() && stages.back().passed;
}

}  // namespace sf::core
