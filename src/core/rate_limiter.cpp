#include "core/rate_limiter.hpp"

#include <algorithm>
#include <stdexcept>

namespace sf::core {

TokenBucket::TokenBucket(double rate, double burst)
    : rate_(rate), burst_(burst), tokens_(burst) {
  if (rate <= 0 || burst <= 0) {
    throw std::invalid_argument("token bucket needs positive rate and burst");
  }
}

void TokenBucket::refill(double now) {
  if (now > last_refill_) {
    tokens_ = std::min(burst_, tokens_ + (now - last_refill_) * rate_);
    last_refill_ = now;
  }
}

bool TokenBucket::try_consume(double amount, double now) {
  refill(now);
  if (tokens_ >= amount) {
    tokens_ -= amount;
    ++accepted_;
    return true;
  }
  ++rejected_;
  return false;
}

double TokenBucket::available(double now) {
  refill(now);
  return tokens_;
}

}  // namespace sf::core
