#include "core/capacity_planner.hpp"

#include <cmath>
#include <stdexcept>

namespace sf::core {
namespace {

std::size_t ceil_div_positive(double numerator, double denominator) {
  return static_cast<std::size_t>(std::ceil(numerator / denominator));
}

FleetPlan size_fleet(double traffic_bps, double node_bps,
                     double water_level, bool backup,
                     std::size_t min_nodes, double unit_cost,
                     unsigned max_ecmp) {
  FleetPlan plan;
  std::size_t primaries = std::max(
      min_nodes, ceil_div_positive(traffic_bps, node_bps * water_level));
  plan.nodes = backup ? primaries * 2 : primaries;
  // §2.3: the commercial next-hop limit partitions the *serving* set
  // into multiple clusters behind different load balancers.
  plan.clusters = std::max<std::size_t>(
      1, ceil_div_positive(static_cast<double>(primaries),
                           static_cast<double>(max_ecmp)));
  plan.cost = static_cast<double>(plan.nodes) * unit_cost;
  return plan;
}

}  // namespace

CapacityPlan plan_region(const RegionRequirements& requirements,
                         const NodeEconomics& economics) {
  if (requirements.traffic_bps <= 0 || requirements.water_level <= 0 ||
      requirements.water_level > 1) {
    throw std::invalid_argument("plan_region: bad requirements");
  }

  CapacityPlan plan;

  // The pre-Sailfish design: every bit crosses an XGW-x86.
  plan.x86_only = size_fleet(
      requirements.traffic_bps, economics.x86_capacity_bps,
      requirements.water_level, requirements.backup_1_to_1, 1,
      economics.x86_unit_cost, economics.max_ecmp_next_hops);

  // Sailfish hardware: sized by traffic AND by table capacity (the
  // entries a cluster must hold bound how far splitting can go, §4.4).
  const std::size_t by_traffic = ceil_div_positive(
      requirements.traffic_bps,
      economics.xgwh_capacity_bps * requirements.water_level);
  const std::size_t entry_clusters = ceil_div_positive(
      static_cast<double>(requirements.table_entries),
      static_cast<double>(economics.xgwh_entries));
  const std::size_t hw_primaries = std::max(by_traffic, entry_clusters);
  plan.sailfish_hardware = size_fleet(
      static_cast<double>(hw_primaries) * economics.xgwh_capacity_bps *
          requirements.water_level,
      economics.xgwh_capacity_bps, requirements.water_level,
      requirements.backup_1_to_1, hw_primaries, economics.xgwh_unit_cost,
      economics.max_ecmp_next_hops);

  // Sailfish software: only the fallback share crosses x86.
  plan.sailfish_software = size_fleet(
      requirements.traffic_bps * requirements.software_share,
      economics.x86_capacity_bps, requirements.water_level,
      requirements.backup_1_to_1, 2, economics.x86_unit_cost,
      economics.max_ecmp_next_hops);

  plan.sailfish_cost =
      plan.sailfish_hardware.cost + plan.sailfish_software.cost;
  plan.cost_reduction = 1.0 - plan.sailfish_cost / plan.x86_only.cost;
  return plan;
}

}  // namespace sf::core
