#include "core/table_sharing.hpp"

#include <stdexcept>

namespace sf::core {

std::string to_string(Placement placement) {
  return placement == Placement::kHardware ? "XGW-H" : "XGW-x86";
}

Placement decide_placement(const ServiceProfile& profile,
                           const SharingPolicy& policy) {
  if (profile.stateful) return Placement::kSoftware;
  if (profile.entries > policy.max_entries) return Placement::kSoftware;
  if (profile.update_rate_per_s > policy.max_update_rate_per_s) {
    return Placement::kSoftware;
  }
  if (profile.stable_days < policy.min_stable_days) {
    return Placement::kSoftware;
  }
  if (profile.traffic_share < policy.min_traffic_share) {
    return Placement::kSoftware;
  }
  return Placement::kHardware;
}

std::vector<Placement> decide_catalog(std::span<const ServiceProfile> catalog,
                                      const SharingPolicy& policy) {
  std::vector<Placement> placements;
  placements.reserve(catalog.size());
  for (const ServiceProfile& profile : catalog) {
    placements.push_back(decide_placement(profile, policy));
  }
  return placements;
}

double software_traffic_share(std::span<const ServiceProfile> catalog,
                              std::span<const Placement> placements) {
  if (catalog.size() != placements.size()) {
    throw std::invalid_argument("catalog/placement size mismatch");
  }
  double software = 0;
  double total = 0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    total += catalog[i].traffic_share;
    if (placements[i] == Placement::kSoftware) {
      software += catalog[i].traffic_share;
    }
  }
  return total > 0 ? software / total : 0;
}

std::vector<ServiceProfile> default_service_catalog() {
  // Traffic shares reflect the paper's 80/20 observation: the two major
  // forwarding services dominate; the long tail of services is thin.
  return {
      // VPC routing covers both major tables (VXLAN routing + VM-NC).
      {"vpc_routing_east_west", 0.912, 2.0, 2'000'000, false, 900},
      {"cross_region_tunnels", 0.061, 0.5, 120'000, false, 500},
      {"idc_cen_access", 0.024, 0.5, 80'000, false, 420},
      {"qos_acl_metering", 0.0021, 1.0, 150'000, false, 300},
      {"snat_internet_access", 0.00052, 800.0, 100'000'000, true, 700},
      {"festival_lb_steering", 0.00021, 200.0, 40'000, false, 3},
      {"newborn_service_beta", 0.00006, 20.0, 5'000, false, 10},
      {"vpn_long_tail", 0.00004, 80.0, 2'000'000, true, 200},
  };
}

}  // namespace sf::core
