// Per-packet path tracing — the operational diagnosis flow the paper's
// operators run with Vtrace [17] and probe packets (§6.1): for one packet,
// record every hop decision across the region so a drop or misroute can
// be localized (which cluster, which device, which pipeline pass, which
// table verdict, hardware or software path).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/region.hpp"

namespace sf::core {

struct TraceHop {
  std::string where;    // "vni-director", "cluster 2 ecmp", "xgw-h", ...
  std::string detail;   // human-readable decision
  /// Counter context at this hop, read from the device's registry *after*
  /// the packet passed — e.g. how many packets/drops that gateway has
  /// seen, so one trace shows whether the hop is an outlier or a pattern.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

struct PathTrace {
  std::vector<TraceHop> hops;
  dataplane::Verdict result;

  std::string to_string() const;
};

/// Runs one packet through the region, collecting the hop-by-hop story.
/// Functionally identical to region.process(); the trace is assembled
/// from the same decisions.
PathTrace trace_packet(SailfishRegion& region,
                       const net::OverlayPacket& packet, double now = 0);

}  // namespace sf::core
