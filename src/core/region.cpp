#include "core/region.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "net/hash.hpp"

namespace sf::core {

SailfishRegion::SailfishRegion(Config config)
    : config_(config),
      controller_(config.controller),
      x86_ecmp_(config.x86_ecmp_max_next_hops) {
  if (config_.x86_nodes == 0) {
    throw std::invalid_argument("a region needs at least one XGW-x86");
  }
  for (std::size_t i = 0; i < config_.x86_nodes; ++i) {
    x86::XgwX86::Config cfg = config_.x86_template;
    cfg.device_ip =
        net::Ipv4Addr(config_.x86_template.device_ip.value() +
                      static_cast<std::uint32_t>(i));
    x86_nodes_.push_back(std::make_unique<x86::XgwX86>(cfg));
    x86_ecmp_.add(static_cast<std::uint32_t>(i));
  }

  // Software holds the complete tables: mirror every controller op to
  // every node through the shared table interface. DPU nodes receive the
  // same fan-out as an *invalidation* (a mutated tenant's placed flows
  // evict — their cached verdicts may be stale), and the placer forgets
  // those placements so the flows can re-promote against fresh state.
  controller_.set_mirror([this](const dataplane::TableOp& op) {
    for (auto& node : x86_nodes_) dataplane::apply(*node, op);
    for (auto& node : dpu_nodes_) dataplane::apply(*node, op);
    if (placer_) placer_->evict_vni(op.vni);
  });

  recovery_ = std::make_unique<cluster::DisasterRecovery>(&controller_,
                                                          config_.recovery);

  engine_ = std::make_unique<dataplane::ShardEngine>(config_.interval_engine);

  registry_ = std::make_unique<telemetry::Registry>();
  // One resolved set of runtime gates for the whole construction: the
  // explicit per-region override when present, else the process latch.
  const RuntimeConfig runtime =
      config_.runtime ? *config_.runtime : RuntimeConfig::process();
  if (config_.enable_guard && runtime.guard_enabled) {
    // Guard shards follow the interval engine so the interval pre-pass
    // mutates each shard's ladder state from exactly one worker.
    guard_ = std::make_unique<guard::TenantGuard>(
        config_.guard, config_.interval_engine.shards);
    ctr_guard_admitted_ = &registry_->counter("region.guard.admitted");
    ctr_guard_established_ =
        &registry_->counter("region.guard.established_served");
    ctr_guard_shed_new_flow_ =
        &registry_->counter("region.guard.shed_new_flow");
    ctr_guard_shed_tenant_ = &registry_->counter("region.guard.shed_tenant");
    ctr_guard_escalations_ =
        &registry_->counter("region.guard.tier_escalations");
    ctr_guard_deescalations_ =
        &registry_->counter("region.guard.tier_deescalations");
    ctr_guard_shed_upps_sum_ =
        &registry_->counter("region.guard.shed_upps_sum");
  }
  if (config_.enable_punt_path && runtime.guard_enabled) {
    punt_queue_ = std::make_unique<guard::PuntQueue>(config_.punt_queue);
    ctr_guard_punted_ = &registry_->counter("region.guard.punted");
    ctr_guard_punt_queue_full_ =
        &registry_->counter("region.guard.punt_queue_full");
  }
  if (config_.enable_dpu && runtime.dpu_enabled) {
    const std::size_t dpu_count = std::max<std::size_t>(1, config_.dpu_nodes);
    for (std::size_t i = 0; i < dpu_count; ++i) {
      dpu::XgwDpu::Config cfg = config_.dpu_template;
      cfg.device_ip =
          net::Ipv4Addr(config_.dpu_template.device_ip.value() +
                        static_cast<std::uint32_t>(i));
      dpu_nodes_.push_back(std::make_unique<dpu::XgwDpu>(cfg));
    }
    // Placer shards follow the interval engine (like the guard) so the
    // sketch pre-pass mutates each shard's tracker from exactly one
    // worker.
    placer_ = std::make_unique<dpu::TierPlacer>(
        config_.tier_placer, config_.interval_engine.shards, dpu_count);
    ctr_dpu_served_ = &registry_->counter("region.dpu.served");
    ctr_dpu_fallback_ = &registry_->counter("region.dpu.fallback");
    ctr_dpu_promotions_ = &registry_->counter("region.dpu.promotions");
    ctr_dpu_demotions_ = &registry_->counter("region.dpu.demotions");
    ctr_dpu_pps_sum_ = &registry_->counter("region.dpu.pps_sum");
  }
  ctr_packets_ = &registry_->counter("region.packets");
  ctr_hw_forwarded_ = &registry_->counter("region.hw_forwarded");
  ctr_hw_tunnel_ = &registry_->counter("region.hw_tunnel");
  ctr_sw_forwarded_ = &registry_->counter("region.sw_forwarded");
  ctr_sw_snat_ = &registry_->counter("region.sw_snat");
  ctr_dropped_ = &registry_->counter("region.dropped");
  ctr_intervals_ = &registry_->counter("region.intervals");
  ctr_offered_bps_sum_ = &registry_->counter("region.offered_bps_sum");
  ctr_offered_pps_sum_ = &registry_->counter("region.offered_pps_sum");
  ctr_dropped_upps_sum_ = &registry_->counter("region.dropped_upps_sum");
  ctr_fallback_bps_sum_ = &registry_->counter("region.fallback_bps_sum");
  ctr_pipe1_bps_sum_ = &registry_->counter("region.pipe1_bps_sum");
  ctr_pipe3_bps_sum_ = &registry_->counter("region.pipe3_bps_sum");
}

std::size_t SailfishRegion::install_topology(
    const workload::RegionTopology& region) {
  return controller_.install_topology(region);
}

x86::XgwX86& SailfishRegion::x86_for_flow(const net::FiveTuple& tuple) {
  auto member = x86_ecmp_.pick(tuple);
  return *x86_nodes_[member.value_or(0)];
}

const x86::XgwX86& SailfishRegion::x86_for_flow(
    const net::FiveTuple& tuple) const {
  auto member = x86_ecmp_.pick(tuple);
  return *x86_nodes_[member.value_or(0)];
}

std::size_t SailfishRegion::x86_node_index_for(
    const net::FiveTuple& tuple) const {
  return x86_ecmp_.pick(tuple).value_or(0);
}

std::pair<std::size_t, std::size_t> SailfishRegion::punt_lane_for(
    const net::OverlayPacket& packet) const {
  const auto cluster_id = controller_.cluster_for(packet.vni);
  if (!cluster_id) return {0, 0};
  const std::size_t cluster = *cluster_id;
  const auto device = controller_.cluster(cluster).pick_device(packet.inner);
  return {cluster, device.value_or(0)};
}

dataplane::Verdict SailfishRegion::finish_software(x86::X86Result sw,
                                                   double extra_latency_us) {
  dataplane::Verdict verdict = std::move(static_cast<dataplane::Verdict&>(sw));
  verdict.latency_us += extra_latency_us;
  verdict.software_path = true;
  switch (verdict.action) {
    case dataplane::Action::kForwardToNc:
    case dataplane::Action::kForwardTunnel:
      ctr_sw_forwarded_->add();
      break;
    case dataplane::Action::kSnatToInternet:
      ctr_sw_snat_->add();
      break;
    case dataplane::Action::kDrop:
      ctr_dropped_->add();
      count_drop_reason(verdict.drop_reason);
      break;
    default:
      break;
  }
  return verdict;
}

dataplane::Verdict SailfishRegion::punt_to_x86(
    const net::OverlayPacket& packet, double now, double base_latency_us,
    bool allow_cache) {
  const auto [cluster, device] = punt_lane_for(packet);
  const guard::PuntQueue::Admit admit =
      punt_queue_->offer(cluster, device, now);
  if (!admit.admitted) {
    // Queue-full backpressure is a *typed* drop, never silent loss.
    ctr_guard_punt_queue_full_->add();
    ctr_dropped_->add();
    count_drop_reason(dataplane::DropReason::kPuntQueueFull);
    return dataplane::Verdict::drop(dataplane::DropReason::kPuntQueueFull);
  }
  ctr_guard_punted_->add();
  // Each hardware device drains to a fixed paired XGW-x86 (static
  // pairing keeps the punt lane's destination stable; contrast with the
  // legacy tuple-ECMP fallback steering).
  const std::size_t devices_per_cluster =
      std::max<std::size_t>(1, config_.controller.cluster_template
                                       .primary_devices +
                                   config_.controller.cluster_template
                                       .backup_devices);
  x86::XgwX86& node =
      *x86_nodes_[(cluster * devices_per_cluster + device) %
                  x86_nodes_.size()];
  x86::X86Result sw = allow_cache ? node.forward(packet, now)
                                  : node.forward_punted(packet, now);
  return finish_software(std::move(sw),
                         base_latency_us + admit.queue_delay_us);
}

std::optional<dataplane::Verdict> SailfishRegion::try_dpu(
    const net::OverlayPacket& packet, double now, double extra_latency_us) {
  if (dpu_nodes_.empty()) return std::nullopt;
  const auto node =
      placer_->placement(telemetry::FlowKey{packet.vni, packet.inner});
  if (!node) return std::nullopt;
  dataplane::Verdict verdict = dpu_nodes_[*node]->process(packet, now);
  if (verdict.action == dataplane::Action::kFallbackToX86) {
    // Placed, but the box lost the entry (failure) — keep going to x86.
    ctr_dpu_fallback_->add();
    return std::nullopt;
  }
  verdict.latency_us += extra_latency_us;
  ctr_dpu_served_->add();
  return verdict;
}

dataplane::Verdict SailfishRegion::serve_software_tier(
    const net::OverlayPacket& packet, double now) {
  if (auto verdict = try_dpu(packet, now, 0.0)) return *verdict;
  if (punt_queue_) {
    return punt_to_x86(packet, now, 0.0, /*allow_cache=*/true);
  }
  x86::XgwX86& node = x86_for_flow(packet.inner);
  return finish_software(node.forward(packet, now), 0.0);
}

void SailfishRegion::set_dpu_failed(std::size_t node, bool failed) {
  dpu_nodes_.at(node)->set_failed(failed);
  if (failed) placer_->evict_node(node);
}

void SailfishRegion::publish_pressure_gauges(double now) {
  if (punt_queue_) {
    registry_->gauge("region.punt_queue.occupancy")
        .set(punt_queue_->max_occupancy(now));
    registry_->gauge("region.punt_queue.high_watermark")
        .set(punt_queue_->stats().high_watermark);
  }
  double cache_occupied = 0;
  double cache_watermark = 0;
  for (const auto& node : x86_nodes_) {
    const dataplane::FlowCacheStats& stats = node->flow_cache_stats();
    cache_occupied += static_cast<double>(stats.occupied);
    cache_watermark += static_cast<double>(stats.high_watermark);
  }
  registry_->gauge("region.flow_cache.occupied").set(cache_occupied);
  registry_->gauge("region.flow_cache.high_watermark").set(cache_watermark);
  if (!dpu_nodes_.empty()) {
    double entries = 0;
    double capacity = 0;
    for (const auto& node : dpu_nodes_) {
      entries += static_cast<double>(node->flow_count());
      capacity += static_cast<double>(node->config().flow_table_entries);
    }
    registry_->gauge("region.dpu.flow_entries").set(entries);
    registry_->gauge("region.dpu.table_occupancy")
        .set(capacity > 0 ? entries / capacity : 0);
  }
  if (const asic::PlacementEngine* engine = controller_.placement_engine()) {
    const asic::Placement& placement = engine->placement();
    const asic::ChipConfig& chip = placement.chip();
    for (unsigned p = 0; p < chip.pipelines; ++p) {
      const std::string prefix =
          "region.placement.pipe" + std::to_string(p);
      registry_->gauge(prefix + ".sram_words")
          .set(static_cast<double>(
              placement.pipe_units(p, asic::MemoryKind::kSram)));
      registry_->gauge(prefix + ".tcam_slices")
          .set(static_cast<double>(
              placement.pipe_units(p, asic::MemoryKind::kTcam)));
    }
    const asic::PlacementStats& stats = placement.stats();
    registry_->gauge("region.placement.spill_segments")
        .set(static_cast<double>(placement.spill_segment_count()));
    registry_->gauge("region.placement.delta_applies")
        .set(static_cast<double>(stats.delta_applies));
    registry_->gauge("region.placement.full_recomputes")
        .set(static_cast<double>(stats.full_recomputes));
    registry_->gauge("region.placement.feasible")
        .set(placement.feasible() ? 1.0 : 0.0);
  }
}

dataplane::Verdict SailfishRegion::process(const net::OverlayPacket& packet,
                                           double now) {
  ctr_packets_->add();

  // Software-tier tenants (overflow-admitted) never touch XGW-H: the VNI
  // director does not know them, so the whole region path is DPU-then-x86.
  // The guard still meters them below like everyone else.
  const bool software_tier = controller_.is_overflow(packet.vni);

  // Tenant guard: meter the packet before any gateway sees it.
  if (guard_ && guard_->any_limits()) {
    const guard::TenantGuard::Stats before = guard_->stats();
    const guard::TenantGuard::PacketDecision decision = guard_->admit_packet(
        packet.vni, packet.wire_size(), now, [&] {
          const auto cluster_id = controller_.cluster_for(packet.vni);
          if (!cluster_id) return false;
          return controller_.cluster(*cluster_id).flow_established(packet);
        });
    const guard::TenantGuard::Stats& after = guard_->stats();
    if (after.escalations > before.escalations) ctr_guard_escalations_->add();
    if (after.deescalations > before.deescalations) {
      ctr_guard_deescalations_->add();
    }
    if (decision.admit) {
      if (decision.tier == guard::Tier::kShedNewFlows) {
        ctr_guard_established_->add();
      } else {
        ctr_guard_admitted_->add();
      }
    } else if (decision.punt && punt_queue_) {
      // Tier-1 non-established packet: serve via the punt path. A placed
      // DPU entry absorbs it first — the elephant's spillover never even
      // queues. The x86 cache is off-limits for these — meter-degraded
      // spillover must never earn fast-path entries.
      if (auto verdict = try_dpu(packet, now, 0.0)) return *verdict;
      return punt_to_x86(packet, now, 0.0, /*allow_cache=*/false);
    } else {
      const dataplane::DropReason reason =
          decision.punt ? dataplane::DropReason::kTenantNewFlowShed
                        : decision.drop_reason;
      if (reason == dataplane::DropReason::kTenantShed) {
        ctr_guard_shed_tenant_->add();
      } else {
        ctr_guard_shed_new_flow_->add();
      }
      ctr_dropped_->add();
      count_drop_reason(reason);
      return dataplane::Verdict::drop(reason);
    }
  }

  if (software_tier) return serve_software_tier(packet, now);

  xgwh::ForwardResult hw = controller_.process(packet, now);
  if (hw.action != dataplane::Action::kFallbackToX86) {
    switch (hw.action) {
      case dataplane::Action::kForwardToNc:
        ctr_hw_forwarded_->add();
        break;
      case dataplane::Action::kForwardTunnel:
        ctr_hw_tunnel_->add();
        break;
      case dataplane::Action::kDrop:
        ctr_dropped_->add();
        count_drop_reason(hw.drop_reason);
        break;
      default:
        break;
    }
    return std::move(static_cast<dataplane::Verdict&>(hw));
  }

  // Fallback traffic (SNAT, table-placement misses, fallback-metered
  // flows): a placed DPU entry serves it before any x86 involvement; with
  // a punt path configured the rest crosses the bounded per-device punt
  // queue toward the paired node; normal fallback may use the x86 flow
  // cache (it is steady-state traffic, not overload spillover).
  if (auto verdict = try_dpu(packet, now, hw.latency_us)) return *verdict;
  if (punt_queue_) {
    return punt_to_x86(packet, now, hw.latency_us, /*allow_cache=*/true);
  }

  // Legacy software path: the XGW-H rewrote the outer header toward the
  // fleet VIP; ECMP picks the node, which processes the *original*
  // overlay packet (outer headers are re-derived there).
  x86::XgwX86& node = x86_for_flow(packet.inner);
  return finish_software(node.forward(packet, now), hw.latency_us);
}

void SailfishRegion::count_drop_reason(dataplane::DropReason reason) {
  // Per-reason drop accounting: drops are rare, so the by-name lookup is
  // fine here, and snapshot deltas of "region.drop.<reason>" measure what
  // was lost inside a failover window and why.
  registry_->counter("region.drop." + dataplane::to_string(reason)).add();
}

SailfishRegion::IntervalReport SailfishRegion::simulate_interval(
    std::span<const workload::Flow> flows, double total_bps,
    std::uint64_t jitter_key) const {
  IntervalReport report;
  report.offered_bps = total_bps;

  const std::size_t clusters = controller_.cluster_count();
  const std::size_t nodes = x86_nodes_.size();

  // ---- Guard pre-pass: per-tenant metering + degradation ladder -----------
  // Runs only when a guard with limits exists; sharded by mix64(vni) — the
  // same pure-hash partition the guard's state uses — so each shard's
  // ladder is stepped by exactly one worker and results are byte-
  // identical at any thread count. Produces each tenant's admit fraction
  // for this interval; everything downstream sees the post-shed rates.
  std::map<net::Vni, double> guard_admit;
  if (guard_ && guard_->any_limits()) {
    const std::size_t shard_count = guard_->shard_count();
    std::vector<std::vector<guard::TenantGuard::TenantInterval>>
        shard_tenants(shard_count);
    std::vector<std::map<net::Vni, double>> shard_fractions(shard_count);
    const telemetry::Snapshot guard_stats = engine_->run_sharded(
        flows.size(),
        [&flows](std::size_t i) {
          return static_cast<std::size_t>(net::mix64(flows[i].vni));
        },
        [&](std::size_t shard, std::span<const std::uint32_t> indices,
            telemetry::Registry& registry) {
          // Offered rates of this shard's tenants (ordered map: the
          // reduce below walks tenants in one fixed order).
          std::map<net::Vni, guard::TenantGuard::Offered> offered;
          for (const std::uint32_t i : indices) {
            const workload::Flow& flow = flows[i];
            if (!guard_->metered(flow.vni)) continue;
            guard::TenantGuard::Offered& load = offered[flow.vni];
            const double bps = flow.weight * total_bps;
            load.bps += bps;
            load.pps += bps / 8.0 / static_cast<double>(flow.packet_size);
          }
          shard_fractions[shard] = guard_->interval_step(
              shard, offered, shard_tenants[shard], registry);
        });
    // Sequential merge in shard order, then ascending VNI overall.
    for (std::size_t s = 0; s < shard_count; ++s) {
      for (const auto& [vni, fraction] : shard_fractions[s]) {
        guard_admit[vni] = fraction;
      }
      report.guard_tenants.insert(report.guard_tenants.end(),
                                  shard_tenants[s].begin(),
                                  shard_tenants[s].end());
    }
    std::sort(report.guard_tenants.begin(), report.guard_tenants.end(),
              [](const auto& a, const auto& b) { return a.vni < b.vni; });
    for (const auto& tenant : report.guard_tenants) {
      report.guard_shed_pps += tenant.shed_pps;
    }
    for (const auto& [name, value] : guard_stats.counters) {
      registry_->counter("region." + name).add(value);
    }
  }

  // ---- Tier-placement pass: sketch update + promotion/demotion ------------
  // Only when the DPU tier is built. The observe step is sharded by
  // mix64(vni) — each shard's tracker is touched by exactly one worker —
  // and the apply step runs sequentially over ordered state, so the
  // placement after any interval is byte-identical at any thread count.
  const bool dpu_active = !dpu_nodes_.empty();
  const bool overflow_active = controller_.overflow_count() > 0;
  if (dpu_active) {
    engine_->run_sharded(
        flows.size(),
        [&flows](std::size_t i) {
          return static_cast<std::size_t>(net::mix64(flows[i].vni));
        },
        [&](std::size_t shard, std::span<const std::uint32_t> indices,
            telemetry::Registry&) {
          placer_->begin_interval(shard);
          for (const std::uint32_t i : indices) {
            const workload::Flow& flow = flows[i];
            if (flow.scope == tables::RouteScope::kInternet) continue;
            if (!controller_.is_overflow(flow.vni)) continue;
            const double bps = flow.weight * total_bps;
            const double pps =
                bps / 8.0 / static_cast<double>(flow.packet_size);
            placer_->observe(
                shard, telemetry::FlowKey{flow.vni, flow.tuple},
                static_cast<std::uint64_t>(pps));
          }
        });
    const dpu::TierPlacer::ApplyResult placed = placer_->apply(
        [&](const telemetry::FlowKey& key, std::size_t node) {
          // Interval-model entries carry a synthetic pre-resolved verdict;
          // only placement (and hence capacity/latency) matters here. The
          // functional path installs real verdicts through the same API.
          return dataplane::succeeded(dpu_nodes_[node]->install_flow(
              key.vni, key.tuple,
              dpu::XgwDpu::FlowEntry{dataplane::Action::kForwardToNc,
                                     net::IpAddr{}}));
        },
        [&](const telemetry::FlowKey& key, std::size_t node) {
          dpu_nodes_[node]->remove_flow(key.vni, key.tuple);
        });
    report.dpu_promotions = placed.promoted;
    report.dpu_demotions = placed.demoted;
    ctr_dpu_promotions_->add(placed.promoted);
    ctr_dpu_demotions_->add(placed.demoted);
  }

  // ---- Phase A: hash-sharded parallel classification ----------------------
  // Each flow is classified exactly once, by the shard that owns its
  // steering hash, into its private slot; per-shard registries count what
  // each shard saw and merge through the snapshot machinery.
  enum class Kind : std::uint8_t {
    kHardware,
    kSoftware,
    kUnknownVni,
    kDpu,          // software-tier flow placed on a DPU node
    kOverflowX86,  // software-tier flow crossing to x86
  };
  struct Classified {
    double pps = 0;
    double bps = 0;
    std::uint32_t cluster = 0;
    std::uint32_t node = 0;
    std::uint8_t pipe = 0;
    Kind kind = Kind::kUnknownVni;
  };
  std::vector<Classified> classified(flows.size());

  const auto owner = [&flows](std::size_t i) -> std::size_t {
    const workload::Flow& flow = flows[i];
    // The keys the dataplane already steers by: the RSS tuple hash on the
    // software path, the VNI hash on the hardware path.
    return flow.scope == tables::RouteScope::kInternet
               ? static_cast<std::size_t>(flow.tuple.hash())
               : static_cast<std::size_t>(net::mix64(flow.vni));
  };
  const telemetry::Snapshot engine_stats = engine_->run_sharded(
      flows.size(), owner,
      [&](std::size_t, std::span<const std::uint32_t> indices,
          telemetry::Registry& registry) {
        telemetry::Counter& seen = registry.counter("engine.flows");
        telemetry::Counter& hw = registry.counter("engine.hw_flows");
        telemetry::Counter& sw = registry.counter("engine.sw_flows");
        telemetry::Counter& unknown =
            registry.counter("engine.unknown_vni_flows");
        for (const std::uint32_t i : indices) {
          const workload::Flow& flow = flows[i];
          Classified& out = classified[i];
          out.bps = flow.weight * total_bps;
          out.pps = out.bps / 8.0 / static_cast<double>(flow.packet_size);
          // Guard: downstream sees only the admitted share; the shed
          // share is accounted as guard drops in the reduce. (Read-only
          // lookup — the map was sealed before this pass.)
          if (!guard_admit.empty()) {
            if (auto it = guard_admit.find(flow.vni);
                it != guard_admit.end()) {
              out.bps *= it->second;
              out.pps *= it->second;
            }
          }
          seen.add();
          if (flow.scope == tables::RouteScope::kInternet) {
            out.kind = Kind::kSoftware;
            out.node = x86_ecmp_.pick(flow.tuple).value_or(0);
            sw.add();
            continue;
          }
          const auto cluster_id = controller_.cluster_for(flow.vni);
          if (!cluster_id) {
            // Software-tier tenants are *admitted*, just not in hardware:
            // a placed elephant rides its DPU entry, the rest crosses to
            // x86. Counters register lazily so runs without overflow
            // tenants keep byte-identical snapshots.
            if (controller_.is_overflow(flow.vni)) {
              if (dpu_active) {
                if (const auto node = placer_->placement(
                        telemetry::FlowKey{flow.vni, flow.tuple})) {
                  out.kind = Kind::kDpu;
                  out.node = static_cast<std::uint32_t>(*node);
                  registry.counter("engine.dpu_flows").add();
                  continue;
                }
              }
              out.kind = Kind::kOverflowX86;
              out.node = x86_ecmp_.pick(flow.tuple).value_or(0);
              registry.counter("engine.overflow_x86_flows").add();
              continue;
            }
            out.kind = Kind::kUnknownVni;
            unknown.add();
            continue;
          }
          out.kind = Kind::kHardware;
          out.cluster = *cluster_id;
          // Loopback-pipe accounting: the VNI's shard picks pipe 1 or 3
          // (Fig. 14).
          out.pipe = static_cast<std::uint8_t>(
              1 + 2 * xgwh::XgwH::shard_of_vni(flow.vni));
          hw.add();
        }
      });

  // ---- Phase B: parallel accumulation over disjoint accumulators ----------
  // Each task owns its outputs outright and walks the classified flows in
  // original index order, so every floating-point sum reproduces the
  // sequential order exactly — parallelism never reassociates an addition.
  struct DeviceLoad {
    double pps = 0;
    double bps = 0;
  };
  std::vector<std::vector<DeviceLoad>> hw_load(clusters);
  std::vector<std::size_t> live_devices(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    hw_load[c].resize(controller_.cluster(c).device_count());
    live_devices[c] =
        std::max<std::size_t>(1, controller_.cluster(c).live_device_count());
  }

  // Overflow spillover toward x86 crosses the punt lanes as a fluid
  // queue: offered beyond the drain capacity drops (the interval-model
  // analog of kPuntQueueFull), and the occupancy fraction reports how
  // deep the lanes run. Computed sequentially before Phase B because the
  // per-node tasks need the admitted scale.
  double overflow_x86_offered_pps = 0;
  if (overflow_active) {
    for (const Classified& f : classified) {
      if (f.kind == Kind::kOverflowX86) overflow_x86_offered_pps += f.pps;
    }
  }
  double overflow_scale = 1.0;
  if (overflow_active && punt_queue_) {
    const double drain_pps =
        config_.punt_queue.drain_pps * static_cast<double>(nodes);
    if (overflow_x86_offered_pps > drain_pps && drain_pps > 0) {
      overflow_scale = drain_pps / overflow_x86_offered_pps;
    }
    report.punt_queue_occupancy =
        drain_pps > 0 ? std::min(1.0, overflow_x86_offered_pps / drain_pps)
                      : 1.0;
  }

  double offered_pps = 0;
  double fallback_bps = 0;
  double fallback_pps = 0;
  double unknown_vni_pps = 0;
  std::array<double, 4> shard_pipe_bps{};
  std::vector<x86::IntervalReport> node_reports(nodes);
  std::vector<char> node_active(nodes, 0);
  std::vector<DeviceLoad> dpu_load(dpu_nodes_.size());

  std::vector<std::function<void()>> tasks;
  tasks.reserve(1 + clusters + nodes + dpu_nodes_.size());
  // Scalar totals: one pass over all flows in index order.
  tasks.push_back([&] {
    for (const Classified& f : classified) {
      offered_pps += f.pps;
      switch (f.kind) {
        case Kind::kSoftware:
          fallback_bps += f.bps;
          fallback_pps += f.pps;
          break;
        case Kind::kUnknownVni:
          unknown_vni_pps += f.pps;
          break;
        case Kind::kHardware:
          shard_pipe_bps[f.pipe] += f.bps;
          break;
        case Kind::kDpu:
        case Kind::kOverflowX86:
          break;  // summed by the DPU tasks / the fluid-lane pass above
      }
    }
  });
  // Per-device offered load on the hardware path: one task per cluster.
  // Each Flow aggregates a tenant's many real 5-tuples, so ECMP spreads
  // it near-uniformly over the cluster's live devices (device-level bins
  // are huge — §5.2's balls-into-bins argument; contrast with the
  // per-core lumping modeled in x86::simulate_interval).
  for (std::size_t c = 0; c < clusters; ++c) {
    tasks.push_back([&, c] {
      const auto devices = static_cast<double>(live_devices[c]);
      for (const Classified& f : classified) {
        if (f.kind != Kind::kHardware || f.cluster != c) continue;
        for (std::size_t device = 0; device < live_devices[c]; ++device) {
          hw_load[c][device].pps += f.pps / devices;
          hw_load[c][device].bps += f.bps / devices;
        }
      }
    });
  }
  // DPU tier: one task per node sums its placed elephants (index order).
  for (std::size_t d = 0; d < dpu_load.size(); ++d) {
    tasks.push_back([&, d] {
      for (const Classified& f : classified) {
        if (f.kind != Kind::kDpu || f.node != d) continue;
        dpu_load[d].pps += f.pps;
        dpu_load[d].bps += f.bps;
      }
    });
  }
  // Software path: one task per node builds its RSS flow list (index
  // order) and runs the node's core simulation. Overflow spillover joins
  // its node's list at the punt-lane-admitted share.
  for (std::size_t n = 0; n < nodes; ++n) {
    tasks.push_back([&, n] {
      std::vector<x86::FlowRate> node_flows;
      for (std::size_t i = 0; i < classified.size(); ++i) {
        const Classified& f = classified[i];
        if (f.kind == Kind::kSoftware && f.node == n) {
          node_flows.push_back(x86::FlowRate{flows[i].tuple, f.pps, f.bps});
        } else if (f.kind == Kind::kOverflowX86 && f.node == n) {
          node_flows.push_back(x86::FlowRate{
              flows[i].tuple, f.pps * overflow_scale,
              f.bps * overflow_scale});
        }
      }
      if (node_flows.empty()) return;
      node_reports[n] = x86_nodes_[n]->simulate_interval(node_flows);
      node_active[n] = 1;
    });
  }
  engine_->run_tasks(std::move(tasks));

  // ---- Phase C: sequential reduce (fixed order, one thread) ---------------
  // Offered is the raw (pre-shed) rate: the served sum plus what the
  // guard shed, so drop rates are measured against what tenants offered.
  report.offered_pps = offered_pps + report.guard_shed_pps;
  report.fallback_bps = fallback_bps;
  report.fallback_pps = fallback_pps;
  report.shard_pipe_bps = shard_pipe_bps;
  report.dropped_pps = unknown_vni_pps + report.guard_shed_pps;

  // Hardware drops: per-device pps and bps ceilings (huge) plus the
  // residual loss floor, deterministically jittered per interval.
  double hw_pps = 0;
  for (std::size_t c = 0; c < clusters; ++c) {
    const std::size_t device_count = controller_.cluster(c).device_count();
    if (device_count == 0) continue;
    // Port-level isolation shaves capacity: scale the per-device envelope
    // by the cluster's mean usable-capacity fraction from the recovery
    // coordinator. With no isolated ports every fraction is exactly 1.0,
    // so healthy intervals reproduce the unscaled arithmetic bit for bit.
    double capacity_scale = 0;
    for (std::size_t d = 0; d < device_count; ++d) {
      capacity_scale += recovery_->device_capacity_fraction(c, d);
    }
    capacity_scale /= static_cast<double>(device_count);
    const double cap_pps =
        controller_.cluster(c).device(0).max_packet_rate_pps() *
        capacity_scale;
    const double cap_bps =
        controller_.cluster(c).device(0).max_throughput_bps() *
        capacity_scale;
    for (const DeviceLoad& load : hw_load[c]) {
      hw_pps += load.pps;
      const double overload =
          std::max({load.pps / cap_pps, load.bps / cap_bps, 1.0});
      report.dropped_pps += load.pps * (1.0 - 1.0 / overload);
    }
  }
  const double jitter =
      0.5 + 1.5 * (static_cast<double>(net::mix64(jitter_key) >> 11) *
                   0x1.0p-53);
  report.dropped_pps += hw_pps * config_.hardware_loss_floor * jitter;

  // Software path: fold the per-node reports in node order.
  for (std::size_t n = 0; n < nodes; ++n) {
    if (!node_active[n]) continue;
    report.dropped_pps += node_reports[n].dropped_pps;
    report.x86_max_core_utilization = std::max(
        report.x86_max_core_utilization, node_reports[n].max_core_utilization);
  }

  // DPU tier: per-node capacity ceilings (same fluid arithmetic as the
  // hardware devices) and table occupancy; overflow spillover beyond the
  // punt-lane drain capacity drops. All sums in fixed node order.
  if (dpu_active) {
    for (std::size_t d = 0; d < dpu_load.size(); ++d) {
      report.dpu_pps += dpu_load[d].pps;
      report.dpu_bps += dpu_load[d].bps;
      const dpu::XgwDpu::Config& cfg = dpu_nodes_[d]->config();
      const double overload =
          std::max({dpu_load[d].pps / cfg.max_packet_rate_pps,
                    dpu_load[d].bps / cfg.max_throughput_bps, 1.0});
      report.dropped_pps += dpu_load[d].pps * (1.0 - 1.0 / overload);
      report.dpu_flow_entries += dpu_nodes_[d]->flow_count();
    }
    double capacity = 0;
    for (const auto& node : dpu_nodes_) {
      capacity += static_cast<double>(node->config().flow_table_entries);
    }
    report.dpu_table_occupancy =
        capacity > 0 ? static_cast<double>(report.dpu_flow_entries) / capacity
                     : 0;
    ctr_dpu_pps_sum_->add(static_cast<std::uint64_t>(report.dpu_pps));
  }
  if (overflow_active) {
    report.overflow_x86_pps = overflow_x86_offered_pps * overflow_scale;
    report.overflow_pps = overflow_x86_offered_pps + report.dpu_pps;
    report.dropped_pps +=
        overflow_x86_offered_pps * (1.0 - overflow_scale);
  }

  // pps-weighted p99 over the served path classes: ASIC, DPU, plain x86,
  // and overflow-x86 including its fluid queueing delay. Only computed
  // when the three-tier machinery is in play; classic regions report 0.
  if (overflow_active || dpu_active) {
    struct PathClass {
      double latency_us = 0;
      double pps = 0;
    };
    const double x86_latency = config_.x86_template.model.latency_us(
        report.x86_max_core_utilization);
    const double queue_delay_us =
        punt_queue_ ? report.punt_queue_occupancy *
                          static_cast<double>(
                              config_.punt_queue.depth_packets) /
                          config_.punt_queue.drain_pps * 1e6
                    : 0;
    std::vector<PathClass> path_classes;
    path_classes.push_back(
        {config_.controller.cluster_template.device.chip.latency_us(2, 650),
         hw_pps});
    path_classes.push_back(
        {config_.dpu_template.base_latency_us, report.dpu_pps});
    path_classes.push_back({x86_latency, fallback_pps});
    path_classes.push_back(
        {x86_latency + queue_delay_us, report.overflow_x86_pps});
    std::sort(path_classes.begin(), path_classes.end(),
              [](const PathClass& a, const PathClass& b) {
                return a.latency_us < b.latency_us;
              });
    double served = 0;
    for (const PathClass& c : path_classes) served += c.pps;
    double cumulative = 0;
    for (const PathClass& c : path_classes) {
      cumulative += c.pps;
      if (report.p99_latency_us == 0 && cumulative >= 0.99 * served) {
        report.p99_latency_us = c.latency_us;
      }
      if (cumulative >= 0.999 * served) {
        report.p999_latency_us = c.latency_us;
        break;
      }
    }
  }

  report.drop_rate =
      report.offered_pps > 0 ? report.dropped_pps / report.offered_pps : 0;
  report.fallback_ratio =
      total_bps > 0 ? report.fallback_bps / total_bps : 0;

  // Fold the merged per-shard engine counters into the region registry.
  for (const auto& [name, value] : engine_stats.counters) {
    registry_->counter("region." + name).add(value);
  }

  // Accumulate the interval into the registry; deltas of successive
  // snapshots recover the per-interval series the figures plot.
  ctr_intervals_->add();
  ctr_offered_bps_sum_->add(static_cast<std::uint64_t>(report.offered_bps));
  ctr_offered_pps_sum_->add(static_cast<std::uint64_t>(report.offered_pps));
  ctr_dropped_upps_sum_->add(
      static_cast<std::uint64_t>(report.dropped_pps * 1e6));
  ctr_fallback_bps_sum_->add(
      static_cast<std::uint64_t>(report.fallback_bps));
  ctr_pipe1_bps_sum_->add(
      static_cast<std::uint64_t>(report.shard_pipe_bps[1]));
  ctr_pipe3_bps_sum_->add(
      static_cast<std::uint64_t>(report.shard_pipe_bps[3]));
  if (guard_) {
    ctr_guard_shed_upps_sum_->add(
        static_cast<std::uint64_t>(report.guard_shed_pps * 1e6));
  }
  return report;
}

telemetry::Snapshot SailfishRegion::telemetry_snapshot() const {
  telemetry::Snapshot merged = registry_->snapshot();
  merged.merge(controller_.telemetry_snapshot());
  for (std::size_t n = 0; n < x86_nodes_.size(); ++n) {
    merged.merge(x86_nodes_[n]->registry().snapshot(),
                 "x86" + std::to_string(n) + ".");
  }
  for (std::size_t n = 0; n < dpu_nodes_.size(); ++n) {
    merged.merge(dpu_nodes_[n]->registry().snapshot(),
                 "dpu" + std::to_string(n) + ".");
  }
  return merged;
}

}  // namespace sf::core
