#include "core/region.hpp"

#include <algorithm>

#include "net/hash.hpp"

namespace sf::core {

SailfishRegion::SailfishRegion(Config config)
    : config_(config),
      controller_(config.controller),
      x86_ecmp_(config.x86_ecmp_max_next_hops) {
  if (config_.x86_nodes == 0) {
    throw std::invalid_argument("a region needs at least one XGW-x86");
  }
  for (std::size_t i = 0; i < config_.x86_nodes; ++i) {
    x86::XgwX86::Config cfg = config_.x86_template;
    cfg.device_ip =
        net::Ipv4Addr(config_.x86_template.device_ip.value() +
                      static_cast<std::uint32_t>(i));
    x86_nodes_.push_back(std::make_unique<x86::XgwX86>(cfg));
    x86_ecmp_.add(static_cast<std::uint32_t>(i));
  }

  // Software holds the complete tables: mirror every controller op.
  controller_.set_mirror([this](const cluster::TableOp& op) {
    for (auto& node : x86_nodes_) {
      switch (op.kind) {
        case cluster::TableOp::Kind::kAddRoute:
          node->install_route(op.vni, op.prefix, op.route_action);
          break;
        case cluster::TableOp::Kind::kDelRoute:
          node->remove_route(op.vni, op.prefix);
          break;
        case cluster::TableOp::Kind::kAddMapping:
          node->install_mapping(op.mapping_key, op.mapping_action);
          break;
        case cluster::TableOp::Kind::kDelMapping:
          node->remove_mapping(op.mapping_key);
          break;
      }
    }
  });

  recovery_ = std::make_unique<cluster::DisasterRecovery>(
      &controller_, cluster::DisasterRecovery::Config{});

  registry_ = std::make_unique<telemetry::Registry>();
  ctr_packets_ = &registry_->counter("region.packets");
  ctr_hw_forwarded_ = &registry_->counter("region.hw_forwarded");
  ctr_hw_tunnel_ = &registry_->counter("region.hw_tunnel");
  ctr_sw_forwarded_ = &registry_->counter("region.sw_forwarded");
  ctr_sw_snat_ = &registry_->counter("region.sw_snat");
  ctr_dropped_ = &registry_->counter("region.dropped");
  ctr_intervals_ = &registry_->counter("region.intervals");
  ctr_offered_bps_sum_ = &registry_->counter("region.offered_bps_sum");
  ctr_offered_pps_sum_ = &registry_->counter("region.offered_pps_sum");
  ctr_dropped_upps_sum_ = &registry_->counter("region.dropped_upps_sum");
  ctr_fallback_bps_sum_ = &registry_->counter("region.fallback_bps_sum");
  ctr_pipe1_bps_sum_ = &registry_->counter("region.pipe1_bps_sum");
  ctr_pipe3_bps_sum_ = &registry_->counter("region.pipe3_bps_sum");
}

std::size_t SailfishRegion::install_topology(
    const workload::RegionTopology& region) {
  return controller_.install_topology(region);
}

x86::XgwX86& SailfishRegion::x86_for_flow(const net::FiveTuple& tuple) {
  auto member = x86_ecmp_.pick(tuple);
  return *x86_nodes_[member.value_or(0)];
}

const x86::XgwX86& SailfishRegion::x86_for_flow(
    const net::FiveTuple& tuple) const {
  auto member = x86_ecmp_.pick(tuple);
  return *x86_nodes_[member.value_or(0)];
}

std::size_t SailfishRegion::x86_node_index_for(
    const net::FiveTuple& tuple) const {
  return x86_ecmp_.pick(tuple).value_or(0);
}

SailfishRegion::RegionResult SailfishRegion::process(
    const net::OverlayPacket& packet, double now) {
  RegionResult result;
  ctr_packets_->add();

  xgwh::ForwardResult hw = controller_.process(packet, now);
  result.latency_us = hw.latency_us;

  switch (hw.action) {
    case xgwh::ForwardAction::kForwardToNc:
      result.path = RegionResult::Path::kHardwareForwarded;
      result.packet = std::move(hw.packet);
      ctr_hw_forwarded_->add();
      return result;
    case xgwh::ForwardAction::kForwardTunnel:
      result.path = RegionResult::Path::kHardwareTunnel;
      result.packet = std::move(hw.packet);
      ctr_hw_tunnel_->add();
      return result;
    case xgwh::ForwardAction::kDrop:
      result.path = RegionResult::Path::kDropped;
      result.drop_reason = std::move(hw.drop_reason);
      ctr_dropped_->add();
      return result;
    case xgwh::ForwardAction::kFallbackToX86:
      break;
  }

  // Software path: the XGW-H rewrote the outer header toward the fleet
  // VIP; ECMP picks the node, which processes the *original* overlay
  // packet (outer headers are re-derived there).
  x86::XgwX86& node = x86_for_flow(packet.inner);
  x86::X86Result sw = node.process(packet, now);
  result.latency_us += sw.latency_us;
  result.packet = std::move(sw.packet);
  switch (sw.action) {
    case x86::X86Action::kForwardToNc:
    case x86::X86Action::kForwardTunnel:
      result.path = RegionResult::Path::kSoftwareForwarded;
      ctr_sw_forwarded_->add();
      return result;
    case x86::X86Action::kSnatToInternet:
      result.path = RegionResult::Path::kSoftwareSnat;
      ctr_sw_snat_->add();
      return result;
    case x86::X86Action::kDrop:
      result.path = RegionResult::Path::kDropped;
      result.drop_reason = std::move(sw.drop_reason);
      ctr_dropped_->add();
      return result;
  }
  return result;
}

SailfishRegion::IntervalReport SailfishRegion::simulate_interval(
    std::span<const workload::Flow> flows, double total_bps,
    std::uint64_t jitter_key) const {
  IntervalReport report;
  report.offered_bps = total_bps;

  // Per-device offered load on the hardware path, per cluster.
  struct DeviceLoad {
    double pps = 0;
    double bps = 0;
  };
  std::vector<std::vector<DeviceLoad>> hw_load(controller_.cluster_count());
  for (std::size_t c = 0; c < controller_.cluster_count(); ++c) {
    hw_load[c].resize(controller_.cluster(c).device_count());
  }
  std::vector<std::vector<x86::FlowRate>> sw_flows(x86_nodes_.size());

  for (const workload::Flow& flow : flows) {
    const double bps = flow.weight * total_bps;
    const double pps = bps / 8.0 / static_cast<double>(flow.packet_size);
    report.offered_pps += pps;

    const bool software_path =
        flow.scope == tables::RouteScope::kInternet;
    if (software_path) {
      report.fallback_bps += bps;
      auto member = x86_ecmp_.pick(flow.tuple);
      sw_flows[member.value_or(0)].push_back(
          x86::FlowRate{flow.tuple, pps, bps});
      continue;
    }

    auto cluster_id = controller_.cluster_for(flow.vni);
    if (!cluster_id) {
      report.dropped_pps += pps;
      continue;
    }
    const cluster::XgwHCluster& cluster = controller_.cluster(*cluster_id);
    const std::size_t devices = std::max<std::size_t>(
        1, cluster.live_device_count());
    // Each Flow aggregates a tenant's many real 5-tuples, so ECMP spreads
    // it near-uniformly over the cluster's live devices (device-level
    // bins are huge — §5.2's balls-into-bins argument; contrast with the
    // per-core lumping modeled in x86::simulate_interval).
    for (std::size_t device = 0; device < devices; ++device) {
      hw_load[*cluster_id][device].pps += pps / static_cast<double>(devices);
      hw_load[*cluster_id][device].bps += bps / static_cast<double>(devices);
    }

    // Loopback-pipe accounting: the VNI's shard picks pipe 1 or 3
    // (Fig. 14).
    const unsigned pipe = 1 + 2 * xgwh::XgwH::shard_of_vni(flow.vni);
    report.shard_pipe_bps[pipe] += bps;
  }

  // Hardware drops: per-device pps and bps ceilings (huge) plus the
  // residual loss floor, deterministically jittered per interval.
  double hw_pps = 0;
  for (std::size_t c = 0; c < controller_.cluster_count(); ++c) {
    if (controller_.cluster(c).device_count() == 0) continue;
    const double cap_pps =
        controller_.cluster(c).device(0).max_packet_rate_pps();
    const double cap_bps =
        controller_.cluster(c).device(0).max_throughput_bps();
    for (const DeviceLoad& load : hw_load[c]) {
      hw_pps += load.pps;
      const double overload =
          std::max({load.pps / cap_pps, load.bps / cap_bps, 1.0});
      report.dropped_pps += load.pps * (1.0 - 1.0 / overload);
    }
  }
  const double jitter =
      0.5 + 1.5 * (static_cast<double>(net::mix64(jitter_key) >> 11) *
                   0x1.0p-53);
  report.dropped_pps += hw_pps * config_.hardware_loss_floor * jitter;

  // Software path: per-node RSS/core simulation.
  for (std::size_t n = 0; n < x86_nodes_.size(); ++n) {
    if (sw_flows[n].empty()) continue;
    const x86::IntervalReport node_report =
        x86_nodes_[n]->simulate_interval(sw_flows[n]);
    report.dropped_pps += node_report.dropped_pps;
    report.x86_max_core_utilization = std::max(
        report.x86_max_core_utilization, node_report.max_core_utilization);
  }

  report.drop_rate =
      report.offered_pps > 0 ? report.dropped_pps / report.offered_pps : 0;
  report.fallback_ratio =
      total_bps > 0 ? report.fallback_bps / total_bps : 0;

  // Accumulate the interval into the registry; deltas of successive
  // snapshots recover the per-interval series the figures plot.
  ctr_intervals_->add();
  ctr_offered_bps_sum_->add(static_cast<std::uint64_t>(report.offered_bps));
  ctr_offered_pps_sum_->add(static_cast<std::uint64_t>(report.offered_pps));
  ctr_dropped_upps_sum_->add(
      static_cast<std::uint64_t>(report.dropped_pps * 1e6));
  ctr_fallback_bps_sum_->add(
      static_cast<std::uint64_t>(report.fallback_bps));
  ctr_pipe1_bps_sum_->add(
      static_cast<std::uint64_t>(report.shard_pipe_bps[1]));
  ctr_pipe3_bps_sum_->add(
      static_cast<std::uint64_t>(report.shard_pipe_bps[3]));
  return report;
}

telemetry::Snapshot SailfishRegion::telemetry_snapshot() const {
  telemetry::Snapshot merged = registry_->snapshot();
  merged.merge(controller_.telemetry_snapshot());
  for (std::size_t n = 0; n < x86_nodes_.size(); ++n) {
    merged.merge(x86_nodes_[n]->registry().snapshot(),
                 "x86" + std::to_string(n) + ".");
  }
  return merged;
}

}  // namespace sf::core
